"""Blame-assignment utilities (paper Section 4.3).

The online increasing-cycle test and per-block refutation live inside
:class:`repro.core.optimized.VelodromeOptimized`; this module provides
the offline side: verifying a blame claim against the definition of
self-serializability, and summarizing how often blame was assigned
(the paper reports blame for over 80% of warnings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.reports import Warning, WarningKind
from repro.events.equivalence import is_self_serializable
from repro.events.trace import Trace, Transaction


@dataclass(frozen=True)
class BlameSummary:
    """Aggregate blame statistics over a set of atomicity warnings."""

    total: int
    blamed: int
    unlocalized: int

    @property
    def blame_rate(self) -> float:
        """Fraction of warnings with a certified blamed block."""
        return self.blamed / self.total if self.total else 0.0

    def __str__(self) -> str:
        return (
            f"{self.blamed}/{self.total} warnings blamed "
            f"({self.blame_rate:.0%}), {self.unlocalized} unlocalized"
        )


def summarize_blame(warnings: Iterable[Warning]) -> BlameSummary:
    """Blame statistics for the atomicity warnings in ``warnings``."""
    total = blamed = 0
    for warning in warnings:
        if warning.kind is not WarningKind.ATOMICITY:
            continue
        total += 1
        if warning.blamed:
            blamed += 1
    return BlameSummary(total=total, blamed=blamed, unlocalized=total - blamed)


def blamed_transaction(trace: Trace, warning: Warning) -> Optional[Transaction]:
    """The trace transaction a blamed warning points at, or ``None``.

    Matches the warning's triggering operation position to the
    transaction containing it (the blamed transaction is always the one
    executing the cycle-closing operation).
    """
    if not warning.blamed:
        return None
    if warning.position >= len(trace):
        return None
    return trace.transaction_of(warning.position)


def verify_blame(trace: Trace, warning: Warning, state_limit: int = 200_000) -> bool:
    """Check a blame claim by brute force (test utility; small traces).

    A correctly blamed transaction must not be self-serializable: no
    equivalent trace runs it contiguously.  Returns True when the claim
    is confirmed.
    """
    transaction = blamed_transaction(trace, warning)
    if transaction is None:
        raise ValueError("warning carries no certified blame")
    return not is_self_serializable(trace, transaction.index, state_limit)


def blamed_labels(warnings: Sequence[Warning]) -> set[str]:
    """Distinct block labels with at least one certified-blame warning."""
    return {
        warning.label
        for warning in warnings
        if warning.kind is WarningKind.ATOMICITY
        and warning.blamed
        and warning.label is not None
    }
