"""Velodrome core: the sound and complete dynamic atomicity analysis."""

from typing import Optional

from repro.core.aerodrome import AeroDrome
from repro.core.backend import AnalysisBackend
from repro.core.basic import VelodromeBasic
from repro.core.clocks import VectorClock
from repro.core.compact import VelodromeCompact
from repro.core.explain import Explanation, explain, explain_all
from repro.core.blame import (
    BlameSummary,
    blamed_labels,
    blamed_transaction,
    summarize_blame,
    verify_blame,
)
from repro.core.merge import merge
from repro.core.optimized import VelodromeOptimized
from repro.core.reports import (
    Warning,
    WarningKind,
    atomicity_warning,
    cycle_to_dot,
    race_warning,
    reduction_warning,
    warning_to_dot,
)
from repro.core.view import (
    final_writes,
    is_view_serializable,
    reads_from,
    view_serial_witness,
)
from repro.core.serializability import (
    earliest_violation,
    find_cycle,
    is_serializable,
    serial_witness,
    serialization_graph,
    serialize,
)
from repro.events.trace import Trace


def check_atomicity(trace: Trace, **options) -> list[Warning]:
    """Run the optimized Velodrome analysis over a complete trace.

    Returns the warnings — empty exactly when the trace is
    conflict-serializable (soundness and completeness, Theorem 1).
    Keyword options are forwarded to :class:`VelodromeOptimized`.
    """
    backend = VelodromeOptimized(**options)
    backend.process_trace(trace)
    return backend.warnings


def velodrome_verdict(trace: Trace, **options) -> bool:
    """True iff Velodrome judges ``trace`` conflict-serializable."""
    backend = VelodromeOptimized(**options)
    backend.process_trace(trace)
    return not backend.error_detected


__all__ = [
    "AeroDrome",
    "AnalysisBackend",
    "BlameSummary",
    "VectorClock",
    "VelodromeBasic",
    "VelodromeCompact",
    "VelodromeOptimized",
    "Warning",
    "WarningKind",
    "atomicity_warning",
    "blamed_labels",
    "blamed_transaction",
    "check_atomicity",
    "Explanation",
    "explain",
    "explain_all",
    "cycle_to_dot",
    "earliest_violation",
    "find_cycle",
    "is_serializable",
    "merge",
    "race_warning",
    "reduction_warning",
    "serial_witness",
    "serialization_graph",
    "serialize",
    "summarize_blame",
    "velodrome_verdict",
    "verify_blame",
    "final_writes",
    "is_view_serializable",
    "reads_from",
    "view_serial_witness",
    "warning_to_dot",
]
