"""Warnings and error graphs.

Velodrome reports each detected serializability violation together with
the happens-before cycle that witnesses it, rendered in Graphviz dot
format like the ``Set.add`` figure of paper Section 5: one box per
transaction, each edge labelled with the operation that generated it,
the cycle-closing edge dashed, and the blamed transaction outlined.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.hbgraph import Cycle


class WarningKind(enum.Enum):
    """What a warning is about; baselines and Velodrome share the type."""

    ATOMICITY = "atomicity"  # non-serializable trace (Velodrome)
    REDUCTION = "reduction"  # transaction not reducible (Atomizer)
    RACE = "race"  # data race (Eraser / vector clocks)


@dataclass(frozen=True)
class Warning:
    """One analysis warning.

    Attributes:
        kind: the property violated.
        backend: name of the reporting analysis.
        label: the atomic block / method blamed, or ``None`` when the
            analysis could not localize the violation to a block.
        tid: thread observed violating.
        position: index of the triggering operation in the event stream.
        message: human-readable description.
        blamed: for Velodrome, True when the increasing-cycle test
            certified the blamed transaction as not self-serializable.
        cycle: the witnessing happens-before cycle, when available.
        target: variable or lock involved (race warnings).
    """

    kind: WarningKind
    backend: str
    label: Optional[str]
    tid: int
    position: int
    message: str
    blamed: bool = False
    cycle: Optional[Cycle] = field(default=None, compare=False)
    target: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.label}]" if self.label else ""
        return f"{self.backend}:{self.kind.value}{where} t{self.tid}@{self.position}: {self.message}"


def atomicity_warning(
    backend: str,
    label: Optional[str],
    tid: int,
    position: int,
    message: str,
    cycle: Optional[Cycle] = None,
    blamed: bool = False,
) -> Warning:
    """Construct a serializability-violation warning."""
    return Warning(
        WarningKind.ATOMICITY, backend, label, tid, position, message,
        blamed=blamed, cycle=cycle,
    )


def race_warning(
    backend: str, tid: int, position: int, var: str, message: str
) -> Warning:
    """Construct a data-race warning."""
    return Warning(
        WarningKind.RACE, backend, None, tid, position, message, target=var
    )


def reduction_warning(
    backend: str, label: Optional[str], tid: int, position: int, message: str
) -> Warning:
    """Construct an Atomizer reducibility warning."""
    return Warning(WarningKind.REDUCTION, backend, label, tid, position, message)


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cycle_to_dot(
    cycle: Cycle, title: str = "", blamed: bool = False
) -> str:
    """Render a cycle as a Graphviz dot graph (the Section 5 figure).

    Each transaction is a box labelled with its method label, thread,
    and sequence number; each happens-before edge is labelled with the
    operations that generated it.  The cycle-closing edge is dashed,
    and — when blame was assigned — the blamed transaction's box is
    drawn with a heavier outline.
    """
    lines = ["digraph atomicity_violation {"]
    if title:
        lines.append(f'  label="{_dot_escape(title)}";')
        lines.append("  labelloc=t;")
    lines.append("  node [shape=box];")
    for node in cycle.nodes:
        attrs = [f'label="{_dot_escape(node.display_name())}"']
        if blamed and node is cycle.blamed_candidate:
            attrs.append("peripheries=2")
            attrs.append("penwidth=2")
        lines.append(f'  n{node.seq} [{", ".join(attrs)}];')
    for u, v, info in cycle.path:
        lines.append(
            f'  n{u.seq} -> n{v.seq} [label="{_dot_escape(info.reason)}"];'
        )
    src, dst = cycle.closing_src.node, cycle.closing_dst.node
    lines.append(
        f"  n{src.seq} -> n{dst.seq} "
        f'[label="{_dot_escape(cycle.closing_reason)}", style=dashed];'
    )
    lines.append("}")
    return "\n".join(lines)


def warning_to_dot(warning: Warning) -> str:
    """Render a warning's cycle as dot; raises if it has no cycle."""
    if warning.cycle is None:
        raise ValueError("warning has no attached cycle")
    title = f"Warning: {warning.label or '<unlabelled>'} is not atomic"
    return cycle_to_dot(warning.cycle, title=title, blamed=warning.blamed)
