"""The basic Velodrome analysis (paper Section 3, Figure 2).

The analysis state is the tuple ``(C, L, U, R, W, H)``:

* ``C(t)`` — the current transaction node of thread ``t`` (if any),
* ``L(t)`` — the transaction that executed the last operation of ``t``,
* ``U(m)`` — the last transaction to release lock ``m``,
* ``R(x, t)`` — the last transaction of ``t`` to read variable ``x``,
* ``W(x)`` — the last transaction to write variable ``x``,
* ``H`` — the transactional happens-before graph.

An operation adds edges from the conflicting predecessors recorded in
these components to the current transaction; the trace is
non-serializable exactly when an added edge would close a cycle
(Theorem 1).  Operations outside any atomic block run in their own
unary transaction via the [INS OUTSIDE] rule — the deliberately naive
allocation strategy whose cost motivates the merge optimization of
Figure 4 (and the "Without Merge" columns of Table 1).

This implementation is the executable specification: unoptimized,
close to the paper's rules, and cross-validated against the reference
serializability checkers by the property-test suite.  The production
analysis is :class:`repro.core.optimized.VelodromeOptimized`.

Being the specification, it never fast-forwards packed blocks: it
inherits the declining default of
:meth:`~repro.core.backend.AnalysisBackend.apply_block_summary`, so
every operation — unary transactions and all — is replayed exactly as
Figure 2 writes it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.reports import atomicity_warning
from repro.events.operations import Operation, OpKind
from repro.graph.hbgraph import Cycle, HBGraph
from repro.graph.node import Step, TxNode


def _live(node: Optional[TxNode]) -> Optional[TxNode]:
    """Weak-dereference a node: collected nodes read as absent."""
    if node is None or node.collected:
        return None
    return node


def _purge_dead(table: dict) -> int:
    """Remove entries whose node has been collected; returns the count."""
    dead = [key for key, node in table.items() if node.collected]
    for key in dead:
        del table[key]
    return len(dead)


class VelodromeBasic(AnalysisBackend):
    """Sound and complete serializability analysis, unoptimized.

    Args:
        collect_garbage: apply the Section 4.1 GC rule eagerly.  The
            rule never changes verdicts (collected nodes cannot lie on
            cycles); disabling it reproduces the raw Figure 2 analysis
            and is used by the GC ablation.
        cycle_strategy: forwarded to :class:`HBGraph`.

    Nested atomic blocks are folded into the outermost one by tracking
    the per-thread nesting depth (Figure 2 itself defers nesting to the
    Figure 4 analysis, which also adds per-block blame).
    """

    name = "VELODROME-BASIC"

    def __init__(
        self,
        collect_garbage: bool = True,
        cycle_strategy: str = "ancestors",
    ):
        super().__init__()
        self.graph = HBGraph(
            cycle_strategy=cycle_strategy, collect_garbage=collect_garbage
        )
        self._current: dict[int, TxNode] = {}  # C
        self._depth: dict[int, int] = {}
        self._last: dict[int, TxNode] = {}  # L (weak)
        self._unlocker: dict[str, TxNode] = {}  # U (weak)
        self._readers: dict[str, dict[int, TxNode]] = {}  # R (weak)
        self._writer: dict[str, TxNode] = {}  # W (weak)
        # Per-kind dispatch table: one dict lookup per event instead of
        # an elif chain.  Non-marker kinds fold the [INS OUTSIDE]
        # wrapper into the per-kind method, which allocates a unary
        # transaction when the thread is not inside an atomic block.
        self._handlers = {
            OpKind.BEGIN: self._enter,
            OpKind.END: self._exit,
            OpKind.ACQUIRE: self._acquire,
            OpKind.RELEASE: self._release,
            OpKind.READ: self._read,
            OpKind.WRITE: self._write,
        }

    # ------------------------------------------------------------ state views
    def current(self, tid: int) -> Optional[TxNode]:
        """C(t): the node of thread ``tid``'s ongoing transaction."""
        return self._current.get(tid)

    def last(self, tid: int) -> Optional[TxNode]:
        """L(t): the node of the thread's last finished operation."""
        return _live(self._last.get(tid))

    def unlocker(self, lock: str) -> Optional[TxNode]:
        """U(m): the last transaction to release ``lock``."""
        return _live(self._unlocker.get(lock))

    def writer(self, var: str) -> Optional[TxNode]:
        """W(x): the last transaction to write ``var``."""
        return _live(self._writer.get(var))

    def reader(self, var: str, tid: int) -> Optional[TxNode]:
        """R(x, t): the last transaction of ``tid`` to read ``var``."""
        return _live(self._readers.get(var, {}).get(tid))

    # ------------------------------------------------------- resource hygiene
    def state_entry_count(self) -> int:
        return (
            len(self._last)
            + len(self._unlocker)
            + len(self._writer)
            + sum(len(readers) for readers in self._readers.values())
        )

    def compact_state(self) -> dict[str, int]:
        """Purge weak references to collected transactions (no-op on
        verdicts: a collected node already reads as absent)."""
        dropped = {
            "last": _purge_dead(self._last),
            "unlocker": _purge_dead(self._unlocker),
            "writer": _purge_dead(self._writer),
            "reader": 0,
        }
        for var in list(self._readers):
            dropped["reader"] += _purge_dead(self._readers[var])
            if not self._readers[var]:
                del self._readers[var]
        return dropped

    # ---------------------------------------------------------------- process
    def process(self, op: Operation) -> None:
        # Overrides the base class to fold the process -> _process call
        # into a single frame: one dict lookup, one handler call.
        self._handlers[op.kind](op, self.events_processed)
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        self._handlers[op.kind](op, position)

    # ------------------------------------------------------ per-kind rules
    # Each method folds the [INS OUTSIDE] wrapper into the rule body:
    # inside a transaction the rule runs against the current node;
    # outside, the operation is wrapped in a fresh unary transaction
    # (no merging in the basic analysis).  ``self._current`` is read
    # through the attribute on every call: snapshot restore rebinds
    # the dict wholesale.

    def _acquire(self, op: Operation, position: int) -> None:
        node = self._current.get(op.tid)
        unary = node is None
        if unary:
            node = self._start_transaction(op.tid, label=None)
        # [INS ACQUIRE]: edge from the last unlocker.
        self._edge(self.unlocker(op.target), node, op, position)
        if unary:
            self._finish_transaction(op.tid)

    def _release(self, op: Operation, position: int) -> None:
        node = self._current.get(op.tid)
        unary = node is None
        if unary:
            node = self._start_transaction(op.tid, label=None)
        # [INS RELEASE]: record the unlocker.
        self._unlocker[op.target] = node
        if unary:
            self._finish_transaction(op.tid)

    def _read(self, op: Operation, position: int) -> None:
        node = self._current.get(op.tid)
        unary = node is None
        if unary:
            node = self._start_transaction(op.tid, label=None)
        # [INS READ]: record the reader; edge from the last writer.
        self._readers.setdefault(op.target, {})[op.tid] = node
        self._edge(self.writer(op.target), node, op, position)
        if unary:
            self._finish_transaction(op.tid)

    def _write(self, op: Operation, position: int) -> None:
        node = self._current.get(op.tid)
        unary = node is None
        if unary:
            node = self._start_transaction(op.tid, label=None)
        # [INS WRITE]: edges from all readers and the last writer;
        # record the writer.
        for reader_tid in list(self._readers.get(op.target, {})):
            self._edge(self.reader(op.target, reader_tid), node, op, position)
        self._edge(self.writer(op.target), node, op, position)
        self._writer[op.target] = node
        if unary:
            self._finish_transaction(op.tid)

    # ----------------------------------------------------------- transactions
    def _enter(self, op: Operation, position: int = 0) -> None:
        tid = op.tid
        depth = self._depth.get(tid, 0)
        self._depth[tid] = depth + 1
        if depth == 0:
            # [INS ENTER]: fresh node, program-order edge from L(t).
            self._start_transaction(tid, label=op.label)

    def _exit(self, op: Operation, position: int = 0) -> None:
        tid = op.tid
        depth = self._depth.get(tid, 0)
        if depth == 0 or tid not in self._current:
            raise ValueError(f"end without begin for thread {tid}")
        self._depth[tid] = depth - 1
        if depth == 1:
            # [INS EXIT].
            self._finish_transaction(tid)

    def _start_transaction(self, tid: int, label: Optional[str]) -> TxNode:
        node = self.graph.new_node(tid, label=label)
        predecessor = self.last(tid)
        if predecessor is not None:
            cycle = self.graph.add_edge(
                Step(predecessor, 0), Step(node, 0),
                reason=f"program-order(t{tid})",
            )
            assert cycle is None, "fresh node cannot close a cycle"
        self._current[tid] = node
        return node

    def _finish_transaction(self, tid: int) -> None:
        node = self._current.pop(tid)
        self._last[tid] = node
        self.graph.finish(node)

    # -------------------------------------------------------------- edges
    def _edge(
        self,
        source: Optional[TxNode],
        target: TxNode,
        op: Operation,
        position: int,
    ) -> None:
        if source is None or source is target:
            return
        cycle = self.graph.add_edge(
            Step(source, 0), Step(target, 0), reason=str(op)
        )
        if cycle is not None:
            self._report_cycle(cycle, op, position)

    def _report_cycle(self, cycle: Cycle, op: Operation, position: int) -> None:
        label = cycle.blamed_candidate.label
        self.report(
            atomicity_warning(
                self.name,
                label,
                op.tid,
                position,
                f"non-serializable: {cycle} closed by {op}",
                cycle=cycle,
            )
        )
