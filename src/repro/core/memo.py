"""Region memoization: certify a repeated transaction once, apply many.

Production traces are dominated by near-identical transaction-bounded
regions — the same request handler replayed endlessly by millions of
users.  Each occurrence is expensive to replay op by op, yet the *shape*
of the region (its operation kinds, targets, and labels, with thread
ids and values abstracted away) repeats almost verbatim.  This module
exploits that repetition:

* :func:`region_key` canonicalizes a transaction-bounded run of
  operations — one thread, from its outermost ``begin`` to the matching
  ``end`` — into a hashable shape, abstracting the thread id and the
  recorded values (no analysis consults values, and every backend takes
  the acting thread as a parameter when a summary is applied);
* :func:`summarize_region` derives a :class:`RegionSummary`: the static
  per-variable and per-lock access footprint (first/last offsets of
  each kind) that a backend needs to (a) check its *dynamic*
  preconditions against live analysis state and (b) write the region's
  final state directly — see
  :meth:`~repro.core.backend.AnalysisBackend.apply_region_summary`;
* :class:`RegionMemo` is the bounded LRU table mapping region keys to
  summaries, with exact hit/miss/eviction counters (``--stats``,
  ``/metrics``);
* :class:`RegionAssembler` sits in front of an event sink and tracks
  each transaction-bounded region as it streams by: the first
  occurrences of a shape are *certified* (streamed through to the sink
  while recorded on the side, then summarized — the ground-truth pass),
  and later occurrences are held back and *offered* to the backends as
  a summary, falling back to replay whenever a backend's preconditions
  do not hold.

Soundness does not rest on the memo: summaries are static facts about
the operation sequence, every application re-checks its preconditions
against the backend's current state, and any doubt declines into the
ordinary op-by-op replay.  The memoization is gated end to end by
``repro.fuzz.memogate`` (verdict, first warning, and state-snapshot
identity across the full ablation grid).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.events.operations import Operation, OpKind

#: A region longer than this is not worth buffering: flush and replay.
MAX_REGION_OPS = 4096

#: A region shorter than this is not worth memoizing: applying a
#: summary has a fixed cost (key, lookup, node setup) comparable to
#: replaying a handful of operations, so tiny regions would be *slower*
#: from cache.  Below the threshold the assembler replays immediately —
#: no key is built, no counter moves.  ``RegionMemo(min_ops=0)`` lifts
#: the threshold (the equivalence gate does, to cover small shapes).
MIN_REGION_OPS = 8

#: Default LRU capacity of a :class:`RegionMemo` (``--memo-max``).
DEFAULT_MEMO_MAX = 1024


# --------------------------------------------------------------- summaries
@dataclass(frozen=True, slots=True)
class VarUse:
    """One shared variable's access footprint inside a region.

    Offsets index into the region's operation list (the ``begin`` is
    offset 0, so no access ever has offset 0); ``None`` means the
    region performs no access of that kind.
    """

    name: str
    first_read: Optional[int] = None
    last_read: Optional[int] = None
    first_write: Optional[int] = None
    last_write: Optional[int] = None

    @property
    def read(self) -> bool:
        return self.first_read is not None

    @property
    def written(self) -> bool:
        return self.first_write is not None

    @property
    def read_before_write(self) -> bool:
        """True iff the region's first access to this variable reads it."""
        return self.first_read is not None and (
            self.first_write is None or self.first_read < self.first_write
        )

    @property
    def reads_last(self) -> bool:
        """True iff the region's last access to this variable reads it."""
        return self.last_read is not None and (
            self.last_write is None or self.last_read > self.last_write
        )


@dataclass(frozen=True, slots=True)
class LockUse:
    """One lock's footprint inside a region (offsets as in VarUse)."""

    name: str
    first_acquire: Optional[int] = None
    first_release: Optional[int] = None
    last_release: Optional[int] = None

    @property
    def acquired_before_release(self) -> bool:
        """True iff an acquire precedes every release (or none exists).

        Such an acquire consults the *pre-region* unlocker state; an
        acquire after an in-region release only sees the region's own
        step and constrains nothing outside it.
        """
        return self.first_acquire is not None and (
            self.first_release is None
            or self.first_acquire < self.first_release
        )


@dataclass(frozen=True, slots=True)
class RegionSummary:
    """The static footprint of one transaction-bounded region.

    A pure function of the operation sequence (see
    :func:`summarize_region`) — it contains nothing about analysis
    state, which is why one summary can be applied to any backend at
    any later occurrence of the same shape.

    Attributes:
        op_count: operations in the region, markers included.
        label: the outermost ``begin``'s atomic-block label.
        vars: per-variable footprints, in first-touch order.
        locks: per-lock footprints, in first-touch order.
        stores: the graph family's store plan — ``(kind, name,
            final_offset)`` triples, ``kind`` one of ``"r"``/``"w"``/
            ``"u"`` (reader/writer/unlocker), ordered by the offset at
            which an op-by-op replay would first create the entry
            (weak-map insertion order is observable state).
    """

    op_count: int
    label: Optional[str]
    vars: tuple[VarUse, ...]
    locks: tuple[LockUse, ...]
    stores: tuple[tuple[str, str, int], ...]


def summarize_region(ops: Sequence[Operation]) -> RegionSummary:
    """Compute the :class:`RegionSummary` of a region's operations.

    ``ops`` must be one thread's transaction-bounded run: it starts
    with a ``begin``, every operation is by the same thread, and the
    block nesting depth returns to zero exactly at the last operation.
    Raises ``ValueError`` on any other shape.
    """
    if not ops or ops[0].kind is not OpKind.BEGIN:
        raise ValueError("a region starts with a begin operation")
    tid = ops[0].tid
    depth = 0
    var_uses: dict[str, dict[str, int]] = {}
    lock_uses: dict[str, dict[str, int]] = {}
    order: list[tuple[int, str, str, str]] = []  # (first offset, kind, name)
    for offset, op in enumerate(ops):
        if op.tid != tid:
            raise ValueError("a region belongs to a single thread")
        kind = op.kind
        if kind is OpKind.BEGIN:
            depth += 1
        elif kind is OpKind.END:
            depth -= 1
            if depth < 0:
                raise ValueError("end without begin inside a region")
            if depth == 0 and offset != len(ops) - 1:
                raise ValueError("region closes before its last operation")
        elif kind is OpKind.READ:
            use = var_uses.setdefault(op.target, {})
            if "first_read" not in use:
                use["first_read"] = offset
                order.append((offset, "r", op.target))
            use["last_read"] = offset
        elif kind is OpKind.WRITE:
            use = var_uses.setdefault(op.target, {})
            if "first_write" not in use:
                use["first_write"] = offset
                order.append((offset, "w", op.target))
            use["last_write"] = offset
        elif kind is OpKind.ACQUIRE:
            use = lock_uses.setdefault(op.target, {})
            if "first_acquire" not in use:
                use["first_acquire"] = offset
        elif kind is OpKind.RELEASE:
            use = lock_uses.setdefault(op.target, {})
            if "first_release" not in use:
                use["first_release"] = offset
                order.append((offset, "u", op.target))
            use["last_release"] = offset
    if depth != 0:
        raise ValueError("region ends with open atomic blocks")
    final = {
        "r": {name: use["last_read"] for name, use in var_uses.items()
              if "last_read" in use},
        "w": {name: use["last_write"] for name, use in var_uses.items()
              if "last_write" in use},
        "u": {name: use["last_release"] for name, use in lock_uses.items()
              if "last_release" in use},
    }
    return RegionSummary(
        op_count=len(ops),
        label=ops[0].label,
        vars=tuple(
            VarUse(name, **use) for name, use in var_uses.items()
        ),
        locks=tuple(
            LockUse(name, **use) for name, use in lock_uses.items()
        ),
        stores=tuple(
            (kind, name, final[kind][name])
            for _, kind, name in sorted(order)
        ),
    )


# ------------------------------------------------------------ canonical keys
def region_key(ops: Sequence[Operation]) -> tuple:
    """The hashable canonical shape of a region.

    Thread ids and values are abstracted away: no analysis consults
    recorded values, and the acting thread is supplied separately when
    a memoized summary is applied.  Two regions with equal keys have
    identical summaries and identical per-backend effects (given the
    acting thread and the backend's entry state).

    The shape is a *flat* tuple — three slots per operation (kind code,
    target, label) — of strings and ``None``, so hashing and equality
    stay entirely in C; ``OpKind`` members hash through a Python-level
    ``__hash__`` and would dominate the lookup cost on hot paths
    (``kind._value_`` reads the member's plain attribute and skips the
    ``DynamicClassAttribute`` descriptor of ``.value`` for the same
    reason).
    """
    key: list = []
    extend = key.extend
    for op in ops:
        extend((op.kind._value_, op.target, op.label))
    return tuple(key)


def region_digest(ops: Sequence[Operation]) -> str:
    """A short stable digest of a region's canonical shape.

    Used for display (``repro trace info --regions``) and triage; the
    hot path keys the memo table on :func:`region_key` directly and
    never hashes.
    """
    canonical = [
        [op.kind.value, op.target, op.label] for op in ops
    ]
    payload = json.dumps(canonical, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------- the memo
class RegionMemo:
    """Bounded LRU table: region key -> :class:`RegionSummary`.

    Summarization is deferred: the first occurrence of a shape records
    only the sentinel :data:`PENDING` (one dict slot, no footprint
    walk), and the *second* occurrence pays for the summary — so traces
    whose regions never repeat get close to zero memo overhead, and the
    one extra replay on repeating shapes is noise against their Nth
    occurrence being applied from cache.

    ``max_entries == 0`` disables storage entirely — every lookup
    misses, nothing is retained, nothing is evicted — which is how
    ``--memo-max 0`` turns the feature into (almost) a no-op while
    keeping the code path exercised.

    Counters are exact: every completed region at or above ``min_ops``
    is one lookup — a hit iff it returned a cached summary (the
    occurrence can be applied instead of replayed), a miss otherwise —
    and every capacity overflow is one eviction.  Regions below
    ``min_ops`` (see :data:`MIN_REGION_OPS`) bypass the memo entirely
    and move no counter.

    ``promising`` holds the begin-op prefixes (the first three slots of
    a region key) of every summarized shape: the assembler streams
    first occurrences straight through and only *holds back* a region
    whose ``begin`` matches a promising prefix — the one case a cached
    summary could be applied.  :meth:`insert` promotes the prefix, so a
    pre-warmed table applies from the very first occurrence.
    """

    #: Sentinel ``lookup`` result: the shape has been seen before but
    #: not summarized yet — summarize now and :meth:`insert`.
    PENDING = object()

    def __init__(
        self,
        max_entries: int = DEFAULT_MEMO_MAX,
        min_ops: int = MIN_REGION_OPS,
    ):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if min_ops < 0:
            raise ValueError("min_ops must be >= 0")
        self.max_entries = max_entries
        self.min_ops = min_ops
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self.promising: set[tuple] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        """Current keys, least recently used first (for tests)."""
        return list(self._entries)

    def lookup(self, key: tuple):
        """The cached summary for ``key``, counting a hit or a miss.

        Returns the :class:`RegionSummary` (a hit), :data:`PENDING`
        (seen once, unsummarized — a miss), or ``None`` (never seen —
        a miss).  The first-occurrence sentinel is recorded here, so a
        plain miss needs no second call.
        """
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            self.misses += 1
            if self.max_entries:
                if len(entries) >= self.max_entries:
                    entries.popitem(last=False)
                    self.evictions += 1
                entries[key] = RegionMemo.PENDING
            return None
        entries.move_to_end(key)
        if entry is RegionMemo.PENDING:
            self.misses += 1
            return RegionMemo.PENDING
        self.hits += 1
        return entry

    def observe(self, key: tuple):
        """Record a completed occurrence that was already replayed.

        The stream-through path delivers a region's operations as they
        arrive, so by completion nothing can be applied — the occurrence
        always counts as a miss.  Returns :data:`PENDING` when the
        caller should summarize-and-insert now (second occurrence), the
        cached summary when one already exists (a pre-warmed table whose
        prefix promotion was lost — re-promoted here), or ``None``.
        """
        self.misses += 1
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            if self.max_entries:
                if len(entries) >= self.max_entries:
                    entries.popitem(last=False)
                    self.evictions += 1
                entries[key] = RegionMemo.PENDING
            return None
        entries.move_to_end(key)
        if entry is not RegionMemo.PENDING:
            self.promising.add(key[:3])
        return entry

    def insert(self, key: tuple, summary: RegionSummary) -> None:
        """Remember ``summary``, evicting the LRU entry on overflow.

        Also promotes the shape's begin prefix to ``promising`` so the
        assembler holds back — and can apply — later occurrences.  The
        prefix set is auxiliary (a stale prefix only costs a buffered
        replay) and self-healing, so on pathological growth it is
        simply cleared and rebuilt by later promotions.
        """
        if self.max_entries == 0:
            return
        promising = self.promising
        if len(promising) >= max(64, 4 * self.max_entries):
            promising.clear()
        promising.add(key[:3])
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = summary
            return
        if len(entries) >= self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = summary

    def stats(self) -> dict[str, int]:
        """The counter snapshot reported by ``--stats`` / ``/metrics``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }


# ------------------------------------------------------------- the assembler
class RegionAssembler:
    """Assemble transaction-bounded regions out of an event stream.

    Sits in front of an event sink.  Operations outside regions pass
    straight through ``process_op``.  A ``begin`` opens a region, and
    the assembler handles it in one of two modes:

    * **stream-through** (the default): operations are delivered to
      ``process_op`` *immediately* and recorded on the side; when the
      nesting depth returns to zero the completed recording is
      :meth:`RegionMemo.observe`-d — the first occurrence of a shape
      records only that it was seen (:data:`RegionMemo.PENDING`), the
      second pays for the summary (so shapes that never repeat never
      pay for one, and no operation is ever handled twice);
    * **hold-back**: when the ``begin`` matches a *promising* prefix
      (the shape — or a sibling sharing its ``begin`` — has a certified
      summary), operations are buffered unseen by the sink, and the
      completed region's cached summary is delivered through
      ``process_region(ops, summary)`` — the caller offers it to its
      backends and replays for any that decline (or on a memo miss).

    Region contiguity is what makes a summary applicable — an
    interleaved operation of another thread could change the very state
    the summary's preconditions were checked against — so an
    interleaving operation abandons a recording (its operations already
    reached the sink) and drains a hold-back buffer through
    ``process_op`` in order; either way the downstream sink observes
    the exact input stream.  Over-long regions (:data:`MAX_REGION_OPS`)
    and :meth:`flush` do the same.
    """

    __slots__ = (
        "_process_op", "_process_region", "memo", "max_ops",
        "_buffer", "_tid", "_depth", "_rec", "_rec_tid", "_rec_depth",
    )

    def __init__(
        self,
        process_op: Callable[[Operation], None],
        process_region: Callable[[list, RegionSummary], None],
        memo: RegionMemo,
        max_ops: int = MAX_REGION_OPS,
    ):
        self._process_op = process_op
        self._process_region = process_region
        self.memo = memo
        self.max_ops = max_ops
        # Both lists live for the assembler's lifetime (cleared, never
        # rebound): a non-empty buffer/recording IS the mode flag, and
        # the stable identity lets :meth:`process_many` hold locals.
        self._buffer: list[Operation] = []
        self._tid: Optional[int] = None
        self._depth = 0
        self._rec: list[Operation] = []
        self._rec_tid: Optional[int] = None
        self._rec_depth = 0

    @property
    def buffering(self) -> bool:
        """True while a region is being held back *or* recorded.

        Callers that can take shortcuts on whole blocks (summary
        folds) must not do so while this is set: held-back operations
        have not reached the backends yet, and a fold would leave a
        gap in an in-flight recording (certifying a wrong summary).
        """
        return bool(self._buffer) or bool(self._rec)

    def process(
        self,
        op: Operation,
        # Default-argument bindings: enum member lookups are two loads
        # (module global, then class attribute) and this runs per event.
        _BEGIN=OpKind.BEGIN,
        _END=OpKind.END,
        _BEGIN_CODE=OpKind.BEGIN._value_,
    ) -> None:
        buffer = self._buffer
        if buffer:
            if op.tid == self._tid:
                buffer.append(op)
                kind = op.kind
                if kind is _END:
                    self._depth -= 1
                    if self._depth == 0:
                        self._complete()
                        return
                elif kind is _BEGIN:
                    self._depth += 1
                if len(buffer) >= self.max_ops:
                    self.flush()
                return
            self.flush()
        else:
            rec = self._rec
            if rec:
                if op.tid == self._rec_tid:
                    rec.append(op)
                    kind = op.kind
                    if kind is _END:
                        self._rec_depth -= 1
                        if self._rec_depth == 0:
                            self._process_op(op)
                            self._observe()
                            return
                    elif kind is _BEGIN:
                        self._rec_depth += 1
                    elif len(rec) >= self.max_ops:
                        # Too long to memoize; the operations already
                        # reached the sink, so just stop recording.
                        rec.clear()
                    self._process_op(op)
                    return
                # Another thread interleaved: the region is not
                # contiguous, so its shape could never be applied from
                # cache anyway.
                rec.clear()
        kind = op.kind
        if kind is _BEGIN:
            if (_BEGIN_CODE, op.target, op.label) in self.memo.promising:
                self._buffer.append(op)
                self._tid = op.tid
                self._depth = 1
                return
            self._rec.append(op)
            self._rec_tid = op.tid
            self._rec_depth = 1
        self._process_op(op)

    __call__ = process

    def process_many(
        self,
        ops: Iterable[Operation],
        _BEGIN=OpKind.BEGIN,
        _END=OpKind.END,
        _BEGIN_CODE=OpKind.BEGIN._value_,
    ) -> int:
        """Process a whole operation iterable; returns the count.

        Semantically ``for op in ops: self.process(op)``, but the
        per-operation dispatch runs inside one frame with the hot state
        in locals — sources that hold a full operation list (see
        :class:`~repro.pipeline.source.TraceSource`) shave a Python
        call per event, which is most of the memo layer's overhead on
        streams that never repeat.
        """
        process_op = self._process_op
        buffer = self._buffer
        rec = self._rec
        promising = self.memo.promising
        max_ops = self.max_ops
        count = 0
        for op in ops:
            count += 1
            if buffer:
                if op.tid == self._tid:
                    buffer.append(op)
                    kind = op.kind
                    if kind is _END:
                        self._depth -= 1
                        if self._depth == 0:
                            self._complete()
                            continue
                    elif kind is _BEGIN:
                        self._depth += 1
                    if len(buffer) >= max_ops:
                        self.flush()
                    continue
                self.flush()
            elif rec:
                if op.tid == self._rec_tid:
                    rec.append(op)
                    kind = op.kind
                    if kind is _END:
                        self._rec_depth -= 1
                        if self._rec_depth == 0:
                            process_op(op)
                            self._observe()
                            continue
                    elif kind is _BEGIN:
                        self._rec_depth += 1
                    elif len(rec) >= max_ops:
                        rec.clear()
                    process_op(op)
                    continue
                rec.clear()
            kind = op.kind
            if kind is _BEGIN:
                if (_BEGIN_CODE, op.target, op.label) in promising:
                    buffer.append(op)
                    self._tid = op.tid
                    self._depth = 1
                    continue
                rec.append(op)
                self._rec_tid = op.tid
                self._rec_depth = 1
            process_op(op)
        return count

    def flush(self) -> None:
        """Drain any held-back operations through ``process_op``."""
        buffer = self._buffer
        if not buffer:
            return
        ops = buffer[:]
        buffer.clear()
        self._depth = 0
        process = self._process_op
        for op in ops:
            process(op)

    def _observe(self) -> None:
        """Account a completed stream-through recording with the memo."""
        rec = self._rec
        memo = self.memo
        if len(rec) >= memo.min_ops:
            key = region_key(rec)
            if memo.observe(key) is RegionMemo.PENDING:
                # Second occurrence: pay for the summary now; the
                # insert promotes the prefix, so the third occurrence
                # on is held back and applied.
                memo.insert(key, summarize_region(rec))
        # Regions below min_ops are not even keyed.
        rec.clear()

    def _complete(self) -> None:
        buffer = self._buffer
        ops = buffer[:]
        buffer.clear()
        self._depth = 0
        memo = self.memo
        if len(ops) < memo.min_ops:
            process = self._process_op
            for op in ops:
                process(op)
            return
        key = region_key(ops)
        summary = memo.lookup(key)
        if summary is None or summary is RegionMemo.PENDING:
            # A sibling shape shares this begin prefix but the region
            # itself has no summary yet: replay, certifying on the
            # second occurrence exactly like the stream-through path.
            if summary is RegionMemo.PENDING:
                memo.insert(key, summarize_region(ops))
            process = self._process_op
            for op in ops:
                process(op)
            return
        self._process_region(ops, summary)


# ----------------------------------------------------------------- triage
@dataclass(frozen=True)
class RegionScan:
    """Repetition statistics of a trace (``repro trace info --regions``).

    ``repeated`` counts region *occurrences* whose shape occurs more
    than once; ``contiguous`` counts occurrences uninterrupted by other
    threads in the global order (the ones the assembler can buffer and
    therefore the ones memoization can accelerate).
    """

    regions: int
    repeated: int
    contiguous: int
    region_events: int
    total_events: int
    top: tuple[tuple[str, int, int, Optional[str]], ...]  # digest, count, ops, label

    @property
    def repetition_ratio(self) -> float:
        """Share of region occurrences that repeat an earlier shape."""
        return self.repeated / self.regions if self.regions else 0.0

    @property
    def region_event_ratio(self) -> float:
        """Share of trace events that sit inside a region."""
        return (
            self.region_events / self.total_events
            if self.total_events else 0.0
        )


def scan_regions(ops: Iterable[Operation], top: int = 10) -> RegionScan:
    """Measure region repetition to predict memoization payoff.

    Walks the trace once, extracting every thread's transaction-bounded
    regions (by that thread's own subsequence, so interleaved regions
    are still recognized) and counting repeated shapes; contiguity in
    the global order is tracked separately since only contiguous
    occurrences can be assembled on the fly.
    """
    open_regions: dict[int, dict] = {}  # tid -> {ops, depth, contiguous}
    shape_counts: dict[tuple, int] = {}
    shape_info: dict[tuple, tuple[str, int, Optional[str]]] = {}
    regions = contiguous = region_events = total_events = 0
    for op in ops:
        total_events += 1
        tid = op.tid
        # Any operation breaks the contiguity of other threads' regions.
        for other_tid, other in open_regions.items():
            if other_tid != tid:
                other["contiguous"] = False
        current = open_regions.get(tid)
        if current is None:
            if op.kind is OpKind.BEGIN:
                open_regions[tid] = {
                    "ops": [op], "depth": 1, "contiguous": True,
                }
            continue
        current["ops"].append(op)
        if op.kind is OpKind.BEGIN:
            current["depth"] += 1
        elif op.kind is OpKind.END:
            current["depth"] -= 1
            if current["depth"] == 0:
                del open_regions[tid]
                region_ops = current["ops"]
                key = region_key(region_ops)
                count = shape_counts.get(key, 0) + 1
                shape_counts[key] = count
                if key not in shape_info:
                    shape_info[key] = (
                        region_digest(region_ops),
                        len(region_ops),
                        region_ops[0].label,
                    )
                regions += 1
                if current["contiguous"]:
                    contiguous += 1
                region_events += len(region_ops)
    repeated = sum(
        count for count in shape_counts.values() if count > 1
    )
    ranked = sorted(
        shape_counts.items(), key=lambda item: (-item[1], shape_info[item[0]][0])
    )
    return RegionScan(
        regions=regions,
        repeated=repeated,
        contiguous=contiguous,
        region_events=region_events,
        total_events=total_events,
        top=tuple(
            (shape_info[key][0], count, shape_info[key][1], shape_info[key][2])
            for key, count in ranked[:top]
        ),
    )


__all__ = [
    "MAX_REGION_OPS",
    "MIN_REGION_OPS",
    "DEFAULT_MEMO_MAX",
    "VarUse",
    "LockUse",
    "RegionSummary",
    "summarize_region",
    "region_key",
    "region_digest",
    "RegionMemo",
    "RegionAssembler",
    "RegionScan",
    "scan_regions",
]
