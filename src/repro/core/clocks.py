"""Shared vector-clock primitives.

Two consumers with different performance profiles share this module:

* :class:`VectorClock` — the object-level clock used by the
  happens-before race baseline
  (:mod:`repro.baselines.vectorclock`).  Sparse: absent components
  read as 0, so a clock over a 64-thread trace that only ever
  synchronized two threads stores two entries.
* the dict-level helpers (:func:`vc_join`, :func:`vc_copy`) — the
  AeroDrome-class atomicity backend (:mod:`repro.core.aerodrome`)
  keeps raw ``dict[int, int]`` clocks on its hot path and cannot
  afford a method call per merge, so the pointwise operations are
  exposed over plain dicts too.  :class:`VectorClock` delegates to
  them, keeping one definition of the merge semantics.

Clocks are unbounded Python ints; ``tick`` cannot overflow.
"""

from __future__ import annotations

from typing import Optional


def vc_join(dst: dict[int, int], src: dict[int, int]) -> bool:
    """Pointwise maximum of ``src`` into ``dst``, in place.

    Returns True iff ``dst`` changed — callers use this to skip
    propagating merges that were already dominated.
    """
    changed = False
    get = dst.get
    for tid, clock in src.items():
        if clock > get(tid, 0):
            dst[tid] = clock
            changed = True
    return changed


def vc_copy(src: dict[int, int]) -> dict[int, int]:
    """A fresh dict with the same components."""
    return dict(src)


def vc_dominates(a: dict[int, int], b: dict[int, int]) -> bool:
    """True iff ``a >= b`` pointwise (absent components read as 0)."""
    get = a.get
    return all(get(tid, 0) >= clock for tid, clock in b.items())


class VectorClock:
    """A mapping from thread ids to logical clocks (sparse)."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Optional[dict[int, int]] = None):
        self._clocks: dict[int, int] = dict(clocks) if clocks else {}

    def get(self, tid: int) -> int:
        """The component for thread ``tid`` (0 when absent)."""
        return self._clocks.get(tid, 0)

    def tick(self, tid: int) -> None:
        """Increment thread ``tid``'s component."""
        self._clocks[tid] = self._clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> bool:
        """Pointwise maximum, in place.  True iff ``self`` changed."""
        return vc_join(self._clocks, other._clocks)

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)

    def dominates(self, other: "VectorClock") -> bool:
        """True iff ``self >= other`` pointwise."""
        return vc_dominates(self._clocks, other._clocks)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"t{t}:{c}" for t, c in sorted(self._clocks.items())
        )
        return f"VC({inner})"


__all__ = ["VectorClock", "vc_copy", "vc_dominates", "vc_join"]
