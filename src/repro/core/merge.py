"""The ``merge`` function (paper Figures 3 and 4).

Operations outside any atomic block run in their own unary transaction.
Allocating a graph node for every such operation is wasteful — most
would be garbage collected immediately.  ``merge`` takes the steps that
would be the new node's predecessors and:

* returns absent when every predecessor is absent (the operation's
  unary transaction could never join a cycle, so it needs no node);
* returns an existing step ``sj`` when some live predecessor
  happens-after all the others (the unary transaction is folded into
  ``sj``'s node without changing reachability, now or later);
* otherwise allocates one fresh node with edges from every live
  predecessor.

Merging is safe because the merged node can never acquire incoming
edges beyond the ones given here, so no cycle can form through it
(paper Section 4.2).

When folding into an existing node, the direct edges from the other
predecessors are still recorded (refreshing timestamps on edges that
already exist).  Reachability is unchanged — every predecessor
already reaches the representative, which is exactly why folding is
legal — but the *timestamps* of the subsumed conflicts would
otherwise only survive on whatever stale multi-hop path made the
representative reachable.  Blame assignment (Section 4.3) reads root
timestamps off cycle paths, so dropping the direct edges makes blame
depend on which predecessors garbage collection happened to keep
alive: the differential fuzzer found a trace where the GC-enabled
analysis folded a racing write into a bystander's node, aged the
conflict's root timestamp past an open block's entry, and lost a
blame the GC-disabled analysis certified (``tests/corpus/``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graph.hbgraph import HBGraph
from repro.graph.node import Step, deref


def merge(
    graph: HBGraph,
    steps: Sequence[Optional[Step]],
    tid: int,
) -> Optional[Step]:
    """Merge the given predecessor steps; see the module docstring.

    ``tid`` labels the fresh node (diagnostics only) when one is needed.
    Collected-node steps are weak references and read as absent.
    """
    live: list[Step] = []
    for step in steps:
        resolved = deref(step)
        if resolved is not None:
            live.append(resolved)
    if not live:
        return None
    # Look for a representative that (non-strictly) happens-after all
    # the others.  Timestamps are ignored: unary transactions are
    # serializable by definition, so node-level reachability suffices.
    #
    # The representative must additionally be a *finished* node.  A
    # current transaction can still execute operations that conflict
    # with the merged one, and folding the unary transaction into it
    # would turn the resulting genuine cycle into an invisible
    # self-edge (losing completeness).  Figure 3's merge does not state
    # this side condition, but every merge in the paper's Section 4.2
    # prose targets the thread's own finished predecessor L(t); the
    # condition makes the general rule sound in the same way.
    for candidate in live:
        if candidate.node.current:
            continue
        if all(graph.reaches(step.node, candidate.node) for step in live):
            graph.stats.merges += 1
            # Record the direct conflict edges (see module docstring):
            # each predecessor already reaches the candidate, so these
            # can never close a cycle — they only pin the timestamps
            # blame assignment needs.
            for step in live:
                if step.node is candidate.node:
                    continue
                cycle = graph.add_edge(step, candidate, reason="merge")
                assert cycle is None, (
                    "edge to an already-reachable node cannot close a cycle"
                )
            return candidate
    node = graph.new_node(tid, label=None)
    fresh = Step(node, 0)
    for step in live:
        cycle = graph.add_edge(step, fresh, reason="merge")
        assert cycle is None, "a fresh sink node cannot close a cycle"
    # The merged node is never a current transaction: it can receive no
    # further incoming edges, so finish it immediately.  It stays alive
    # while its predecessors do (it has at least two incoming edges).
    graph.finish(node)
    return fresh
