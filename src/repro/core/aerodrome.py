"""AeroDrome: linear-time atomicity checking with vector clocks.

Velodrome (the rest of :mod:`repro.core`) maintains the transactional
happens-before graph explicitly and pays for cycle detection and node
GC on the hot path.  Mathur and Viswanathan's "Atomicity Checking in
Linear Time using Vector Clocks" shows the same sound-and-complete
verdict — a trace is reported exactly when it is not
conflict-serializable — is computable without any graph at all: give
every transaction a vector clock, timestamp the last conflicting
access of every resource, and a serialization cycle closes precisely
when a transaction *joins a clock that already contains its own
begin component*.  "Fast Atomicity Monitoring" (Tunç et al.) sharpens
the per-event cost; this implementation borrows its spirit for the
non-transactional fast path.

The subtlety is that a transaction's clock keeps *growing* while it
is live, and resources written earlier must observe that growth or
completeness is lost.  Velodrome's graph gets this for free (edges
point at nodes, and nodes accumulate in-edges); a clock algorithm has
to propagate.  We therefore keep, per transaction, a mutable clock
**cell** rather than a snapshot:

* every resource (variable read/write, lock, per-thread program
  order) stores the *cell* of the last conflicting transaction;
* each cell records which threads' *ongoing* transactions it
  transitively depends on (``tracking``), and each thread keeps the
  inverse index (``followers``) of every cell that tracks it;
* when a live transaction's clock grows, the new clock is pushed into
  all its followers immediately.  Follower sets are kept
  *transitively complete* (registering a dependency flattens the
  follower set onto the new upstream), so one level of push suffices.

The violation check then needs no graph search: thread ``t`` inside a
transaction whose begin component is ``c`` joins cell ``k`` — if
``k.vc[t] >= c``, then ``k`` already depends on the current
transaction while the current operation makes the current transaction
depend on ``k``: a cycle, reported at exactly this operation.  This
matches :func:`repro.core.serializability.earliest_violation` (the
first operation whose prefix is non-serializable), because the
conflict relation here mirrors :func:`repro.events.operations.
conflicts` slot by slot: per-variable last-write and per-thread
last-read cells (reads clear on write), one cell per lock (*every*
pair of same-lock operations conflicts in this model, so a lock is a
single always-written slot), and program order via cell inheritance.

Operations outside atomic blocks are unary transactions.  They can
never close a cycle (a cycle needs an out-edge from the current
transaction, which a single-operation transaction acquires only after
its one operation), so they skip the check entirely; consecutive
unary operations of a thread share one frozen carry cell, cloned only
when a join would actually change its clock or tracking
(invalidate-on-change), which makes single-threaded stretches O(1)
per event with no allocation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.clocks import vc_join
from repro.core.reports import atomicity_warning
from repro.events.operations import Operation, OpKind


class _Cell:
    """The mutable clock of one transaction (or unary-run carry).

    Attributes:
        vc: the transaction's vector clock, ``tid -> component``.
        tid: owning thread.
        start: the owning thread's begin component (the value ticked
            at BEGIN); the violation check compares against it.  0 for
            unary carry cells, which never check.
        live: True while the transaction is open; live cells are the
            push *sources* for their followers.
        tracking: threads whose currently-ongoing transaction this
            cell transitively depends on; the cell is registered in
            each one's follower set and keeps absorbing its growth.
        warned: a violation was already reported for this transaction
            (at most one warning per transaction).
        label: the atomic block's label, for reports.
    """

    __slots__ = ("vc", "tid", "start", "live", "tracking", "warned", "label")

    def __init__(
        self,
        vc: dict[int, int],
        tid: int,
        start: int,
        live: bool,
        tracking: set[int],
        label: Optional[str] = None,
    ):
        self.vc = vc
        self.tid = tid
        self.start = start
        self.live = live
        self.tracking = tracking
        self.warned = False
        self.label = label


class _Thread:
    """Per-thread analysis state."""

    __slots__ = ("cell", "depth")

    def __init__(self, cell: _Cell):
        self.cell = cell
        self.depth = 0  # open BEGIN nesting; > 0 means inside a block


class AeroDrome(AnalysisBackend):
    """The vector-clock atomicity analysis (sound and complete).

    Reports a violation exactly when the trace is not
    conflict-serializable, at the first operation whose prefix is
    non-serializable — the same verdict and first-warning position as
    the Velodrome graph family, in O(1) amortized clock work per event
    instead of graph search.  At most one warning is reported per
    transaction; warnings carry the block label but no witnessing
    cycle (there is no graph to extract one from — use a Velodrome
    backend with ``--explain`` for rendered cycles).
    """

    name = "AERODROME"

    def __init__(self) -> None:
        super().__init__()
        self._threads: dict[int, _Thread] = {}
        # Inverse dependency index: for each thread with an ongoing
        # transaction, every cell that transitively depends on it.  An
        # insertion-ordered dict doubles as a deterministic set.
        self._followers: dict[int, dict[_Cell, None]] = {}
        # Resource slots: the cell of the last conflicting access.
        self._write: dict[str, _Cell] = {}  # var -> last write
        self._reads: dict[str, dict[int, _Cell]] = {}  # var -> tid -> read
        self._lock: dict[str, _Cell] = {}  # lock -> last lock op
        self._handlers = {
            OpKind.READ: self._read,
            OpKind.WRITE: self._write_op,
            OpKind.ACQUIRE: self._lock_op,
            OpKind.RELEASE: self._lock_op,
            OpKind.BEGIN: self._begin,
            OpKind.END: self._end,
        }

    # ---------------------------------------------------------------- process
    def process(self, op: Operation) -> None:
        # Overrides the base class to fold the process -> _process call
        # into a single frame: one dict lookup, one handler call.
        self._handlers[op.kind](op, self.events_processed)
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        self._handlers[op.kind](op, position)

    # ------------------------------------------------------------ transactions
    def _thread(self, tid: int) -> _Thread:
        state = self._threads.get(tid)
        if state is None:
            state = _Thread(_Cell({}, tid, 0, False, set()))
            self._threads[tid] = state
        return state

    def _begin(self, op: Operation, position: int) -> None:
        state = self._thread(op.tid)
        state.depth += 1
        if state.depth > 1:
            return  # nested blocks fold into the outermost transaction
        prev = state.cell
        tid = op.tid
        vc = dict(prev.vc)
        component = vc.get(tid, 0) + 1
        vc[tid] = component
        # The new transaction inherits everything its predecessor
        # still depends on: program order makes those dependencies
        # transitive, and the upstream transactions may still grow.
        tracking = set(prev.tracking)
        cell = _Cell(vc, tid, component, True, tracking, op.label)
        for upstream in tracking:
            self._followers.setdefault(upstream, {})[cell] = None
        state.cell = cell

    def _end(self, op: Operation, position: int) -> None:
        state = self._thread(op.tid)
        if state.depth == 0:
            return  # stray END (possible on quarantined streams): ignore
        state.depth -= 1
        if state.depth:
            return
        cell = state.cell
        cell.live = False
        # The transaction's clock is final: release its followers.
        followers = self._followers.pop(op.tid, None)
        if followers:
            for follower in followers:
                follower.tracking.discard(op.tid)
        # The frozen cell stays as the thread's carry: subsequent unary
        # operations and the next BEGIN inherit from it.

    # ------------------------------------------------------------ propagation
    def _track(self, cell: _Cell, upstream: int) -> None:
        """Record that ``cell`` depends on ``upstream``'s ongoing txn.

        Flattens: everything already tracking ``cell``'s own ongoing
        transaction transitively depends on ``upstream`` too, so it is
        registered alongside — this keeps follower sets transitively
        complete, which is what lets clock pushes stop at one level.
        """
        cell.tracking.add(upstream)
        target = self._followers.setdefault(upstream, {})
        target[cell] = None
        own = self._followers.get(cell.tid)
        if own:
            for follower in list(own):
                if follower.tid != upstream and upstream not in follower.tracking:
                    follower.tracking.add(upstream)
                    target[follower] = None

    def _join(self, state: _Thread, cell: _Cell, op: Operation, position: int) -> None:
        """Merge ``cell`` into the current transaction, checking first.

        Only called with ``cell.tid != op.tid`` and the thread inside
        a transaction; same-thread cells are dominated by program
        order and need no merge, and unary operations go through
        :meth:`_unary_join`.
        """
        cur = state.cell
        tid = op.tid
        if not cur.warned and cell.vc.get(tid, 0) >= cur.start:
            # ``cell`` already depends on this very transaction, and
            # this operation orders ``cell`` before it: a cycle.
            cur.warned = True
            self.report(
                atomicity_warning(
                    self.name,
                    cur.label,
                    tid,
                    position,
                    f"serialization cycle closed at {op}: "
                    f"a conflicting transaction already depends on "
                    f"this atomic block",
                )
            )
        changed = vc_join(cur.vc, cell.vc)
        if cell.live and cell.tid not in cur.tracking:
            self._track(cur, cell.tid)
        # Snapshot: when ``cell`` itself follows this thread, the
        # flattening inside _track extends ``cell.tracking`` mid-loop.
        for upstream in tuple(cell.tracking):
            if upstream != tid and upstream not in cur.tracking:
                self._track(cur, upstream)
        if changed:
            followers = self._followers.get(tid)
            if followers:
                vc = cur.vc
                for follower in followers:
                    vc_join(follower.vc, vc)

    def _unary_join(self, state: _Thread, cells: tuple, tid: int) -> _Cell:
        """Absorb ``cells`` into the thread's unary carry cell.

        Unary transactions never close a cycle, so there is no check;
        the only obligation is that the cell stored into the resource
        slots carries the right clock and tracking.  The carry cell is
        shared by consecutive unary operations and already sits in
        older slots, so if a join would change it, it is cloned first
        (the older slots must not observe dependencies only this
        operation introduces).  In-place growth pushed by tracked
        upstreams is fine — every sharer depends on those same
        transactions — so single-threaded stretches never clone.
        """
        carry = state.cell
        tracking = carry.tracking
        vc = carry.vc
        dirty = False
        for cell in cells:
            if cell is None or cell is carry or cell.tid == tid:
                continue
            if cell.live and cell.tid not in tracking:
                dirty = True
                break
            for clock_tid, clock in cell.vc.items():
                if clock > vc.get(clock_tid, 0):
                    dirty = True
                    break
            else:
                for upstream in cell.tracking:
                    if upstream != tid and upstream not in tracking:
                        dirty = True
                        break
                else:
                    continue
            break
        if dirty:
            carry = _Cell(dict(vc), tid, 0, False, set(tracking))
            for upstream in carry.tracking:
                self._followers.setdefault(upstream, {})[carry] = None
            state.cell = carry
            for cell in cells:
                if cell is None or cell is carry or cell.tid == tid:
                    continue
                vc_join(carry.vc, cell.vc)
                if cell.live and cell.tid not in carry.tracking:
                    self._track(carry, cell.tid)
                for upstream in tuple(cell.tracking):
                    if upstream != tid and upstream not in carry.tracking:
                        self._track(carry, upstream)
        return carry

    # --------------------------------------------------------------- handlers
    def _read(self, op: Operation, position: int) -> None:
        tid = op.tid
        state = self._thread(tid)
        writer = self._write.get(op.target)
        if state.depth:
            cur = state.cell
            if writer is not None and writer is not cur and writer.tid != tid:
                self._join(state, writer, op, position)
            cell = cur
        else:
            cell = self._unary_join(state, (writer,), tid)
        self._reads.setdefault(op.target, {})[tid] = cell

    def _write_op(self, op: Operation, position: int) -> None:
        tid = op.tid
        state = self._thread(tid)
        var = op.target
        writer = self._write.get(var)
        readers = self._reads.get(var)
        if state.depth:
            cur = state.cell
            if writer is not None and writer is not cur and writer.tid != tid:
                self._join(state, writer, op, position)
            if readers:
                for reader_tid, reader in readers.items():
                    if reader_tid != tid and reader is not cur:
                        self._join(state, reader, op, position)
                readers.clear()
            cell = cur
        else:
            if readers:
                joins = (writer,) + tuple(readers.values())
            else:
                joins = (writer,)
            cell = self._unary_join(state, joins, tid)
            if readers:
                readers.clear()
        self._write[var] = cell

    def _lock_op(self, op: Operation, position: int) -> None:
        tid = op.tid
        state = self._thread(tid)
        last = self._lock.get(op.target)
        if state.depth:
            cur = state.cell
            if last is not None and last is not cur and last.tid != tid:
                self._join(state, last, op, position)
            cell = cur
        else:
            cell = self._unary_join(state, (last,), tid)
        self._lock[op.target] = cell

    # ---------------------------------------------------- region memoization
    def apply_region_summary(self, summary, tid: int) -> bool:
        """Apply one memoized transaction-bounded region without replay.

        Inside a transaction every clock join is guarded by ``cell is
        not None and cell is not cur and cell.tid != tid``: a dead or
        same-thread slot joins nothing.  If every resource slot the
        region consults is empty or owned by this thread, the replay
        performs no join at all — no violation check can fire, no
        clock grows, no follower push happens — and its net effect is
        one fresh transaction cell stored into every touched slot.
        An other-thread cell is also harmless when it is *inert*: no
        longer live (so no tracking registration), its clock dominated
        by this thread's carry (so ``vc_join`` changes nothing and no
        follower push fires), and tracking nothing this thread's carry
        does not already track (so the transitive-tracking loop is a
        no-op).  This is the clock-world analog of the graph family's
        "collected node" — on repetitive streams most stale slots
        settle into it.  The preconditions, per consulted slot
        (variable last-write for any access; per-thread reads for
        writes; the lock cell for both acquire and release): absent,
        this thread's, or inert — and the thread must not be inside an
        atomic block.

        When certified, the cell creation below mirrors ``_begin``
        literally (inherited clock, ticked component, inherited
        tracking with follower registration), the slot stores write
        the replay's final values in first-touch order, and the
        closing mirrors ``_end`` (freeze, release followers) — so the
        retained state is exactly the replay's.
        """
        state = self._threads.get(tid)
        if state is not None and state.depth:
            return False
        if state is not None:
            prev_vc = state.cell.vc
            prev_tracking = state.cell.tracking
        else:
            prev_vc = {}
            prev_tracking = frozenset()

        def inert(cell: Optional[_Cell]) -> bool:
            if cell is None or cell.tid == tid:
                return True
            if cell.live:
                return False
            for clock_tid, clock in cell.vc.items():
                if clock > prev_vc.get(clock_tid, 0):
                    return False
            for upstream in cell.tracking:
                if upstream != tid and upstream not in prev_tracking:
                    return False
            return True

        for use in summary.vars:
            if not inert(self._write.get(use.name)):
                return False
            if use.written:
                readers = self._reads.get(use.name)
                if readers and not all(
                    reader_tid == tid or inert(reader)
                    for reader_tid, reader in readers.items()
                ):
                    return False
        for use in summary.locks:
            if not inert(self._lock.get(use.name)):
                return False

        # Certified: mirror _begin, write the final slots, mirror _end.
        state = self._thread(tid)
        prev = state.cell
        vc = dict(prev.vc)
        component = vc.get(tid, 0) + 1
        vc[tid] = component
        tracking = set(prev.tracking)
        cell = _Cell(vc, tid, component, True, tracking, summary.label)
        for upstream in tracking:
            self._followers.setdefault(upstream, {})[cell] = None
        state.cell = cell
        for use in summary.vars:
            readers = self._reads.get(use.name)
            if use.read and readers is None:
                readers = self._reads[use.name] = {}
            if use.written:
                if readers:
                    readers.clear()
                self._write[use.name] = cell
            if use.reads_last:
                readers[tid] = cell
        for use in summary.locks:
            self._lock[use.name] = cell
        cell.live = False
        followers = self._followers.pop(tid, None)
        if followers:
            for follower in followers:
                follower.tracking.discard(tid)
        self.events_processed += summary.op_count
        return True

    # -------------------------------------------------------------- resources
    def state_entry_count(self) -> Optional[int]:
        """Retained clock-state entries (a resource-governor proxy)."""
        return (
            len(self._write)
            + sum(len(readers) for readers in self._reads.values())
            + len(self._lock)
            + sum(len(cells) for cells in self._followers.values())
        )


__all__ = ["AeroDrome"]
