"""The analysis-backend protocol shared by Velodrome and all baselines.

A backend is an online analysis: the instrumentation layer feeds it one
operation at a time, and it accumulates warnings.  This mirrors the
RoadRunner architecture of paper Section 5, where instrumented code
generates an event stream that is passed to an analysis back-end.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, Optional

from repro.events.operations import Operation

if TYPE_CHECKING:
    from repro.core.reports import Warning as AnalysisWarning
    from repro.store.summary import BlockSummary


class AnalysisBackend(abc.ABC):
    """Base class for online trace analyses."""

    #: Short name used in tables and reports (e.g. "VELODROME").
    name: str = "backend"

    def __init__(self) -> None:
        self._warnings: list["AnalysisWarning"] = []
        self.events_processed = 0

    @abc.abstractmethod
    def _process(self, op: Operation, position: int) -> None:
        """Handle one operation; override in subclasses."""

    def process(self, op: Operation) -> None:
        """Feed one operation to the analysis."""
        self._process(op, self.events_processed)
        self.events_processed += 1

    def process_trace(self, ops: Iterable[Operation]) -> "AnalysisBackend":
        """Feed a whole trace, then finish.  Returns self for chaining."""
        process = self.process  # bound once, outside the event loop
        for op in ops:
            process(op)
        self.finish()
        return self

    def finish(self) -> None:
        """Signal end of trace.  Subclasses may flush state."""

    def apply_block_summary(self, summary: "BlockSummary") -> bool:
        """Fast-forward one packed block from its summary, if possible.

        A packed trace source offers each block's
        :class:`~repro.store.summary.BlockSummary` before paying for
        the block's decode.  A backend that can prove from the summary
        alone that replaying the block operation by operation would
        leave it in a state it can construct directly may apply that
        state here and return True, *certifying* that its resulting
        state — verdicts, counters, internal maps — is exactly what
        the op-by-op replay would have produced.  ``events_processed``
        must be advanced by ``summary.op_count`` before returning True.

        Returning False declines the block: the caller decodes it and
        feeds every operation through :meth:`process` as usual, so a
        conservative (or wrong-shaped) summary can never weaken
        soundness or completeness.  The default declines everything.
        """
        return False

    def apply_region_summary(self, summary, tid: int) -> bool:
        """Apply one memoized transaction-bounded region, if possible.

        ``summary`` is a :class:`~repro.core.memo.RegionSummary` — the
        static access footprint of one thread's contiguous outermost
        ``begin``..``end`` region — and ``tid`` the thread performing
        this occurrence.  A backend that can prove, from the summary
        plus its *current* state, that replaying the region operation
        by operation would raise no warning and land in a state it can
        write directly may do so and return True, advancing
        ``events_processed`` by ``summary.op_count``.  The resulting
        state must be exactly what the replay would have produced
        (``repro.fuzz.memogate`` checks this with state snapshots
        across the ablation grid).

        Returning False declines: the caller replays the region's
        buffered operations through :meth:`process`, so memoization can
        never weaken soundness or completeness.  The default declines
        everything.
        """
        return False

    def report(self, warning: "AnalysisWarning") -> None:
        """Record one warning."""
        self._warnings.append(warning)

    @property
    def warnings(self) -> list["AnalysisWarning"]:
        """All warnings reported so far, in detection order.

        Returns a fresh copy each access; in hot loops that only need
        the count, use :attr:`warning_count` instead.
        """
        return list(self._warnings)

    @property
    def warning_count(self) -> int:
        """Number of warnings reported so far, without copying the list."""
        return len(self._warnings)

    @property
    def error_detected(self) -> bool:
        """True iff at least one warning has been reported."""
        return bool(self._warnings)

    def warned_labels(self) -> set[str]:
        """Distinct atomic-block / method labels named by warnings."""
        return {w.label for w in self._warnings if w.label is not None}

    # ------------------------------------------------------- resource hygiene
    # Hooks the supervised runtime (repro.resilience) uses to keep a
    # long-running analysis inside its budgets.  The defaults make every
    # backend safely supervisable; the Velodrome variants override them.

    def state_entry_count(self) -> Optional[int]:
        """Number of retained state entries, or ``None`` if untracked.

        Used by the resource governor as a memory proxy; ``None`` opts
        the backend out of state-budget enforcement.
        """
        return None

    def compact_state(self) -> dict[str, int]:
        """Drop reclaimable internal state; returns per-component counts.

        Must never change verdicts: only state that already reads as
        absent (weak references to collected transactions, dead packed
        codes) may be dropped.  The default backend retains nothing
        reclaimable.
        """
        return {}
