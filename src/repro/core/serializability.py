"""Reference conflict-serializability checkers.

These are the independent ground truths the property-test suite checks
Velodrome against:

* :func:`serialization_graph` / :func:`is_serializable` — the classical
  database-theory test the paper leans on (Bernstein et al.): build the
  graph whose nodes are the trace's transactions with an edge ``A -> B``
  whenever some operation of ``A`` precedes and conflicts with some
  operation of ``B``; the trace is conflict-serializable iff this graph
  is acyclic.
* :mod:`repro.events.equivalence` — brute-force search over commutation
  (exponential; tiny traces only), wired in by the tests as a third
  opinion.

Also provided: a serial witness extractor (topological order of the
serialization graph) and the earliest non-serializable prefix, which
pins down exactly where an online analysis must first raise.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.events.operations import conflicts
from repro.events.trace import Trace, Transaction


def serialization_graph(trace: Trace) -> dict[int, set[int]]:
    """The serialization (conflict) graph of ``trace``.

    Returns adjacency sets over transaction indices: ``B in graph[A]``
    iff ``A != B`` and some operation of ``A`` precedes and conflicts
    with some operation of ``B`` in the trace.

    Note that operations of the same thread always conflict, so
    program order between a thread's successive transactions appears
    here too — matching the paper's extended happens-before relation
    lifted to transactions.
    """
    transactions = trace.transactions()
    graph: dict[int, set[int]] = {tx.index: set() for tx in transactions}
    ops = trace.operations
    n = len(ops)
    for i in range(n):
        tx_i = trace.transaction_of(i).index
        op_i = ops[i]
        for j in range(i + 1, n):
            tx_j = trace.transaction_of(j).index
            if tx_j == tx_i:
                continue
            if conflicts(op_i, ops[j]):
                graph[tx_i].add(tx_j)
    return graph


def find_cycle(graph: dict[int, set[int]]) -> Optional[list[int]]:
    """A cycle in ``graph`` as a node list (first == last), or ``None``."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    parent: dict[int, int] = {}

    for start in graph:
        if colour[start] != WHITE:
            continue
        stack: list[tuple[int, Iterable[int]]] = [(start, iter(graph[start]))]
        colour[start] = GREY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if colour[succ] == GREY:
                    # Found a back edge node -> succ; unwind the cycle.
                    cycle = [node]
                    while cycle[-1] != succ:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, iter(graph[succ])))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def is_serializable(trace: Trace) -> bool:
    """Conflict-serializability by the serialization-graph test."""
    return find_cycle(serialization_graph(trace)) is None


def serial_witness(trace: Trace) -> Optional[list[Transaction]]:
    """A serial order of the trace's transactions, or ``None``.

    When the serialization graph is acyclic, any topological order of
    it is an equivalent serial schedule; this returns one (Kahn's
    algorithm, breaking ties by transaction index for determinism).
    """
    graph = serialization_graph(trace)
    indegree = {node: 0 for node in graph}
    for node, succs in graph.items():
        for succ in succs:
            indegree[succ] += 1
    ready = sorted(node for node, deg in indegree.items() if deg == 0)
    order: list[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        inserted = []
        for succ in sorted(graph[node]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                inserted.append(succ)
        if inserted:
            ready = sorted(ready + inserted)
    if len(order) != len(graph):
        return None
    transactions = trace.transactions()
    return [transactions[index] for index in order]


def serialize(trace: Trace) -> Optional[Trace]:
    """An equivalent serial trace, or ``None`` if non-serializable."""
    witness = serial_witness(trace)
    if witness is None:
        return None
    ops = trace.operations
    return Trace(ops[pos] for tx in witness for pos in tx.positions)


def earliest_violation(trace: Trace) -> Optional[int]:
    """The position of the operation that first makes ``trace``
    non-serializable, or ``None`` if the whole trace is serializable.

    The returned position is the least ``p`` such that the prefix
    ``trace[:p + 1]`` is not conflict-serializable.  A sound and
    complete online analysis must raise its first warning exactly while
    processing this operation.
    """
    if is_serializable(trace):
        return None
    low, high = 0, len(trace) - 1
    # The property "prefix of length p+1 is non-serializable" is
    # monotone in p, so binary search applies.
    while low < high:
        mid = (low + high) // 2
        if is_serializable(Trace(trace.operations[: mid + 1])):
            low = mid + 1
        else:
            high = mid
    return low
