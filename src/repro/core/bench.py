"""``repro bench backends``: graph vs vector-clock head-to-head.

Times the two sound-and-complete single-pass checkers over recorded
traces of every paper workload (the Table 1/2 lineup):

* **velodrome** — :class:`repro.core.optimized.VelodromeOptimized`,
  the transactional happens-before *graph* with node merging, GC, and
  incremental cycle detection.
* **aerodrome** — :class:`repro.core.aerodrome.AeroDrome`, the
  linear-time *vector-clock* analysis (per-thread / per-lock /
  per-variable clocks, violation exactly when a clock ordering
  witnesses a serialization cycle).

Each workload is recorded once (fixed seed and scale), then each
backend analyses the identical trace best-of-N on a fresh instance.
The two must agree on the verdict and on the first-warning position —
a disagreement aborts the bench, it does not get averaged away.

``--check-against BASELINE.json`` compares events/sec per backend per
workload against a committed baseline and exits non-zero on a
regression beyond ``--threshold`` (default 30%) — the CI
``bench-backends`` smoke gate.

Run as a script::

    python -m repro.core.bench [--quick] [--scale F] [--repeats N]
        [--output FILE] [--check-against FILE] [--threshold F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Optional, Sequence

#: Fixed recording seed: the bench measures analysis throughput, so
#: every run (and the committed baseline) must see identical traces.
_RECORD_SEED = 0


def _best_of(repeats: int, thunk: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


def _first_warning(backend) -> Optional[int]:
    positions = [w.position for w in backend.warnings]
    return min(positions) if positions else None


def measure_backends(
    scale: float = 1.0, repeats: int = 5
) -> dict:
    """Per-workload events/sec for each backend, plus the speedup.

    Records each workload's trace once, then times a fresh backend
    instance per repetition over the identical operation list.  Raises
    ``RuntimeError`` if the backends ever disagree on the verdict or
    the first-warning position — the bench doubles as an agreement
    check on real (non-fuzz) traces.
    """
    from repro.core.aerodrome import AeroDrome
    from repro.core.optimized import VelodromeOptimized
    from repro.runtime.tool import run_velodrome
    from repro.workloads import paper_workloads

    factories: dict[str, Callable[[], object]] = {
        "velodrome": lambda: VelodromeOptimized(
            first_warning_per_label=True
        ),
        "aerodrome": AeroDrome,
    }

    workloads = {}
    for workload in paper_workloads():
        trace = run_velodrome(
            workload.program(scale), seed=_RECORD_SEED, record_trace=True
        ).trace
        events = len(trace)
        entry: dict = {"events": events}
        outcomes = {}
        for name, factory in factories.items():
            def analyze():
                backend = factory()
                backend.process_trace(trace)
                return backend
            elapsed = _best_of(repeats, analyze)
            final = analyze()
            outcomes[name] = (
                final.error_detected, _first_warning(final)
            )
            entry[name] = {
                "best_seconds": round(elapsed, 6),
                "events_per_sec": round(events / elapsed, 1),
            }
        if outcomes["velodrome"] != outcomes["aerodrome"]:
            raise RuntimeError(
                f"backend disagreement on {workload.name!r}: "
                f"velodrome {outcomes['velodrome']} vs "
                f"aerodrome {outcomes['aerodrome']}"
            )
        entry["error_detected"] = outcomes["velodrome"][0]
        entry["speedup"] = round(
            entry["aerodrome"]["events_per_sec"]
            / entry["velodrome"]["events_per_sec"],
            3,
        )
        workloads[workload.name] = entry
    return workloads


def _totals(workloads: dict) -> dict:
    events = sum(entry["events"] for entry in workloads.values())
    totals = {"events": events}
    for name in ("velodrome", "aerodrome"):
        seconds = sum(
            entry[name]["best_seconds"] for entry in workloads.values()
        )
        totals[name] = {
            "best_seconds": round(seconds, 6),
            "events_per_sec": round(events / seconds, 1),
        }
    totals["speedup"] = round(
        totals["aerodrome"]["events_per_sec"]
        / totals["velodrome"]["events_per_sec"],
        3,
    )
    return totals


def run_bench(quick: bool = False, scale: Optional[float] = None,
              repeats: Optional[int] = None) -> dict:
    """The full measurement; returns the ``BENCH_backends.json`` dict."""
    if scale is None:
        scale = 0.5 if quick else 1.0
    if repeats is None:
        repeats = 2 if quick else 5
    workloads = measure_backends(scale=scale, repeats=repeats)
    return {
        "schema": 1,
        "quick": quick,
        "seed": _RECORD_SEED,
        "scale": scale,
        "repeats": repeats,
        "workloads": workloads,
        "total": _totals(workloads),
    }


def compare_to_baseline(
    current: dict, baseline: dict, threshold: float = 0.30
) -> list[str]:
    """Regressions beyond ``threshold``, as human-readable strings.

    Compares each backend's ``events_per_sec`` per workload present in
    both reports; workloads only one side has are skipped (the suite
    may gain benchmarks).  Faster-than-baseline is never a failure.
    """
    regressions = []
    old_workloads = baseline.get("workloads", {})
    for workload, entry in current.get("workloads", {}).items():
        old_entry = old_workloads.get(workload)
        if not old_entry:
            continue
        for backend in ("velodrome", "aerodrome"):
            new = entry.get(backend)
            old = old_entry.get(backend)
            if not new or not old:
                continue
            new_rate = new.get("events_per_sec")
            old_rate = old.get("events_per_sec")
            if not new_rate or not old_rate:
                continue
            floor = old_rate * (1.0 - threshold)
            if new_rate < floor:
                regressions.append(
                    f"{workload}.{backend}: {new_rate:,.0f} ev/s is "
                    f"{1 - new_rate / old_rate:.0%} below baseline "
                    f"{old_rate:,.0f} ev/s (allowed: {threshold:.0%})"
                )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="half scale, 2 repeats (the CI smoke shape)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default: 0.5 quick, 1.0 full)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N repetitions (default: 2 quick, "
                             "5 full)")
    parser.add_argument("--output", default="BENCH_backends.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-against", metavar="FILE", default=None,
                        help="committed baseline to gate against")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed events/sec regression vs the "
                             "baseline (default 0.30)")
    args = parser.parse_args(argv)

    report = run_bench(
        quick=args.quick, scale=args.scale, repeats=args.repeats
    )
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")

    print(f"{'workload':>10} {'events':>8} {'velodrome':>12} "
          f"{'aerodrome':>12} {'speedup':>8}")
    for name, entry in report["workloads"].items():
        print(f"{name:>10} {entry['events']:>8,} "
              f"{entry['velodrome']['events_per_sec']:>12,.0f} "
              f"{entry['aerodrome']['events_per_sec']:>12,.0f} "
              f"{entry['speedup']:>7.2f}x")
    total = report["total"]
    print(f"{'TOTAL':>10} {total['events']:>8,} "
          f"{total['velodrome']['events_per_sec']:>12,.0f} "
          f"{total['aerodrome']['events_per_sec']:>12,.0f} "
          f"{total['speedup']:>7.2f}x")
    print(f"wrote {args.output}")

    if args.check_against:
        with open(args.check_against, encoding="utf-8") as stream:
            baseline = json.load(stream)
        regressions = compare_to_baseline(
            report, baseline, threshold=args.threshold
        )
        if regressions:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            raise SystemExit(1)
        print(f"no regression vs {args.check_against} "
              f"(threshold {args.threshold:.0%})")


if __name__ == "__main__":
    main()
