"""The compact analysis-state representation (paper Section 5).

The Velodrome prototype stores every step as a single 64-bit integer —
16 bits of node slot, 48 bits of timestamp — with node slots recycled
on collection and stale codes reading as absent via a per-slot
timestamp watermark.  :class:`VelodromeCompact` is the optimized
analysis with its L/U/R/W state components stored exactly that way,
backed by :class:`repro.graph.stepcode.NodePool`.

Semantics are identical to :class:`VelodromeOptimized` (the property
suite checks verdict-for-verdict agreement); what changes is the memory
representation: four flat ``str/int -> int`` dictionaries instead of
dictionaries of step objects, and no per-step Python object retention —
the representation the paper credits for the prototype's memory
behaviour.

Block fast-forwarding (``apply_block_summary``) is inherited from the
optimized analysis unchanged: a certified fold allocates no nodes and
collects none, so the slot pool's attach/detach hooks never fire, and
``encode``/``decode`` are pure functions of the resident slot state —
storing only the block's *final* steps leaves the packed maps, the
pool, and the reader index exactly as the op-by-op replay would (the
flat dicts gain keys in the same first-touch order).  The one
observable difference is at the timestamp-capacity cliff: the replay
encodes intermediate steps the fold never materializes, so
:class:`~repro.graph.stepcode.SlotsExhausted` could fire earlier
op-by-op.  The supervised runtime treats that exception as a recovery
trigger at any position, so the distinction is timing, not verdicts.
"""

from __future__ import annotations

from typing import Optional

from repro.core.optimized import VelodromeOptimized
from repro.graph.node import Step, TxNode
from repro.graph.stepcode import NIL, NodePool


class VelodromeCompact(VelodromeOptimized):
    """Optimized Velodrome with packed 64-bit state components.

    Accepts the same options as :class:`VelodromeOptimized`, plus the
    pool's slot count and timestamp capacity (see
    :class:`~repro.graph.stepcode.NodePool`).  Slots are attached on
    node allocation and
    recycled on collection via the graph's hooks; dereferencing a code
    whose slot was recycled (or whose timestamp falls at or below the
    slot's watermark) yields the paper's bottom, exactly like the weak
    references of the object representation.
    """

    name = "VELODROME-COMPACT"

    def __init__(
        self,
        max_slots: int = 1 << 16,
        timestamp_capacity: Optional[int] = None,
        **options,
    ):
        super().__init__(**options)
        pool_options = {"max_slots": max_slots}
        if timestamp_capacity is not None:
            pool_options["timestamp_capacity"] = timestamp_capacity
        self.pool = NodePool(**pool_options)
        self.graph.on_alloc = self.pool.attach
        self.graph.on_collect = self.pool.detach
        # Packed state: plain int codes, NIL for bottom.
        self._last_code: dict[int, int] = {}
        self._unlocker_code: dict[str, int] = {}
        self._writer_code: dict[str, int] = {}
        self._reader_code: dict[tuple[str, int], int] = {}
        self._reader_index: dict[str, set[int]] = {}

    # ------------------------------------------------------- packed storage
    def _load_last(self, tid: int) -> Optional[Step]:
        return self.pool.decode(self._last_code.get(tid, NIL))

    def _store_last(self, tid: int, step: Optional[Step]) -> None:
        self._last_code[tid] = self.pool.encode(step)

    def _load_unlocker(self, lock: str) -> Optional[Step]:
        return self.pool.decode(self._unlocker_code.get(lock, NIL))

    def _store_unlocker(self, lock: str, step: Optional[Step]) -> None:
        self._unlocker_code[lock] = self.pool.encode(step)

    def _load_writer(self, var: str) -> Optional[Step]:
        return self.pool.decode(self._writer_code.get(var, NIL))

    def _store_writer(self, var: str, step: Optional[Step]) -> None:
        self._writer_code[var] = self.pool.encode(step)

    def _load_reader(self, var: str, tid: int) -> Optional[Step]:
        return self.pool.decode(self._reader_code.get((var, tid), NIL))

    def _store_reader(self, var: str, tid: int, step: Optional[Step]) -> None:
        self._reader_code[(var, tid)] = self.pool.encode(step)
        if step is not None:
            self._reader_index.setdefault(var, set()).add(tid)

    def _reader_tids(self, var: str) -> list[int]:
        return list(self._reader_index.get(var, ()))

    # ------------------------------------------------------- resource hygiene
    def state_entry_count(self) -> int:
        return (
            len(self._last_code)
            + len(self._unlocker_code)
            + len(self._writer_code)
            + len(self._reader_code)
        )

    def compact_state(self) -> dict[str, int]:
        """Drop packed codes that decode to the paper's bottom.

        A dead code (NIL, or naming a recycled/retired slot incarnation
        at or below its watermark) already reads as absent, so removal
        — equivalent to storing NIL — cannot change verdicts.  The
        reader index keeps only threads whose reader code is live; the
        index drives edge *iteration*, and dead readers contribute no
        edges.
        """
        dropped = {
            "last": self._purge_dead_codes(self._last_code),
            "unlocker": self._purge_dead_codes(self._unlocker_code),
            "writer": self._purge_dead_codes(self._writer_code),
            "reader": self._purge_dead_codes(self._reader_code),
        }
        for var in list(self._reader_index):
            index = self._reader_index[var]
            index.intersection_update(
                tid for tid in index if (var, tid) in self._reader_code
            )
            if not index:
                del self._reader_index[var]
        return dropped

    def _purge_dead_codes(self, table: dict) -> int:
        dead = [
            key for key, code in table.items()
            if self.pool.decode(code) is None
        ]
        for key in dead:
            del table[key]
        return len(dead)

    # --------------------------------------------------------------- extras
    @property
    def slots_in_use(self) -> int:
        """Live node slots (diagnostics; bounded by GC like max-alive)."""
        return self.pool.slots_in_use

    def state_codes(self) -> dict[str, int]:
        """Sizes of the packed state maps (memory diagnostics)."""
        return {
            "last": len(self._last_code),
            "unlocker": len(self._unlocker_code),
            "writer": len(self._writer_code),
            "reader": len(self._reader_code),
        }


def encode_step_for(backend: VelodromeCompact, node: TxNode, timestamp: int) -> int:
    """Pack an explicit (node, timestamp) pair with the backend's pool.

    Test helper mirroring the paper's description of step codes.
    """
    return backend.pool.encode(Step(node, timestamp))
