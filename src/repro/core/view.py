"""View-equivalence and view-serializability (reference, small traces).

The paper's related work distinguishes *conflict*-atomicity (what
Velodrome checks, and what this repository calls serializability
throughout) from *view*-atomicity (Wang and Stoller).  Two traces over
the same operations are view-equivalent when every read reads from the
same write (or the initial state) and each variable's final writer
agrees; a trace is view-serializable when some serial order of its
transactions is view-equivalent to it.

Every conflict-serializable trace is view-serializable; the converse
fails only in the presence of *blind writes* (a transaction writing a
variable it did not read).  Deciding view-serializability is
NP-complete, so this reference enumerates transaction permutations and
is intended for small traces in tests and experiments.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.events.operations import OpKind
from repro.events.trace import Trace

#: Guard on the permutation search (8! = 40320 orders).
MAX_TRANSACTIONS = 8


def reads_from(trace: Trace) -> dict[int, Optional[int]]:
    """For each read position, the position of the write it reads.

    ``None`` means the read observes the initial state.  Reads and
    writes are matched per variable in trace order.
    """
    last_write: dict[str, int] = {}
    result: dict[int, Optional[int]] = {}
    for position, op in enumerate(trace):
        if op.kind is OpKind.READ:
            result[position] = last_write.get(op.target)
        elif op.kind is OpKind.WRITE:
            last_write[op.target] = position
    return result


def final_writes(trace: Trace) -> dict[str, int]:
    """The position of each variable's final write."""
    result: dict[str, int] = {}
    for position, op in enumerate(trace):
        if op.kind is OpKind.WRITE:
            result[op.target] = position
    return result


def _view_of(positions: list[int], trace: Trace):
    """The (reads-from, final-writes) view of a reordering of ``trace``.

    ``positions`` lists original-trace positions in the new order; the
    view is expressed in original positions so views are comparable.
    """
    last_write: dict[str, Optional[int]] = {}
    reads: dict[int, Optional[int]] = {}
    finals: dict[str, int] = {}
    ops = trace.operations
    for position in positions:
        op = ops[position]
        if op.kind is OpKind.READ:
            reads[position] = last_write.get(op.target)
        elif op.kind is OpKind.WRITE:
            last_write[op.target] = position
            finals[op.target] = position
    return reads, finals


def view_serial_witness(trace: Trace) -> Optional[list[int]]:
    """A serial transaction order view-equivalent to ``trace``.

    Returns transaction indices in witness order, or ``None``.  Raises
    ``ValueError`` beyond :data:`MAX_TRANSACTIONS` transactions.
    """
    transactions = trace.transactions()
    if len(transactions) > MAX_TRANSACTIONS:
        raise ValueError(
            f"view-serializability reference limited to "
            f"{MAX_TRANSACTIONS} transactions, got {len(transactions)}"
        )
    target_view = _view_of(list(range(len(trace))), trace)
    for order in itertools.permutations(range(len(transactions))):
        serial_positions = [
            position
            for tx_index in order
            for position in transactions[tx_index].positions
        ]
        if _view_of(serial_positions, trace) == target_view:
            return list(order)
    return None


def is_view_serializable(trace: Trace) -> bool:
    """Decide view-serializability by permutation search (small traces)."""
    return view_serial_witness(trace) is not None
