"""``repro bench memo``: region memoization on/off head-to-head.

Times :class:`repro.core.optimized.VelodromeOptimized` through the
pipeline with and without a :class:`repro.core.memo.RegionMemo`
attached, on the two trace profiles that bound the feature:

* **high_repetition** — the ``request_loop`` workload (a dispatcher /
  worker request loop whose handler transaction repeats a handful of
  region shapes endlessly): the profile memoization is built for, where
  nearly every region is applied from cache.
* **low_repetition** — many concatenated differential-fuzz traces
  (distinct seeds, so region shapes almost never repeat): the
  worst-case profile, where the memo can only cost.

Both lanes run each configuration best-of-N on a fresh backend over
the identical operation list, and both **gate**: the memoized
high-repetition run must reach ``--min-speedup`` (default 2.0x) and
the memoized low-repetition run must stay within ``--max-overhead``
(default 10%) of the plain run.  The two configurations must also
agree on the verdict, the first-warning position, and the processed
event count — a disagreement aborts the bench (the full equivalence
gate is ``python -m repro.fuzz.memogate``).

``--check-against BASELINE.json`` additionally compares events/sec
against a committed baseline and exits non-zero on a regression beyond
``--threshold`` (default 30%) — the CI ``memo`` drift gate.

Run as a script::

    python -m repro.core.bench_memo [--quick] [--scale F] [--repeats N]
        [--min-speedup F] [--max-overhead F]
        [--output FILE] [--check-against FILE] [--threshold F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Optional, Sequence

#: Fixed recording seed: the bench measures analysis throughput, so
#: every run (and the committed baseline) must see identical traces.
_RECORD_SEED = 0

#: Fuzz seeds concatenated into the low-repetition lane.
_LOW_REP_SEEDS = 100
_LOW_REP_SEEDS_QUICK = 30


def _best_of_pair(
    repeats: int, thunks: Sequence[Callable[[], object]]
) -> list[float]:
    """Best wall time per thunk, repetitions interleaved, GC parked.

    The lanes differ by well under the cost of one badly-timed
    generational collection (the low-repetition gate is a 10% bound on
    a ~30ms measurement), so each repetition starts from a collected
    heap and runs with the collector disabled — and the configurations
    alternate within each repetition so slow machine drift (thermal,
    frequency scaling) lands on both sides instead of biasing
    whichever was timed last.
    """
    import gc

    best = [float("inf")] * len(thunks)
    for _ in range(repeats):
        for index, thunk in enumerate(thunks):
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                thunk()
                best[index] = min(
                    best[index], time.perf_counter() - started
                )
            finally:
                gc.enable()
    return best


def _first_warning(backend) -> Optional[int]:
    positions = [w.position for w in backend.warnings]
    return min(positions) if positions else None


def _high_repetition_trace(scale: float) -> list:
    from repro.runtime.tool import run_velodrome
    from repro.workloads import get

    program = get("request_loop").program(scale)
    return list(
        run_velodrome(program, seed=_RECORD_SEED, record_trace=True).trace
    )


def _low_repetition_trace(seeds: int) -> list:
    from repro.fuzz.engine import iteration_seeds, trace_for_seed

    ops: list = []
    for seed in iteration_seeds(_RECORD_SEED, seeds):
        ops.extend(trace_for_seed(seed))
    return ops


def _measure_lane(ops: list, repeats: int) -> dict:
    """Memo-off vs memo-on over ``ops``, with an agreement check."""
    from repro.core.memo import RegionMemo
    from repro.core.optimized import VelodromeOptimized
    from repro.pipeline import Pipeline, TraceSource

    events = len(ops)

    def run(memoize: bool):
        backend = VelodromeOptimized(first_warning_per_label=True)
        memo = RegionMemo() if memoize else None
        Pipeline([backend], memo=memo).run(TraceSource(ops))
        return backend, memo

    off_elapsed, on_elapsed = _best_of_pair(
        repeats, [lambda: run(False), lambda: run(True)]
    )
    off_backend, _ = run(False)
    on_backend, memo = run(True)

    off_outcome = (
        off_backend.error_detected,
        _first_warning(off_backend),
        off_backend.events_processed,
    )
    on_outcome = (
        on_backend.error_detected,
        _first_warning(on_backend),
        on_backend.events_processed,
    )
    if off_outcome != on_outcome:
        raise RuntimeError(
            f"memo disagreement: plain {off_outcome} vs "
            f"memoized {on_outcome} — run repro.fuzz.memogate"
        )

    return {
        "events": events,
        "error_detected": off_backend.error_detected,
        "off": {
            "best_seconds": round(off_elapsed, 6),
            "events_per_sec": round(events / off_elapsed, 1),
        },
        "on": {
            "best_seconds": round(on_elapsed, 6),
            "events_per_sec": round(events / on_elapsed, 1),
        },
        "speedup": round(off_elapsed / on_elapsed, 3),
        "overhead": round(on_elapsed / off_elapsed - 1.0, 4),
        "memo": memo.stats(),
    }


def run_bench(
    quick: bool = False,
    scale: Optional[float] = None,
    repeats: Optional[int] = None,
) -> dict:
    """The full measurement; returns the ``BENCH_memo.json`` dict."""
    if scale is None:
        # Same trace size in both modes: a smaller high-repetition
        # trace under-amortizes the fixed (non-region) work and reads
        # as a lower speedup; quick mode saves on repeats and on the
        # low-repetition seed count instead.
        scale = 20.0
    if repeats is None:
        # Even quick mode needs a few warm repetitions: the first
        # memoized pass over a fresh heap routinely times 20% slow.
        repeats = 5 if quick else 7
    seeds = _LOW_REP_SEEDS_QUICK if quick else _LOW_REP_SEEDS
    return {
        "schema": 1,
        "quick": quick,
        "seed": _RECORD_SEED,
        "scale": scale,
        "repeats": repeats,
        "low_rep_seeds": seeds,
        "lanes": {
            "high_repetition": _measure_lane(
                _high_repetition_trace(scale), repeats
            ),
            "low_repetition": _measure_lane(
                _low_repetition_trace(seeds), repeats
            ),
        },
    }


def check_gates(
    report: dict, min_speedup: float, max_overhead: float
) -> list[str]:
    """Gate violations, as human-readable strings (empty = pass)."""
    failures = []
    lanes = report.get("lanes", {})
    high = lanes.get("high_repetition", {})
    if high.get("speedup", 0.0) < min_speedup:
        failures.append(
            f"high_repetition: {high.get('speedup')}x speedup is below "
            f"the {min_speedup}x gate"
        )
    low = lanes.get("low_repetition", {})
    if low.get("overhead", 1.0) > max_overhead:
        failures.append(
            f"low_repetition: {low.get('overhead'):.1%} overhead exceeds "
            f"the {max_overhead:.0%} gate"
        )
    return failures


def compare_to_baseline(
    current: dict, baseline: dict, threshold: float = 0.30
) -> list[str]:
    """Regressions beyond ``threshold``, as human-readable strings.

    Compares each lane's ``events_per_sec`` (both configurations)
    against the baseline; lanes only one side has are skipped.
    Faster-than-baseline is never a failure.
    """
    regressions = []
    old_lanes = baseline.get("lanes", {})
    for lane, entry in current.get("lanes", {}).items():
        old_entry = old_lanes.get(lane)
        if not old_entry:
            continue
        for config in ("off", "on"):
            new = entry.get(config)
            old = old_entry.get(config)
            if not new or not old:
                continue
            new_rate = new.get("events_per_sec")
            old_rate = old.get("events_per_sec")
            if not new_rate or not old_rate:
                continue
            floor = old_rate * (1.0 - threshold)
            if new_rate < floor:
                regressions.append(
                    f"{lane}.{config}: {new_rate:,.0f} ev/s is "
                    f"{1 - new_rate / old_rate:.0%} below baseline "
                    f"{old_rate:,.0f} ev/s (allowed: {threshold:.0%})"
                )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller traces, 3 repeats (the CI shape)")
    parser.add_argument("--scale", type=float, default=None,
                        help="request_loop scale (default: 20)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N repetitions (default: 3 quick, "
                             "7 full)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required memoized speedup on the "
                             "high-repetition lane (default 2.0)")
    parser.add_argument("--max-overhead", type=float, default=0.10,
                        help="allowed memoized overhead on the "
                             "low-repetition lane (default 0.10)")
    parser.add_argument("--output", default="BENCH_memo.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-against", metavar="FILE", default=None,
                        help="committed baseline to gate against")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed events/sec regression vs the "
                             "baseline (default 0.30)")
    args = parser.parse_args(argv)

    report = run_bench(
        quick=args.quick, scale=args.scale, repeats=args.repeats
    )
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")

    for lane, entry in report["lanes"].items():
        memo = entry["memo"]
        print(f"{lane:>16}: {entry['events']:>7,} events  "
              f"off {entry['off']['events_per_sec']:>10,.0f} ev/s  "
              f"on {entry['on']['events_per_sec']:>10,.0f} ev/s  "
              f"({entry['speedup']:.2f}x, "
              f"{memo['hits']} hits / {memo['misses']} misses)")
    print(f"wrote {args.output}")

    failed = False
    gate_failures = check_gates(
        report, min_speedup=args.min_speedup, max_overhead=args.max_overhead
    )
    if gate_failures:
        print("MEMO GATE FAILED:", file=sys.stderr)
        for line in gate_failures:
            print(f"  {line}", file=sys.stderr)
        failed = True
    else:
        print(f"gates met: high_repetition "
              f"{report['lanes']['high_repetition']['speedup']}x >= "
              f"{args.min_speedup}x, low_repetition "
              f"{report['lanes']['low_repetition']['overhead']:.1%} <= "
              f"{args.max_overhead:.0%}")

    if args.check_against:
        with open(args.check_against, encoding="utf-8") as stream:
            baseline = json.load(stream)
        regressions = compare_to_baseline(
            report, baseline, threshold=args.threshold
        )
        if regressions:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            failed = True
        else:
            print(f"no regression vs {args.check_against} "
                  f"(threshold {args.threshold:.0%})")
    if failed:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
