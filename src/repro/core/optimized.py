"""The optimized Velodrome analysis (paper Section 4, Figure 4).

This is the production analysis: the Figure 2 semantics extended with

* *steps* ``(node, timestamp)`` in every state component, so each
  happens-before edge records the operations at its endpoints;
* *nested atomic blocks*: ``C(t)`` is a stack of ``(label, step)``
  entries, one per open block, enabling per-block blame;
* *garbage collection* of finished nodes with no incoming edges
  (Section 4.1), via the reference counting in :class:`HBGraph`;
* *merging* of non-transactional operations (Section 4.2), avoiding a
  node allocation per operation outside atomic blocks;
* *blame assignment* (Section 4.3): when an edge would close a cycle,
  the increasing-cycle test decides whether the current transaction is
  provably not self-serializable, and if so every open atomic block
  containing both the root and target operations is refuted.

Verdicts (error iff the observed trace is not conflict-serializable)
coincide with :class:`repro.core.basic.VelodromeBasic`; the property
tests check this equivalence on random traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.merge import merge
from repro.core.reports import Warning, atomicity_warning
from repro.events.operations import Operation, OpKind
from repro.graph.hbgraph import Cycle, HBGraph
from repro.graph.node import Step, deref


@dataclass(slots=True)
class _Block:
    """One open atomic block on a thread's ``C(t)`` stack."""

    label: Optional[str]
    entry: Step  # step of the block's begin operation


def _purge_dead_steps(table: dict) -> int:
    """Remove step entries whose node was collected; returns the count."""
    dead = [key for key, step in table.items() if step.node.collected]
    for key in dead:
        del table[key]
    return len(dead)


class VelodromeOptimized(AnalysisBackend):
    """Sound and complete atomicity checker with all Figure 4 machinery.

    Args:
        merge_unary: apply the Section 4.2 merge rules to operations
            outside atomic blocks.  When False, the naive [INS OUTSIDE]
            rule is used instead (one fresh node per operation) — the
            "Without Merge" configuration of Table 1.
        collect_garbage: apply the Section 4.1 GC rule (ablation A2).
        cycle_strategy: ``"ancestors"`` or ``"dfs"`` (ablation A1).
        first_warning_per_label: record at most one warning per atomic
            block label (plus at most one unlocalized warning), counting
            the rest in :attr:`suppressed_warnings`.  Long benchmark
            runs use this to bound memory.
    """

    name = "VELODROME"

    def __init__(
        self,
        merge_unary: bool = True,
        collect_garbage: bool = True,
        cycle_strategy: str = "ancestors",
        first_warning_per_label: bool = False,
    ):
        super().__init__()
        self.graph = HBGraph(
            cycle_strategy=cycle_strategy, collect_garbage=collect_garbage
        )
        self.merge_unary = merge_unary
        self.first_warning_per_label = first_warning_per_label
        self.suppressed_warnings = 0
        self._stacks: dict[int, list[_Block]] = {}  # C
        self._last: dict[int, Step] = {}  # L (weak)
        self._unlocker: dict[str, Step] = {}  # U (weak)
        self._readers: dict[str, dict[int, Step]] = {}  # R (weak)
        self._writer: dict[str, Step] = {}  # W (weak)
        self._warned_labels: set[Optional[str]] = set()
        # Dispatch tables, built once: process costs one dict lookup
        # per event instead of walking an elif chain, and the
        # merged-vs-naive choice for non-transactional operations is
        # made here rather than per event.  Each per-kind method folds
        # the inside-vs-outside branch into itself (no extra call
        # frame); the naive configuration routes outside operations to
        # the [INS OUTSIDE] wrapper instead.
        self._merged_handlers = {
            OpKind.ACQUIRE: self._acquire,
            OpKind.RELEASE: self._release,
            OpKind.READ: self._read,
            OpKind.WRITE: self._write,
        }
        self._handlers = {
            OpKind.BEGIN: self._enter,
            OpKind.END: self._exit,
        }
        for kind, handler in self._merged_handlers.items():
            self._handlers[kind] = handler if merge_unary else self._naive

    # -------------------------------------------------------- state storage
    # The L/U/R/W components are weak maps of steps.  All access goes
    # through these methods so that alternative representations — the
    # paper's packed 64-bit encoding, in repro.core.compact — can
    # override storage without touching the analysis rules.

    def _load_last(self, tid: int) -> Optional[Step]:
        return deref(self._last.get(tid))

    def _store_last(self, tid: int, step: Optional[Step]) -> None:
        if step is None:
            self._last.pop(tid, None)
        else:
            self._last[tid] = step

    def _load_unlocker(self, lock: str) -> Optional[Step]:
        return deref(self._unlocker.get(lock))

    def _store_unlocker(self, lock: str, step: Optional[Step]) -> None:
        if step is None:
            self._unlocker.pop(lock, None)
        else:
            self._unlocker[lock] = step

    def _load_writer(self, var: str) -> Optional[Step]:
        return deref(self._writer.get(var))

    def _store_writer(self, var: str, step: Optional[Step]) -> None:
        if step is None:
            self._writer.pop(var, None)
        else:
            self._writer[var] = step

    def _load_reader(self, var: str, tid: int) -> Optional[Step]:
        return deref(self._readers.get(var, {}).get(tid))

    def _store_reader(self, var: str, tid: int, step: Optional[Step]) -> None:
        readers = self._readers.setdefault(var, {})
        if step is None:
            readers.pop(tid, None)
        else:
            readers[tid] = step

    def _reader_tids(self, var: str) -> list[int]:
        return list(self._readers.get(var, ()))

    # ------------------------------------------------------- resource hygiene
    def state_entry_count(self) -> int:
        return (
            len(self._last)
            + len(self._unlocker)
            + len(self._writer)
            + sum(len(readers) for readers in self._readers.values())
        )

    def compact_state(self) -> dict[str, int]:
        """Purge weak step references to collected transactions.

        No-op on verdicts: a collected node's step already dereferences
        to absent through every ``_load_*`` accessor.
        """
        dropped = {
            "last": _purge_dead_steps(self._last),
            "unlocker": _purge_dead_steps(self._unlocker),
            "writer": _purge_dead_steps(self._writer),
            "reader": 0,
        }
        for var in list(self._readers):
            dropped["reader"] += _purge_dead_steps(self._readers[var])
            if not self._readers[var]:
                del self._readers[var]
        return dropped

    # ------------------------------------------------------------ state views
    def in_transaction(self, tid: int) -> bool:
        """True iff thread ``tid`` is inside an atomic block."""
        return bool(self._stacks.get(tid))

    def block_depth(self, tid: int) -> int:
        """Current atomic-block nesting depth of thread ``tid``."""
        return len(self._stacks.get(tid, ()))

    def last(self, tid: int) -> Optional[Step]:
        """L(t), weak-dereferenced."""
        return self._load_last(tid)

    def unlocker(self, lock: str) -> Optional[Step]:
        """U(m), weak-dereferenced."""
        return self._load_unlocker(lock)

    def writer(self, var: str) -> Optional[Step]:
        """W(x), weak-dereferenced."""
        return self._load_writer(var)

    def reader(self, var: str, tid: int) -> Optional[Step]:
        """R(x, t), weak-dereferenced."""
        return self._load_reader(var, tid)

    # ------------------------------------------------------------- timestamps
    def _advance(self, tid: int) -> Step:
        """The paper's ``s = L(t)+1``: the thread's next step.

        Inside a transaction ``L(t)`` always resolves (the current node
        cannot be collected while current).
        """
        last = self._load_last(tid)
        assert last is not None, "advance with no live last step"
        step = last.next()
        self._set_last(tid, step)
        return step

    def _set_last(self, tid: int, step: Optional[Step]) -> None:
        if step is not None and step.timestamp > step.node.last_timestamp:
            step.node.last_timestamp = step.timestamp
        self._store_last(tid, step)

    # ---------------------------------------------------------------- process
    def process(self, op: Operation) -> None:
        # Overrides the base class to fold the process -> _process call
        # into a single frame: one dict lookup, one handler call.
        self._handlers[op.kind](op, self.events_processed)
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        self._handlers[op.kind](op, position)

    # ----------------------------------------------------------- begin / end
    def _enter(self, op: Operation, position: int = 0) -> None:
        tid = op.tid
        stack = self._stacks.setdefault(tid, [])
        if not stack:
            # [INS2 ENTER]: fresh node; program-order edge from L(t).
            node = self.graph.new_node(tid, label=op.label)
            step = Step(node, 0)
            predecessor = self.last(tid)
            if predecessor is not None:
                cycle = self.graph.add_edge(
                    predecessor, step, reason=f"program-order(t{tid})"
                )
                assert cycle is None, "fresh node cannot close a cycle"
            stack.append(_Block(op.label, step))
            self._set_last(tid, step)
        else:
            # [INS2 RE-ENTER]: the nested block shares the node; the
            # program-order edge (L(t), s) is a self-edge and vanishes.
            step = self._advance(tid)
            stack.append(_Block(op.label, step))

    def _exit(self, op: Operation, position: int = 0) -> None:
        tid = op.tid
        stack = self._stacks.get(tid)
        if not stack:
            raise ValueError(f"end without begin for thread {tid}")
        # [INS2 EXIT]: pop the innermost block; the end operation itself
        # takes a timestamp.
        stack.pop()
        step = self._advance(tid)
        if not stack:
            self.graph.finish(step.node)

    # ------------------------------------------------------ per-kind rules
    # Each method folds the [INS2 INSIDE ...] and [INS2 OUTSIDE ...]
    # variants of one operation kind into a single frame, branching on
    # the thread's transactional context.  ``self._stacks`` is read
    # through the attribute on every call: snapshot restore rebinds the
    # dict wholesale.

    def _acquire(self, op: Operation, position: int) -> None:
        tid = op.tid
        if self._stacks.get(tid):
            # [INS2 INSIDE ACQUIRE].
            step = self._advance(tid)
            self._edge(self.unlocker(op.target), step, op, position)
        else:
            # [INS2 OUTSIDE ACQUIRE].
            step = merge(
                self.graph, [self.last(tid), self.unlocker(op.target)], tid
            )
            self._set_last(tid, step)

    def _release(self, op: Operation, position: int) -> None:
        tid = op.tid
        if self._stacks.get(tid):
            # [INS2 INSIDE RELEASE].
            step = self._advance(tid)
            self._store_unlocker(op.target, step)
        else:
            # [INS2 OUTSIDE RELEASE]: fold the release into the
            # predecessor node; with no predecessor the release's unary
            # transaction can never join a cycle and needs no node.
            last = self.last(tid)
            if last is None:
                self._set_last(tid, None)
                self._store_unlocker(op.target, None)
            else:
                step = last.next()
                self._set_last(tid, step)
                self._store_unlocker(op.target, step)

    def _read(self, op: Operation, position: int) -> None:
        tid = op.tid
        if self._stacks.get(tid):
            # [INS2 INSIDE READ].
            step = self._advance(tid)
            self._store_reader(op.target, tid, step)
            self._edge(self.writer(op.target), step, op, position)
        else:
            # [INS2 OUTSIDE READ].
            step = merge(
                self.graph, [self.last(tid), self.writer(op.target)], tid
            )
            self._set_last(tid, step)
            self._store_reader(op.target, tid, step)

    def _write(self, op: Operation, position: int) -> None:
        tid = op.tid
        if self._stacks.get(tid):
            # [INS2 INSIDE WRITE].
            step = self._advance(tid)
            for reader_tid in self._reader_tids(op.target):
                self._edge(
                    self.reader(op.target, reader_tid), step, op, position
                )
            self._edge(self.writer(op.target), step, op, position)
            self._store_writer(op.target, step)
        else:
            # [INS2 OUTSIDE WRITE].
            sources: list[Optional[Step]] = [
                self.reader(op.target, reader_tid)
                for reader_tid in self._reader_tids(op.target)
            ]
            sources.append(self.writer(op.target))
            sources.append(self.last(tid))
            step = merge(self.graph, sources, tid)
            self._set_last(tid, step)
            self._store_writer(op.target, step)

    # ------------------------------------------------------- block folding
    def apply_block_summary(self, summary) -> bool:
        """Fast-forward one packed block without decoding it.

        A foldable summary describes a single-tid block with no
        ``begin``/``end`` markers, so every operation runs through the
        merged outside-transaction rules above.  If the block's whole
        footprint is *inert* — every live reader/writer/unlocker step
        it would merge with already sits on this thread's last node
        ``N`` — then every one of those merges returns an existing
        step on ``N``: no node is allocated, no edge is added, no
        cycle check runs, and no warning can be raised.  The final
        state is then known in closed form from the summary's
        timestamp offsets (``L(t).timestamp + k``), and this method
        writes it directly: reader/writer/unlocker entries in
        first-touch order (weak-map insertion order is observable
        state), ``L(t)``, the node's high-water timestamp, and the
        merge counter — bit-identical to the op-by-op replay, which
        the fast-forward fuzz gate (``repro.fuzz.ffgate``) checks via
        state snapshots.

        Any condition this method cannot certify cheaply makes it
        return False, and the caller replays the decoded block; only
        time is lost, never precision.
        """
        if not summary.foldable or not self.merge_unary:
            return False
        tid = summary.tids[0]
        if self._stacks.get(tid):
            return False
        last = self._load_last(tid)
        if last is None:
            return self._fold_vacuous(summary, tid)
        node = last.node
        if node.current:
            return False
        ts0 = last.timestamp

        def inert(step: Optional[Step]) -> bool:
            # A merge source that is dead (absent / collected) or on N
            # cannot pull the fold off the node-N fast path.
            return step is None or step.node is node

        def is_last(step: Optional[Step]) -> bool:
            return step is None or (
                step.node is node and step.timestamp == ts0
            )

        for fp in summary.targets:
            if fp.written:
                for reader_tid in self._reader_tids(fp.name):
                    if reader_tid != tid and self._load_reader(
                            fp.name, reader_tid) is not None:
                        return False
                writer = self._load_writer(fp.name)
                if fp.first_access_write:
                    # The first write merges the pre-block R(x,t) and
                    # W(x) before any in-block step shadows them; they
                    # must be dead, or (when the thread's step has not
                    # advanced yet, write_pre_k == 0) exactly L(t).
                    own = self._load_reader(fp.name, tid)
                    if fp.write_pre_k:
                        if own is not None or writer is not None:
                            return False
                    elif not (is_last(own) and is_last(writer)):
                        return False
                elif not inert(writer):
                    return False
            elif fp.read:
                if not inert(self._load_writer(fp.name)):
                    return False
            if fp.acquired:
                if not inert(self._load_unlocker(fp.name)):
                    return False
            # Released-but-never-acquired locks need no check: a
            # merged release never consults U(m), only overwrites it.

        # Certified: write the replay's final state directly.
        def step_at(k: int) -> Step:
            return last if k == 0 else Step(node, ts0 + k)

        targets = summary.targets
        for fp in sorted((f for f in targets if f.read),
                         key=lambda f: f.first_read):
            self._store_reader(fp.name, tid, step_at(fp.read_k))
        for fp in sorted((f for f in targets if f.written),
                         key=lambda f: f.first_write):
            self._store_writer(fp.name, step_at(fp.write_k))
        for fp in sorted((f for f in targets if f.released),
                         key=lambda f: f.first_release):
            self._store_unlocker(fp.name, step_at(fp.release_k))
        if ts0 + summary.max_k > node.last_timestamp:
            node.last_timestamp = ts0 + summary.max_k
        self._store_last(tid, step_at(summary.last_k))
        # One merge per read, write, and acquire — releases advance
        # the step without merging.
        self.graph.stats.merges += (
            summary.reads + summary.writes + summary.acquires
        )
        self.events_processed += summary.op_count
        return True

    def _fold_vacuous(self, summary, tid: int) -> bool:
        """Fold a block whose thread has no live last step.

        With ``L(t)`` absent (never set, or its node collected), the
        merged outside rules degenerate: a merge whose sources are all
        absent returns absent, so each operation stores an absent step
        — and the weak maps record an absent store by *removing* the
        entry.  Certifying this regime only requires the block's
        pre-state footprint to be entirely dead; the replay then never
        touches the graph, never merges, and can never warn, so its
        net effect is exactly the removals below.  This is the common
        regime on thread-local stretches, where garbage collection
        reclaims each unary node almost immediately.
        """
        for fp in summary.targets:
            if fp.written:
                # A write merges every reader of x, including this
                # thread's own pre-block one.
                for reader_tid in self._reader_tids(fp.name):
                    if self._load_reader(fp.name, reader_tid) is not None:
                        return False
            if (fp.read or fp.written) and (
                self._load_writer(fp.name) is not None
            ):
                return False
            if fp.acquired and self._load_unlocker(fp.name) is not None:
                return False
            # Released-but-never-acquired locks need no check.

        # Absent stores, through the same helpers the replay would
        # use (subclasses override them), in first-touch order: a
        # read's store still creates the variable's reader table even
        # when it removes nothing.
        targets = summary.targets
        for fp in sorted((f for f in targets if f.read),
                         key=lambda f: f.first_read):
            self._store_reader(fp.name, tid, None)
        for fp in sorted((f for f in targets if f.written),
                         key=lambda f: f.first_write):
            self._store_writer(fp.name, None)
        for fp in sorted((f for f in targets if f.released),
                         key=lambda f: f.first_release):
            self._store_unlocker(fp.name, None)
        self._store_last(tid, None)
        # Merges that return absent are not counted by stats.merges.
        self.events_processed += summary.op_count
        return True

    # ---------------------------------------------------- region memoization
    def apply_region_summary(self, summary, tid: int) -> bool:
        """Apply one memoized transaction-bounded region without replay.

        Inside a transaction every conflict edge goes through
        :meth:`_edge`, which is a no-op whenever its source step is
        dead (absent / collected) or already on the transaction's own
        node.  If every *pre-region* step the region would consult is
        dead, the replay therefore adds exactly one edge (the
        program-order edge of [INS2 ENTER]), performs no cycle check
        beyond it, and cannot warn; its final state is known in closed
        form from the summary's offsets (the operation at region
        offset ``k`` runs at timestamp ``k`` on the fresh node).  The
        preconditions, per footprint entry:

        * the thread is not inside an atomic block (the region's
          ``begin`` must be an outermost [INS2 ENTER]);
        * ``W(x)`` is dead for every accessed variable — the first
          access, read or write, consults it (later accesses only see
          the region's own steps);
        * for written variables, every pre-region reader entry is dead,
          except this thread's own when the region reads the variable
          before writing it (the in-region read shadows the entry
          before the write consults it);
        * ``U(m)`` is dead for locks whose first acquire precedes any
          release (an acquire after an in-region release only sees the
          region's own step; a release never consults ``U(m)``).

        When certified, the node allocation, program-order edge, and
        stores below replicate the replay *literally* — same
        ``add_edge`` call, same store helpers in the same weak-map
        insertion order, same ``finish`` (and therefore the same GC
        cascade) — so graph statistics and packed-state layouts match
        the op-by-op run bit for bit.
        """
        if self._stacks.get(tid):
            return False
        for use in summary.vars:
            if self._load_writer(use.name) is not None:
                return False
            if use.written:
                shadowed = use.read_before_write
                for reader_tid in self._reader_tids(use.name):
                    if shadowed and reader_tid == tid:
                        continue
                    if self._load_reader(use.name, reader_tid) is not None:
                        return False
        for use in summary.locks:
            if use.acquired_before_release and (
                self._load_unlocker(use.name) is not None
            ):
                return False

        # Certified: replay [INS2 ENTER] literally, then the final state.
        node = self.graph.new_node(tid, label=summary.label)
        step = Step(node, 0)
        predecessor = self.last(tid)
        if predecessor is not None:
            cycle = self.graph.add_edge(
                predecessor, step, reason=f"program-order(t{tid})"
            )
            assert cycle is None, "fresh node cannot close a cycle"
        self._stacks.setdefault(tid, [])
        for kind, name, offset in summary.stores:
            final = Step(node, offset)
            if kind == "r":
                self._store_reader(name, tid, final)
            elif kind == "w":
                self._store_writer(name, final)
            else:
                self._store_unlocker(name, final)
        self._set_last(tid, Step(node, summary.op_count - 1))
        self.graph.finish(node)
        self.events_processed += summary.op_count
        return True

    def _naive(self, op: Operation, position: int) -> None:
        """[INS OUTSIDE]: wrap in a fresh unary transaction, no merging.

        Installed for ACQUIRE/RELEASE/READ/WRITE when ``merge_unary``
        is off.  Inside a transaction the per-kind rule applies
        unchanged; outside, the operation runs in its own unary
        transaction, reusing the per-kind method — which routes to its
        inside branch because the unary block is on the stack.
        """
        tid = op.tid
        if self._stacks.get(tid):
            self._merged_handlers[op.kind](op, position)
            return
        node = self.graph.new_node(tid, label=None)
        step = Step(node, 0)
        predecessor = self.last(tid)
        if predecessor is not None:
            cycle = self.graph.add_edge(
                predecessor, step, reason=f"program-order(t{tid})"
            )
            assert cycle is None
        self._stacks.setdefault(tid, []).append(_Block(None, step))
        self._set_last(tid, step)
        self._merged_handlers[op.kind](op, position)
        self._stacks[tid].pop()
        self._advance(tid)
        self.graph.finish(step.node)

    # ------------------------------------------------------------------ edges
    def _edge(
        self, source: Optional[Step], target: Step, op: Operation, position: int
    ) -> None:
        if source is None or source.node is target.node:
            return
        cycle = self.graph.add_edge(source, target, reason=str(op))
        if cycle is not None:
            self._report_cycle(cycle, op, position)

    # ------------------------------------------------------------------ blame
    def _report_cycle(self, cycle: Cycle, op: Operation, position: int) -> None:
        tid = op.tid
        stack = self._stacks.get(tid, [])
        refuted = self._refuted_blocks(cycle, stack)
        if refuted:
            for block in refuted:
                self._record(
                    atomicity_warning(
                        self.name,
                        block.label,
                        tid,
                        position,
                        f"atomic block {block.label!r} is not serializable: "
                        f"{cycle} closed by {op}",
                        cycle=cycle,
                        blamed=True,
                    )
                )
        else:
            # Sound (the trace is non-serializable) but blame could not
            # be certified to a particular transaction.
            label = stack[0].label if stack else None
            self._record(
                atomicity_warning(
                    self.name,
                    None,
                    tid,
                    position,
                    f"non-serializable trace (blame not localized, "
                    f"observed in {label!r}): {cycle} closed by {op}",
                    cycle=cycle,
                    blamed=False,
                )
            )

    def _refuted_blocks(self, cycle: Cycle, stack: list[_Block]) -> list[_Block]:
        """The open blocks refuted by an increasing cycle (Section 4.3).

        When the cycle is increasing, the blamed transaction contains a
        root operation ``d'`` (timestamp ``cycle.root_timestamp``) and
        the target operation ``d`` (the current one); every open block
        that was entered at or before ``d'`` contains both, so it is not
        serializable.
        """
        if not cycle.is_increasing():
            return []
        node = cycle.blamed_candidate
        root = cycle.root_timestamp
        return [
            block
            for block in stack
            if block.entry.node is node and block.entry.timestamp <= root
        ]

    def _record(self, warning: Warning) -> None:
        if self.first_warning_per_label:
            if warning.label in self._warned_labels:
                self.suppressed_warnings += 1
                return
            self._warned_labels.add(warning.label)
        self.report(warning)
