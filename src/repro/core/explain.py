"""Human-readable explanations of atomicity warnings.

The paper emphasizes that understandable error reports were a key
design goal ("These graphs are extremely useful for understanding error
messages", Section 5).  Given a warning and the trace it came from,
this module reconstructs the full story: the witnessing cycle as a list
of transactions and inducing operations, the trace rendered as a
thread-column diagram with the cycle's endpoints marked, the blame
verdict, and — for blamed warnings — the root/target operations inside
the refuted block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.reports import Warning, WarningKind, cycle_to_dot
from repro.events.render import render_columns
from repro.events.trace import Trace, Transaction
from repro.graph.hbgraph import Cycle


@dataclass(frozen=True)
class Explanation:
    """Structured explanation of one atomicity warning."""

    warning: Warning
    transaction: Optional[Transaction]
    cycle_story: list[str]
    diagram: str
    dot: Optional[str]

    def render(self) -> str:
        lines = [str(self.warning), ""]
        if self.warning.blamed and self.transaction is not None:
            lines.append(
                f"Blamed transaction: {self.transaction} — certified not "
                f"self-serializable (increasing cycle)."
            )
        elif self.warning.kind is WarningKind.ATOMICITY:
            lines.append(
                "The trace is not serializable, but no single open block "
                "could be certified as the culprit (the cycle is not "
                "increasing)."
            )
        if self.cycle_story:
            lines.append("")
            lines.append("Happens-before cycle:")
            lines.extend(f"  {step}" for step in self.cycle_story)
        lines.append("")
        lines.append("Trace (cycle endpoints marked with *):")
        lines.append(self.diagram)
        return "\n".join(lines)


def _cycle_story(cycle: Cycle) -> list[str]:
    story = []
    for source, target, reason in cycle.edge_descriptions():
        story.append(f"{source} --[{reason}]--> {target}")
    return story


def _marked_positions(trace: Trace, warning: Warning) -> set[int]:
    """Positions worth highlighting: the closing operation, and — when
    the warning is blamed — the root operation of the refuted block."""
    marks: set[int] = set()
    if warning.position < len(trace):
        marks.add(warning.position)
    cycle = warning.cycle
    if cycle is not None and warning.blamed and warning.position < len(trace):
        # The root operation is the blamed transaction's operation at
        # the cycle's root timestamp: timestamps count the transaction's
        # operations from its begin.
        transaction = trace.transaction_of(warning.position)
        root_index = cycle.root_timestamp
        if 0 <= root_index < len(transaction.positions):
            marks.add(transaction.positions[root_index])
    return marks


def explain(trace: Trace, warning: Warning) -> Explanation:
    """Build the full explanation of ``warning`` against ``trace``."""
    transaction = (
        trace.transaction_of(warning.position)
        if warning.position < len(trace)
        else None
    )
    cycle = warning.cycle
    return Explanation(
        warning=warning,
        transaction=transaction,
        cycle_story=_cycle_story(cycle) if cycle is not None else [],
        diagram=render_columns(trace, mark=_marked_positions(trace, warning)),
        dot=(
            cycle_to_dot(
                cycle,
                title=f"Warning: {warning.label or '<unlabelled>'}",
                blamed=warning.blamed,
            )
            if cycle is not None
            else None
        ),
    )


def explain_all(trace: Trace, warnings: list[Warning]) -> str:
    """Render explanations for every atomicity warning, separated."""
    sections = [
        explain(trace, warning).render()
        for warning in warnings
        if warning.kind is WarningKind.ATOMICITY
    ]
    return ("\n" + "=" * 60 + "\n").join(sections)
