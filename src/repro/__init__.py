"""Velodrome: a sound and complete dynamic atomicity checker.

Reproduction of Flanagan, Freund, and Yi (PLDI 2008).  The package
checks observed traces of multithreaded programs for
conflict-serializability of their atomic blocks, reporting an error iff
the trace is not serializable, with precise per-block blame.

Quickstart::

    from repro import Trace, check_atomicity

    trace = Trace.parse(
        "1:begin(add) 1:rd(x) 2:wr(x) 1:wr(x) 1:end"
    )
    for warning in check_atomicity(trace):
        print(warning)

Layers:

* :mod:`repro.events` — operations, traces, transactions, semantics.
* :mod:`repro.graph` — the transactional happens-before graph.
* :mod:`repro.core` — the Velodrome analyses (basic and optimized).
* :mod:`repro.baselines` — Empty, Eraser, Atomizer, vector clocks.
* :mod:`repro.runtime` — deterministic concurrent-program interpreter.
* :mod:`repro.workloads` — the 15 paper benchmarks as synthetic models.
* :mod:`repro.harness` — Table 1 / Table 2 / injection experiments.
"""

from repro.core import (
    VelodromeBasic,
    VelodromeOptimized,
    Warning,
    WarningKind,
    check_atomicity,
    is_serializable,
    velodrome_verdict,
)
from repro.events import (
    Operation,
    OpKind,
    Trace,
    Transaction,
    acquire,
    begin,
    end,
    read,
    release,
    write,
)

__version__ = "1.0.0"

__all__ = [
    "Operation",
    "OpKind",
    "Trace",
    "Transaction",
    "VelodromeBasic",
    "VelodromeOptimized",
    "Warning",
    "WarningKind",
    "acquire",
    "begin",
    "check_atomicity",
    "end",
    "is_serializable",
    "read",
    "release",
    "velodrome_verdict",
    "write",
    "__version__",
]
