"""Configuration of one ``repro serve`` daemon."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.resilience.governor import Budgets
from repro.serve.retry import RetryPolicy

PathLike = Union[str, Path]

#: What to do with a stream whose backend selection has no snapshot
#: codec (e.g. ``aerodrome``): ``"replay"`` runs it without checkpoints
#: — a daemon restart deterministically replays it from the origin, so
#: crash equivalence still holds, just without zero-loss resume;
#: ``"fail"`` rejects the stream up front.  There is no third option:
#: silently dropping already-processed events would be lossy.
NO_SNAPSHOT_POLICIES = ("replay", "fail")


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`~repro.serve.daemon.ServeDaemon` needs.

    Attributes:
        spool_dir: watched directory; every stable file that sniffs as
            a trace becomes one checked stream.
        state_dir: where registry records, per-stream checkpoints, and
            quarantined files live (default: ``<spool>/.serve``).
            Dot-prefixed, so the spool scanner never mistakes daemon
            state for input.
        backends: CLI backend names every stream is checked under.
        jobs: worker processes streams are sharded across per round
            (``<= 1`` processes them serially in the daemon process).
        checkpoint_every: events between periodic checkpoints within
            each stream (block-granular streams checkpoint on interval
            crossings).
        budgets: the **global** resource budget; each round it is
            sliced evenly across the streams being worked on
            (:meth:`~repro.resilience.governor.Budgets.slice`).
        on_pressure: governor ladder ceiling, as in ``repro check``.
        no_snapshot: policy for backends without snapshot codecs
            (:data:`NO_SNAPSHOT_POLICIES`).
        retry: backoff-and-park policy for failed streams.
        poll_interval: seconds between spool scans when idle.
        settle_seconds: a file younger than this (by mtime) that the
            scanner has not yet seen twice with an unchanged size is
            presumed still being written and re-checked next scan.
        http_port: serve live metrics over HTTP on this port (``0``
            binds an ephemeral port; ``None`` disables the server).
        socket_path: accept trace uploads on this unix socket (one
            connection = one complete trace, spooled atomically);
            ``None`` disables the listener.
        max_retained: per-stream diagnostic retention cap (quarantine
            faults, degradation events).
        memoize: enable region memoization inside every stream's
            supervised checker (``--memoize``): repeated transaction
            shapes apply cached summaries instead of replaying, with
            per-stream memo counters folded into ``/metrics``.
        memo_max: per-stream memo table capacity (region shapes);
            least-recently-used shapes evict beyond it.
    """

    spool_dir: Path
    state_dir: Optional[Path] = None
    backends: tuple[str, ...] = ("velodrome",)
    jobs: int = 1
    checkpoint_every: int = 1024
    budgets: Budgets = field(default_factory=Budgets)
    on_pressure: str = "degrade"
    no_snapshot: str = "replay"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    poll_interval: float = 0.25
    settle_seconds: float = 1.0
    http_port: Optional[int] = None
    socket_path: Optional[Path] = None
    max_retained: int = 1024
    memoize: bool = False
    memo_max: int = 1024
    #: Optional ``digest -> family`` map written by ``repro lab run
    #: --digests``; spooled streams whose content digest matches a
    #: lab-recorded trace are tagged with their ``workload_family`` in
    #: ``/streams`` and counted per family in ``/metrics``.
    lab_digests: Optional[Path] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "spool_dir", Path(self.spool_dir))
        if self.lab_digests is not None:
            object.__setattr__(
                self, "lab_digests", Path(self.lab_digests)
            )
        state = (
            Path(self.state_dir) if self.state_dir is not None
            else self.spool_dir / ".serve"
        )
        object.__setattr__(self, "state_dir", state)
        if self.no_snapshot not in NO_SNAPSHOT_POLICIES:
            raise ValueError(
                f"unknown no_snapshot policy {self.no_snapshot!r}; "
                f"expected one of {NO_SNAPSHOT_POLICIES}"
            )
        if not self.backends:
            raise ValueError("at least one backend is required")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.poll_interval < 0 or self.settle_seconds < 0:
            raise ValueError("intervals must be >= 0")

    # ------------------------------------------------------- derived layout
    @property
    def registry_dir(self) -> Path:
        return self.state_dir / "streams"

    @property
    def checkpoint_dir(self) -> Path:
        return self.state_dir / "checkpoints"

    @property
    def quarantine_dir(self) -> Path:
        return self.state_dir / "quarantine"

    def ensure_layout(self) -> None:
        for directory in (
            self.spool_dir, self.state_dir, self.registry_dir,
            self.checkpoint_dir, self.quarantine_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
