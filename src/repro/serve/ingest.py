"""Unix-socket trace ingest: one connection, one complete trace.

A recorder that cannot (or should not) write into the spool directory
itself connects to the daemon's unix socket, streams one complete
trace — any on-disk format the sniffer knows — and closes its write
side.  The listener writes the bytes to a dot-prefixed temp file in
the spool (invisible to the scanner) and publishes it with one atomic
rename, so the scanner can never observe a half-received upload.  From
there the upload is indistinguishable from a dropped file: same
stability protocol, same dedupe, same quarantine path for garbage.

The listener runs on its own daemon thread and never raises into the
daemon loop: a client that disconnects mid-upload just loses its temp
file; a flood of connections is bounded by the socket backlog.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
from pathlib import Path
from typing import Callable, Optional

#: Bound one upload to something a spool can hold (256 MiB).
MAX_UPLOAD_BYTES = 256 * 1024 * 1024
_CHUNK = 64 * 1024


class IngestListener:
    """Accepts trace uploads on a unix socket, spools them atomically.

    Args:
        socket_path: where to bind (an existing socket file is
            replaced — a previous daemon's leftover bind).
        spool_dir: the watched spool directory uploads land in.
        on_ingest: optional callback invoked with the published path
            after each successful upload (metrics accounting).
    """

    def __init__(
        self,
        socket_path: Path,
        spool_dir: Path,
        on_ingest: Optional[Callable[[Path], None]] = None,
    ):
        self.socket_path = Path(socket_path)
        self.spool_dir = Path(spool_dir)
        self._on_ingest = on_ingest
        self._counter = itertools.count()
        self._closing = threading.Event()
        self.socket_path.unlink(missing_ok=True)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(str(self.socket_path))
        self._sock.listen(8)
        self._sock.settimeout(0.5)
        self._thread = threading.Thread(
            target=self._serve, name="repro-serve-ingest", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._closing.set()
        self._sock.close()
        self._thread.join(timeout=5)
        self.socket_path.unlink(missing_ok=True)

    # ----------------------------------------------------------- internals
    def _serve(self) -> None:
        while not self._closing.is_set():
            try:
                connection, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return   # socket closed under us: shutting down
            try:
                self._receive(connection)
            except Exception:  # noqa: BLE001 - a bad client is not fatal
                pass
            finally:
                connection.close()

    def _receive(self, connection: socket.socket) -> None:
        connection.settimeout(30.0)
        upload = next(self._counter)
        tmp = self.spool_dir / f".ingest-{os.getpid()}-{upload}.tmp"
        received = 0
        try:
            with open(tmp, "wb") as sink:
                while True:
                    chunk = connection.recv(_CHUNK)
                    if not chunk:
                        break
                    received += len(chunk)
                    if received > MAX_UPLOAD_BYTES:
                        raise ValueError("upload exceeds size bound")
                    sink.write(chunk)
            if received == 0:
                raise ValueError("empty upload")
        except Exception:
            tmp.unlink(missing_ok=True)
            raise
        final = self.spool_dir / f"ingest-{os.getpid()}-{upload}.trace"
        os.replace(tmp, final)
        if self._on_ingest is not None:
            self._on_ingest(final)


def upload_trace(socket_path: Path, payload: bytes) -> None:
    """Client helper: push one complete trace to a serve daemon."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.connect(str(socket_path))
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        sock.recv(1)   # wait for the daemon to close: upload published
