"""One stream, checked under supervision: the serve worker body.

:func:`process_stream` is what runs inside a worker process for every
(re)attempt at a stream: it builds the configured backends, resumes
from the stream's checkpoint generations when they exist, drains the
recording through the format-appropriate hardened source, and returns
a *bounded* picklable outcome — per-backend verdicts, first-warning
positions, warning counts and a fingerprint hash, quarantine totals —
never the unbounded warning or fault lists themselves.

Crash equivalence rests on two properties of this function:

* **resume is a pure function of (checkpoint, recording)** — packed
  streams seek to the checkpoint's block offset; JSONL and DSL streams
  re-read from the start through the *same* hardened reader, rebuilding
  its sequence-dedupe and structural-guard state, and skip delivery of
  the already-processed prefix.  Either way the backend sees exactly
  the operation suffix an uninterrupted run would have seen.
* **every attempt is deterministic** — no randomness, no wall-clock
  dependence, warnings ride inside the snapshot; so however many times
  a stream is killed and resumed, its final outcome is byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from pathlib import Path
from typing import Callable, Optional

from repro.pipeline.source import PackedTraceSource
from repro.resilience.quarantine import (
    LENIENT,
    HardenedJsonlSource,
    HardenedTraceSource,
)
from repro.resilience.shutdown import ShutdownRequested
from repro.resilience.snapshot import previous_snapshot_path
from repro.resilience.supervisor import SupervisedChecker
from repro.store.sniff import FORMAT_DSL, FORMAT_JSONL, FORMAT_PACKED

#: Serial-mode shutdown hook: the daemon installs its latch here so
#: in-process stream runs stop at event granularity.  Worker processes
#: leave it None (their batch completes; periodic checkpoints bound
#: the re-work).  Set via :func:`set_stop_check`.
_stop_check: Optional[Callable[[], None]] = None


def set_stop_check(hook: Optional[Callable[[], None]]):
    """Install the in-process stop hook; returns the previous one."""
    global _stop_check
    previous = _stop_check
    _stop_check = hook
    return previous


def packed_checkpoint_meta(path) -> Callable[[int], dict]:
    """A ``checkpoint_meta`` callable for supervised runs over a
    packed trace: records the source file and the block-aligned byte
    offset from which a resume can re-read only the tail."""
    def meta(position: int) -> dict:
        from repro.store.reader import PackedTraceReader

        entry: dict = {
            "trace": str(path),
            "format": "vtrc",
            "resume_seq": position,
        }
        with PackedTraceReader(path) as reader:
            if 0 <= position < reader.total_ops:
                block = reader.block_for_seq(position)
                entry["resume_block"] = block.number
                entry["resume_block_offset"] = block.byte_offset
            else:  # checkpoint at end of stream: nothing left to read
                entry["resume_block"] = None
                entry["resume_block_offset"] = None
        return entry

    return meta


def warning_fingerprint(backend) -> list[tuple]:
    """Everything observable about a backend's warnings, in order.

    The same tuple shape the differential fuzzer compares
    (:mod:`repro.fuzz.faults`), so serve results and fuzz oracles
    agree on what "identical warnings" means.
    """
    return [
        (w.kind.value, w.label, w.tid, w.position, w.message, w.blamed,
         w.target)
        for w in backend.warnings
    ]


def backend_result(backend) -> dict:
    """One backend's verdict, bounded however many warnings it found."""
    prints = warning_fingerprint(backend)
    digest = hashlib.sha256(
        json.dumps(prints, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()[:16]
    first = None
    if prints:
        kind, label, tid, position, message, _, _ = prints[0]
        first = {
            "kind": kind, "label": label, "tid": tid,
            "position": position, "message": message,
        }
    return {
        "backend": backend.name,
        "verdict": "serializable" if not prints else "not-serializable",
        "warnings": len(prints),
        "first_warning": first,
        "fingerprint": digest,
    }


def _resume_exists(checkpoint: Path) -> bool:
    return checkpoint.exists() or previous_snapshot_path(checkpoint).exists()


def _skipping_sink(checker: SupervisedChecker, skip: int):
    """Deliver ops to ``checker`` after silently dropping ``skip``.

    Textual streams have no seek index, so a resume re-reads the file
    through the same hardened reader — rebuilding its dedupe/guard
    state — and this sink discards the prefix the checkpoint already
    covers.
    """
    seen = 0

    def sink(op):
        nonlocal seen
        if seen < skip:
            seen += 1
            return
        checker.process(op)

    return sink


def process_stream(task) -> dict:
    """Run one attempt at one stream; returns a picklable outcome.

    ``task`` is a :class:`repro.parallel.tasks.StreamTask`.  Outcome
    ``status`` is ``"done"``, ``"interrupted"`` (graceful shutdown —
    a final checkpoint was written, not a failure), or ``"failed"``
    (the traceback is in ``error``; the daemon's retry policy decides
    what happens next).
    """
    from repro.cli import resolve_backend

    started = time.perf_counter()
    outcome: dict = {
        "stream_id": task.stream_id,
        "status": "failed",
        "events": 0,
        "elapsed": 0.0,
        "error": "",
        "checkpoints_written": 0,
        "recoveries": 0,
        "degraded": False,
        "degradations": 0,
        "checkpoint_lag": 0,
        "fast_forwarded_events": 0,
        "resumed_from": None,
        "quarantine": None,
        "memo": None,
        "backends": [],
    }
    checker = None
    try:
        checkpoint = (
            Path(task.checkpoint_path) if task.checkpoint_path else None
        )
        options = dict(
            checkpoint_every=(
                task.checkpoint_every if checkpoint is not None else None
            ),
            budgets=task.budgets,
            on_pressure=task.on_pressure,
            stop_check=_stop_check,
        )
        if task.format == FORMAT_PACKED:
            options["checkpoint_meta"] = packed_checkpoint_meta(task.path)
        memo = None
        if getattr(task, "memoize", False):
            from repro.core.memo import RegionMemo

            # Transient worker state: the memo table is rebuilt on every
            # attempt, so a resumed stream re-certifies from scratch and
            # the resume-is-pure property is untouched.
            memo = RegionMemo(max_entries=task.memo_max)
            options["memo"] = memo
        if checkpoint is not None and _resume_exists(checkpoint):
            checker = SupervisedChecker.resume_with_fallback(
                checkpoint, **options
            )
            outcome["resumed_from"] = str(checker.resumed_from)
        else:
            backends = [resolve_backend(name)() for name in task.backends]
            checker = SupervisedChecker(
                backends, checkpoint_path=checkpoint, **options
            )
        quarantine = None
        try:
            if task.format == FORMAT_PACKED:
                checker.run(
                    PackedTraceSource(task.path, start_seq=checker.position)
                )
            elif task.format == FORMAT_JSONL:
                source = HardenedJsonlSource(
                    task.path, policy=LENIENT,
                    max_retained=task.max_retained,
                )
                quarantine = source.quarantine
                source.run(_skipping_sink(checker, checker.position))
                checker.finish()
            elif task.format == FORMAT_DSL:
                from repro.events.serialize import load_trace

                source = HardenedTraceSource(
                    load_trace(task.path), policy=LENIENT,
                    max_retained=task.max_retained,
                )
                quarantine = source.quarantine
                source.run(_skipping_sink(checker, checker.position))
                checker.finish()
            else:
                raise ValueError(f"unknown stream format {task.format!r}")
        except ShutdownRequested:
            if checkpoint is not None:
                checker.checkpoint()
            outcome["status"] = "interrupted"
        else:
            if checkpoint is not None:
                checker.checkpoint()   # final: resume cost on restart is 0
            outcome["status"] = "done"
            outcome["backends"] = [
                backend_result(backend) for backend in checker.backends
            ]
        report = checker.report()
        outcome["events"] = checker.position
        outcome["checkpoints_written"] = report.checkpoints_written
        outcome["recoveries"] = report.recoveries
        outcome["degraded"] = report.degraded
        outcome["degradations"] = sum(
            governor.events.total for governor in checker.governors
        )
        outcome["checkpoint_lag"] = (
            checker.position - checker.last_checkpoint_position
        )
        outcome["fast_forwarded_events"] = checker.fast_forwarded_events
        if memo is not None:
            outcome["memo"] = memo.stats()
        if quarantine is not None:
            outcome["quarantine"] = {
                "total": len(quarantine),
                "dropped": quarantine.dropped,
                "counts": quarantine.counts(),
            }
    except Exception:  # noqa: BLE001 - containment: report, don't crash
        outcome["status"] = "failed"
        outcome["error"] = traceback.format_exc()
        if checker is not None:
            outcome["events"] = checker.position
    outcome["elapsed"] = time.perf_counter() - started
    return outcome
