"""Retry policy for failed streams: exponential backoff, then park.

A stream can fail for reasons that heal (the recorder still holds the
file lock, a shared filesystem hiccup, a worker OOM-killed under
transient memory pressure) and reasons that never will (a truncated
packed block, a recording from an incompatible build).  The daemon
cannot tell which it saw, so it retries every failure — but each
attempt waits exponentially longer, and after ``max_attempts`` the
stream is **parked**: kept in the registry with its last error, never
retried again, never crashing the daemon, and visible in ``/metrics``
until an operator repairs or removes the input.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How failed streams are retried.

    Attributes:
        max_attempts: total attempts (first try included) before the
            stream is parked.
        base_delay: seconds before the first retry.
        factor: multiplier applied per further retry.
        max_delay: backoff ceiling in seconds.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1.0")

    def delay(self, attempts: int) -> float:
        """Seconds to wait after the ``attempts``-th failure (1-based)."""
        if attempts < 1:
            return 0.0
        return min(
            self.max_delay,
            self.base_delay * self.factor ** (attempts - 1),
        )

    def exhausted(self, attempts: int) -> bool:
        """True once ``attempts`` failures mean the stream parks."""
        return attempts >= self.max_attempts
