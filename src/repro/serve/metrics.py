"""Live daemon metrics, and the HTTP endpoint that exposes them.

The daemon is headless; the only way to see inside a running one is
this module.  :class:`ServeMetrics` aggregates counters from every
stream outcome (thread-safe — the socket listener and the main loop
both touch it), keeps a *capped* ring of recent round samples for the
events/sec estimate, and renders one JSON document.  :class:`
MetricsServer` is a stdlib ``ThreadingHTTPServer`` — no dependencies —
serving:

* ``GET /metrics`` — the full counter document (see
  :meth:`ServeMetrics.snapshot`);
* ``GET /streams`` — per-stream registry states;
* ``GET /healthz`` — liveness: ``{"ok": true}`` while the daemon loop
  runs.

Everything here is observational: killing the metrics server (or never
starting it) changes no verdict.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.resilience.ringlog import RingLog

#: Round samples kept for the throughput estimate.
_RECENT_ROUNDS = 64


class ServeMetrics:
    """Thread-safe counters over everything the daemon has done."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.rounds = 0
        self.events_total = 0
        self.warnings_total = 0
        self.streams_done = 0
        self.streams_failed_attempts = 0
        self.streams_parked = 0
        self.streams_quarantined = 0
        self.duplicates_dropped = 0
        self.ingested_sockets = 0
        self.checkpoints_written = 0
        self.recoveries = 0
        self.degradations = 0
        self.degraded_streams = 0
        self.fast_forwarded_events = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        self.quarantined_records = 0
        self.max_checkpoint_lag = 0
        self.interrupted = False
        #: (monotonic time, events in round) samples, newest last.
        self._recent: RingLog = RingLog(maxlen=_RECENT_ROUNDS)

    # -------------------------------------------------------------- recording
    def observe_round(self, events: int) -> None:
        with self._lock:
            self.rounds += 1
            self._recent.append((time.monotonic(), events))

    def observe_outcome(self, outcome: dict) -> None:
        """Fold one stream attempt's outcome into the counters."""
        with self._lock:
            self.events_total += outcome.get("events", 0)
            self.checkpoints_written += outcome.get(
                "checkpoints_written", 0
            )
            self.recoveries += outcome.get("recoveries", 0)
            self.degradations += outcome.get("degradations", 0)
            self.fast_forwarded_events += outcome.get(
                "fast_forwarded_events", 0
            )
            self.max_checkpoint_lag = max(
                self.max_checkpoint_lag, outcome.get("checkpoint_lag", 0)
            )
            memo = outcome.get("memo")
            if memo:
                self.memo_hits += memo.get("hits", 0)
                self.memo_misses += memo.get("misses", 0)
                self.memo_evictions += memo.get("evictions", 0)
            quarantine = outcome.get("quarantine")
            if quarantine:
                self.quarantined_records += quarantine.get("total", 0)
            status = outcome.get("status")
            if status == "done":
                self.streams_done += 1
                if outcome.get("degraded"):
                    self.degraded_streams += 1
                for backend in outcome.get("backends", ()):
                    self.warnings_total += backend.get("warnings", 0)
            elif status == "failed":
                self.streams_failed_attempts += 1

    def count(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    # -------------------------------------------------------------- rendering
    def events_per_second(self) -> float:
        """Throughput over the retained recent rounds."""
        with self._lock:
            samples = list(self._recent)
        if len(samples) < 2:
            return 0.0
        span = samples[-1][0] - samples[0][0]
        if span <= 0:
            return 0.0
        # The first sample marks the window start; its events predate it.
        return sum(events for _, events in samples[1:]) / span

    def snapshot(
        self,
        registry_counts: Optional[dict] = None,
        workload_families: Optional[dict] = None,
    ) -> dict:
        with self._lock:
            document = {
                "uptime_seconds": round(
                    time.monotonic() - self._started, 3
                ),
                "rounds": self.rounds,
                "events_total": self.events_total,
                "events_per_second": 0.0,   # patched below, needs lock off
                "warnings_total": self.warnings_total,
                "streams": {
                    "done": self.streams_done,
                    "failed_attempts": self.streams_failed_attempts,
                    "parked": self.streams_parked,
                    "quarantined": self.streams_quarantined,
                    "duplicates_dropped": self.duplicates_dropped,
                    "degraded": self.degraded_streams,
                },
                "ingested_sockets": self.ingested_sockets,
                "checkpoints_written": self.checkpoints_written,
                "max_checkpoint_lag": self.max_checkpoint_lag,
                "recoveries": self.recoveries,
                "degradations": self.degradations,
                "fast_forwarded_events": self.fast_forwarded_events,
                "memo": {
                    "hits": self.memo_hits,
                    "misses": self.memo_misses,
                    "evictions": self.memo_evictions,
                },
                "quarantined_records": self.quarantined_records,
                "interrupted": self.interrupted,
            }
        document["events_per_second"] = round(self.events_per_second(), 1)
        if registry_counts is not None:
            document["registry"] = dict(sorted(registry_counts.items()))
        if workload_families:
            # Streams whose content matches a lab-recorded trace
            # digest, counted per server workload family.
            document["workload_families"] = dict(
                sorted(workload_families.items())
            )
        return document


class _Handler(BaseHTTPRequestHandler):
    """Routes the three read-only endpoints; everything else is 404."""

    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        payload = self.server.route(route)
        if payload is None:
            self.send_error(404, "unknown endpoint")
            return
        body = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args) -> None:
        """Silence per-request stderr logging."""


class MetricsServer:
    """The status endpoint, on its own daemon thread.

    Args:
        sources: route -> zero-argument callable returning the JSON
            payload (``/metrics``, ``/streams``, ...).  ``/healthz``
            is built in.
        port: TCP port on localhost; ``0`` binds an ephemeral one
            (read :attr:`port` after :meth:`start`).
    """

    def __init__(self, sources: dict[str, Callable[[], dict]],
                 port: int = 0):
        self._sources = dict(sources)
        self._sources.setdefault("/healthz", lambda: {"ok": True})
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._httpd.route = self.route  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-metrics",
            daemon=True,
        )

    def route(self, path: str):
        source = self._sources.get(path)
        return None if source is None else source()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
