"""The spool watcher: turn dropped files into streams, safely.

A spool directory is written by *other* processes, so every messy
arrival mode is normal here:

* **file appearing mid-write** — a recorder writing a large trace in
  place is visible with a growing size.  The scanner only accepts a
  file once it is *stable*: its size and mtime were unchanged across
  two consecutive scans, or its mtime is older than
  ``settle_seconds``.  Until then it is re-checked next scan, never
  quarantined for being half-written.  (Writers that drop via rename
  are stable immediately on most filesystems.)
* **duplicate re-drop** — identity is the content digest
  (:func:`repro.fuzz.corpus.trace_digest`), so the same trace under a
  new name or in a different lossless format is skipped as a
  duplicate, not re-checked.
* **garbage** — a file that sniffs as no known trace format (empty
  files included) is moved to the quarantine directory and recorded,
  without touching its neighbors.

The scanner itself never parses beyond the digest; classification of
*records inside* a stream is the checker's hardened readers' job.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.store.sniff import UnknownTraceFormat, sniff_path


@dataclass(frozen=True)
class StableFile:
    """One spool file ready to become a stream."""

    path: Path
    format: Optional[str]    #: sniffed format, None when unknown
    digest: str              #: content digest (``raw-`` prefixed fallback)
    content_digest: bool     #: True when digest is over canonical ops
    error: str = ""          #: why format is None


@dataclass
class ScanResult:
    """One scan pass: what became ready, what is still settling."""

    stable: list[StableFile] = field(default_factory=list)
    settling: list[Path] = field(default_factory=list)


def file_digest(path: Path, fmt: Optional[str]) -> tuple[str, bool]:
    """Content identity of a spool file.

    Parseable traces digest by canonical operation tuples — format
    independent, so ``x.jsonl`` and its packed re-encoding dedupe.
    Anything unparseable (unknown format, or a recognized header over
    a corrupt body) falls back to a raw-byte hash, marked ``raw-`` so
    it can never collide with a content digest.
    """
    if fmt is not None:
        from repro.events.serialize import load_trace
        from repro.fuzz.corpus import trace_digest

        try:
            return trace_digest(load_trace(path)), True
        except Exception:  # noqa: BLE001 - fall through to raw identity
            pass
    raw = hashlib.sha256(path.read_bytes()).hexdigest()[:12]
    return f"raw-{raw}", False


class SpoolScanner:
    """Stateful scanner over one spool directory.

    ``known`` paths (already registered streams) are skipped without a
    stat-beyond-listing; everything else goes through the stability
    protocol above.  The scanner holds only in-memory state — after a
    daemon restart every spool file is simply re-observed, and the
    registry's path/digest indexes make re-observation idempotent.
    """

    def __init__(self, spool_dir: Path, settle_seconds: float = 1.0):
        self.spool_dir = Path(spool_dir)
        self.settle_seconds = settle_seconds
        #: path -> (size, mtime_ns) from the previous scan.
        self._sightings: dict[Path, tuple[int, int]] = {}

    def scan(self, known: set[str], now: Optional[float] = None) -> ScanResult:
        """One pass over the spool; ``known`` are registered paths."""
        now = time.time() if now is None else now
        result = ScanResult()
        present: set[Path] = set()
        for path in sorted(self.spool_dir.iterdir()):
            if not path.is_file():
                continue
            if path.name.startswith(".") or path.name.endswith(".tmp"):
                continue   # daemon state, editors, in-flight ingest
            if str(path) in known:
                continue
            present.add(path)
            try:
                stat = path.stat()
            except OSError:
                continue   # raced a concurrent delete
            shape = (stat.st_size, stat.st_mtime_ns)
            previous = self._sightings.get(path)
            self._sightings[path] = shape
            settled = (
                previous == shape
                or now - stat.st_mtime >= self.settle_seconds
            )
            if not settled:
                result.settling.append(path)
                continue
            result.stable.append(self._classify(path))
        # Forget files that vanished so a re-drop restarts the protocol.
        for path in list(self._sightings):
            if path not in present and str(path) not in known:
                del self._sightings[path]
        return result

    def _classify(self, path: Path) -> StableFile:
        try:
            fmt = sniff_path(path)
            error = ""
        except UnknownTraceFormat as exc:
            fmt = None
            error = str(exc)
        except OSError as exc:
            fmt = None
            error = f"unreadable: {exc}"
        digest, content = file_digest(path, fmt)
        return StableFile(
            path=path, format=fmt, digest=digest,
            content_digest=content, error=error,
        )
