"""The stream registry: crash-safe per-stream state on disk.

Every stream the daemon has ever seen has exactly one record, persisted
as one JSON file under ``<state>/streams/`` and rewritten atomically
(temp file + rename) on every transition.  Because each record is its
own file, a ``kill -9`` can lose at most the single in-flight
transition — never corrupt a neighbor's state — and a restarted daemon
reconstructs the whole registry by listing the directory.

Identity is *content*, not filename: a stream's id embeds the
canonical-operation digest of :func:`repro.fuzz.corpus.trace_digest`,
so re-dropping an already-processed trace under a new name (or in a
different format — packed vs JSONL digests identically) is recognized
as a duplicate and skipped instead of re-checked.

Lifecycle::

    pending -> running -> done
                  |-> failed -> pending (retry, with backoff)
                  |       `-> parked (attempts exhausted)
                  `-> pending (interrupted by shutdown)
    quarantined / duplicate / rejected  (terminal on arrival)

``running`` records found at startup are demoted to ``pending``: the
previous daemon died holding them, and their checkpoints (if any)
carry the progress.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, Path]

#: Stream states.  Terminal: done, parked, quarantined, duplicate,
#: rejected.  Workable: pending, failed (when its backoff elapses).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
PARKED = "parked"
QUARANTINED = "quarantined"
DUPLICATE = "duplicate"
REJECTED = "rejected"

TERMINAL = frozenset({DONE, PARKED, QUARANTINED, DUPLICATE, REJECTED})

_ID_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def stream_id(path: PathLike, digest: str) -> str:
    """A stable, filesystem-safe id: sanitized stem + digest prefix."""
    stem = _ID_SAFE.sub("_", Path(path).stem) or "stream"
    return f"{stem[:48]}-{digest[:12]}"


@dataclass
class StreamRecord:
    """One stream's persistent state.

    Attributes:
        stream_id: registry key (see :func:`stream_id`).
        path: the spooled input file.
        digest: content digest (canonical-operation hash when the
            trace parsed; raw-byte hash prefixed ``raw-`` otherwise).
        format: sniffed trace format (``vtrc``/``jsonl``/``dsl``), or
            ``None`` for quarantined files.
        status: lifecycle state (module constants).
        attempts: failed processing attempts so far.
        checkpointable: False when the backend selection has no
            snapshot codec — the stream is declared replay-from-origin
            (:data:`~repro.serve.config.NO_SNAPSHOT_POLICIES`).
        error: last failure/quarantine reason.
        result: bounded verdict payload once ``done`` (see
            :func:`repro.serve.stream.process_stream`).
        workload_family: the server workload family whose lab-recorded
            trace this stream's content matches (``repro serve
            --lab-digests``), or ``None`` for untagged streams —
            including every record written before the field existed.
    """

    stream_id: str
    path: str
    digest: str
    format: Optional[str] = None
    status: str = PENDING
    attempts: int = 0
    checkpointable: bool = True
    error: str = ""
    result: Optional[dict] = None
    workload_family: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL


class StreamRegistry:
    """All stream records, mirrored to one JSON file each."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self._records: dict[str, StreamRecord] = {}

    # ------------------------------------------------------------ persistence
    def load(self) -> None:
        """Rebuild from disk; in-flight records demote to pending."""
        self._records.clear()
        for path in sorted(self.directory.glob("*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                record = StreamRecord(**data)
            except (ValueError, TypeError):
                # A record torn by a crash mid-write never happens
                # (writes are atomic), but a hand-edited or damaged
                # one must not take the daemon down; drop it and let
                # the spool scan re-register the stream.
                path.unlink(missing_ok=True)
                continue
            if record.status == RUNNING:
                record.status = PENDING
            self._records[record.stream_id] = record

    def save(self, record: StreamRecord) -> None:
        """Persist one record atomically and index it."""
        self._records[record.stream_id] = record
        target = self.directory / f"{record.stream_id}.json"
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(
            json.dumps(asdict(record), sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, target)

    # ----------------------------------------------------------------- lookup
    def get(self, stream_id: str) -> Optional[StreamRecord]:
        return self._records.get(stream_id)

    def records(self) -> list[StreamRecord]:
        return [self._records[key] for key in sorted(self._records)]

    def known_paths(self) -> set[str]:
        return {record.path for record in self._records.values()}

    def by_digest(self, digest: str) -> Optional[StreamRecord]:
        for record in self._records.values():
            if record.digest == digest and record.status != DUPLICATE:
                return record
        return None

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self._records.values():
            out[record.status] = out.get(record.status, 0) + 1
        return out

    def family_counts(self) -> dict[str, int]:
        """Streams per ``workload_family`` tag (untagged ones omitted)."""
        out: dict[str, int] = {}
        for record in self._records.values():
            if record.workload_family is not None:
                family = record.workload_family
                out[family] = out.get(family, 0) + 1
        return out

    def workable(self) -> list[StreamRecord]:
        """Streams that want processing (retry eligibility aside)."""
        return [
            record for record in self.records()
            if record.status in (PENDING, FAILED)
        ]

    def drained(self) -> bool:
        """True when every known stream is in a terminal state."""
        return all(record.terminal for record in self._records.values())
