"""The ``repro serve`` daemon: always-on multi-stream checking.

One :class:`ServeDaemon` watches a spool directory (and optionally a
unix ingest socket), registers every stable trace file as a stream,
and drives rounds of supervised checking until told to stop::

    scan spool -> register / dedupe / quarantine arrivals
    pick every runnable stream (pending, or failed with backoff elapsed)
    slice the global resource budget across them
    shard them over the worker pool (repro.parallel.run_shards)
    fold outcomes back: done / retry-with-backoff / park
    sleep until the next poll (or exit when --oneshot and drained)

Robustness invariants, each pinned by a test:

* **isolation** — a malformed stream quarantines or parks alone; its
  neighbors' verdicts are exactly what they would be in a clean spool.
* **crash equivalence** — ``kill -9`` at any instant, restart against
  the same spool and state directory, and every stream's final verdict,
  warning count, and first-warning position are identical to an
  uninterrupted run (see :func:`repro.fuzz.faults.
  serve_crash_divergences`).  The pieces: atomic registry records with
  ``running -> pending`` demotion, checkpoint generations per stream,
  and deterministic replay for streams that cannot checkpoint.
* **graceful shutdown** — SIGTERM/SIGINT stop at the next safe point,
  write final checkpoints, persist the registry, and exit with
  :data:`~repro.resilience.shutdown.EXIT_INTERRUPTED`.
* **bounded memory** — diagnostics are ring-buffered per stream and
  the global governor budget is divided across active streams, so N
  streams cost what one budgeted stream costs.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.parallel.executor import run_shards
from repro.parallel.tasks import StreamTask, run_stream_task
from repro.resilience.governor import Budgets
from repro.resilience.shutdown import EXIT_INTERRUPTED, GracefulShutdown
from repro.resilience.snapshot import supports
from repro.serve.config import ServeConfig
from repro.serve.ingest import IngestListener
from repro.serve.metrics import MetricsServer, ServeMetrics
from repro.serve.registry import (
    DONE,
    DUPLICATE,
    FAILED,
    PARKED,
    PENDING,
    QUARANTINED,
    REJECTED,
    RUNNING,
    StreamRecord,
    StreamRegistry,
    stream_id,
)
from repro.serve.spool import SpoolScanner, StableFile
from repro.serve.stream import set_stop_check

#: Error text kept per registry record (full tracebacks stay in the
#: worker outcome, not on disk forever).
_ERROR_TAIL = 2000


class ServeDaemon:
    """See the module docstring; construct, then :meth:`run`."""

    def __init__(
        self,
        config: ServeConfig,
        shutdown: Optional[GracefulShutdown] = None,
    ):
        config.ensure_layout()
        self.config = config
        self.shutdown = shutdown
        self.registry = StreamRegistry(config.registry_dir)
        self.registry.load()
        self.scanner = SpoolScanner(
            config.spool_dir, settle_seconds=config.settle_seconds
        )
        self.metrics = ServeMetrics()
        self.metrics_server: Optional[MetricsServer] = None
        self.ingest: Optional[IngestListener] = None
        #: stream_id -> monotonic deadline before the next retry.
        self._next_retry: dict[str, float] = {}
        self._settling = 0
        self._endpoints_started = False
        self._checkpointable = self._backends_checkpointable()
        # digest -> {workload, kind, point} from `repro lab run
        # --digests`; imported lazily so plain daemons never pull the
        # experiments package.
        from repro.experiments.digests import load_digests

        self._lab_digests = load_digests(config.lab_digests)
        self._finish_quarantine_moves()

    # ----------------------------------------------------------- lifecycle
    def run(self, oneshot: bool = False,
            max_rounds: Optional[int] = None) -> int:
        """Drive rounds until drained (``oneshot``), ``max_rounds``,
        or shutdown; returns the process exit code."""
        self.start_endpoints()
        try:
            rounds = 0
            while True:
                if self.shutdown is not None and self.shutdown.triggered:
                    self.metrics.interrupted = True
                    return EXIT_INTERRUPTED
                events = self._round()
                self.metrics.observe_round(events)
                rounds += 1
                if self.shutdown is not None and self.shutdown.triggered:
                    self.metrics.interrupted = True
                    return EXIT_INTERRUPTED
                if oneshot and self._drained():
                    return self.exit_code()
                if max_rounds is not None and rounds >= max_rounds:
                    return self.exit_code()
                if events == 0:
                    self._sleep(self.config.poll_interval)
        finally:
            self._stop_endpoints()

    def exit_code(self) -> int:
        """0 when every finished stream is clean, 1 otherwise."""
        for record in self.registry.records():
            if record.status in (PARKED, QUARANTINED, REJECTED):
                return 1
            for backend in (record.result or {}).get("backends", ()):
                if backend.get("warnings", 0):
                    return 1
        return 0

    # ---------------------------------------------------------- round body
    def _round(self) -> int:
        """One scan + one batch of stream attempts; returns events."""
        scan = self.scanner.scan(self.registry.known_paths())
        self._settling = len(scan.settling)
        for stable in scan.stable:
            self._register(stable)
        ready = self._ready_streams(time.monotonic())
        if not ready:
            return 0
        budgets = self._sliced_budgets(len(ready))
        tasks = [self._task_for(record, budgets) for record in ready]
        for record in ready:
            record.status = RUNNING
            self.registry.save(record)
        results = self._dispatch(tasks)
        events = 0
        for record, shard in zip(ready, results):
            outcome = shard.value if shard.ok else None
            if outcome is None:
                outcome = {
                    "stream_id": record.stream_id, "status": "failed",
                    "events": 0, "error": shard.error,
                }
            self.metrics.observe_outcome(outcome)
            events += outcome.get("events", 0)
            self._apply_outcome(record, outcome)
        return events

    def _dispatch(self, tasks: list[StreamTask]):
        """Run the batch; serial mode gets event-granular shutdown."""
        serial = self.config.jobs <= 1 or len(tasks) <= 1
        if serial and self.shutdown is not None:
            previous = set_stop_check(self.shutdown.check)
            try:
                return run_shards(run_stream_task, tasks, jobs=1)
            finally:
                set_stop_check(previous)
        return run_shards(run_stream_task, tasks, jobs=self.config.jobs)

    def _sliced_budgets(self, active: int) -> Budgets:
        return (
            self.config.budgets.slice(active)
            if active > 1 else self.config.budgets
        )

    # -------------------------------------------------------- registration
    def _register(self, stable: StableFile) -> None:
        if stable.format is None:
            self._quarantine(stable)
            return
        sid = stream_id(stable.path, stable.digest)
        if self.registry.get(sid) is not None:
            return   # re-observed after restart; registry is truth
        family = self._workload_family(stable.digest)
        original = self.registry.by_digest(stable.digest)
        if original is not None:
            self.registry.save(StreamRecord(
                stream_id=sid, path=str(stable.path),
                digest=stable.digest, format=stable.format,
                status=DUPLICATE,
                error=f"same content as {original.stream_id}",
                workload_family=family,
            ))
            self.metrics.count("duplicates_dropped")
            return
        checkpointable = self._checkpointable
        if not checkpointable and self.config.no_snapshot == "fail":
            self.registry.save(StreamRecord(
                stream_id=sid, path=str(stable.path),
                digest=stable.digest, format=stable.format,
                status=REJECTED, checkpointable=False,
                error="backend selection has no snapshot codec and "
                      "no_snapshot policy is 'fail'",
                workload_family=family,
            ))
            return
        self.registry.save(StreamRecord(
            stream_id=sid, path=str(stable.path), digest=stable.digest,
            format=stable.format, status=PENDING,
            checkpointable=checkpointable, workload_family=family,
        ))

    def _workload_family(self, digest):
        from repro.experiments.digests import family_for_digest

        return family_for_digest(self._lab_digests, digest)

    def _quarantine(self, stable: StableFile) -> None:
        """Record, then move: a kill between the two loses nothing —
        the record marks the path known, and the startup sweep
        finishes the move."""
        sid = stream_id(stable.path, stable.digest)
        if self.registry.get(sid) is None:
            self.registry.save(StreamRecord(
                stream_id=sid, path=str(stable.path),
                digest=stable.digest, format=None, status=QUARANTINED,
                error=stable.error or "unrecognized trace format",
            ))
            self.metrics.count("streams_quarantined")
        self._move_to_quarantine(stable.path)

    def _move_to_quarantine(self, path) -> None:
        import os

        target = self.config.quarantine_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            pass   # already moved, or raced a delete; record stands

    def _finish_quarantine_moves(self) -> None:
        from pathlib import Path

        for record in self.registry.records():
            if record.status == QUARANTINED:
                source = Path(record.path)
                if source.exists():
                    self._move_to_quarantine(source)

    # ---------------------------------------------------------- scheduling
    def _ready_streams(self, now: float) -> list[StreamRecord]:
        ready = []
        for record in self.registry.workable():
            if record.status == FAILED:
                deadline = self._next_retry.get(record.stream_id, 0.0)
                if now < deadline:
                    continue
            ready.append(record)
        return ready

    def _task_for(self, record: StreamRecord,
                  budgets: Budgets) -> StreamTask:
        checkpoint = (
            str(self.config.checkpoint_dir / f"{record.stream_id}.ckpt")
            if record.checkpointable else None
        )
        return StreamTask(
            stream_id=record.stream_id,
            path=record.path,
            format=record.format,
            backends=self.config.backends,
            checkpoint_path=checkpoint,
            checkpoint_every=self.config.checkpoint_every,
            budgets=budgets,
            on_pressure=self.config.on_pressure,
            max_retained=self.config.max_retained,
            memoize=self.config.memoize,
            memo_max=self.config.memo_max,
        )

    def _apply_outcome(self, record: StreamRecord, outcome: dict) -> None:
        status = outcome.get("status")
        if status == "done":
            record.status = DONE
            record.error = ""
            record.result = {
                "backends": outcome.get("backends", []),
                "events": outcome.get("events", 0),
                "resumed_from": outcome.get("resumed_from"),
                "quarantine": outcome.get("quarantine"),
                "degraded": outcome.get("degraded", False),
            }
            self._next_retry.pop(record.stream_id, None)
        elif status == "interrupted":
            # The final checkpoint carries the progress; next daemon
            # (or next round, if shutdown is rescinded) resumes it.
            record.status = PENDING
        else:
            record.attempts += 1
            record.error = outcome.get("error", "")[-_ERROR_TAIL:]
            if self.config.retry.exhausted(record.attempts):
                record.status = PARKED
                self.metrics.count("streams_parked")
                self._next_retry.pop(record.stream_id, None)
            else:
                record.status = FAILED
                self._next_retry[record.stream_id] = (
                    time.monotonic()
                    + self.config.retry.delay(record.attempts)
                )
        self.registry.save(record)

    def _drained(self) -> bool:
        return self._settling == 0 and self.registry.drained()

    # ------------------------------------------------------------ plumbing
    def _sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        if self.shutdown is not None:
            self.shutdown.wait(seconds)
        else:
            time.sleep(seconds)

    def _backends_checkpointable(self) -> bool:
        from repro.cli import resolve_backend

        return all(
            supports(resolve_backend(name)())
            for name in self.config.backends
        )

    def _stream_views(self) -> dict:
        from dataclasses import asdict

        return {"streams": [asdict(r) for r in self.registry.records()]}

    def start_endpoints(self) -> None:
        """Bind the HTTP and ingest endpoints (idempotent); callers
        that need the ephemeral port read it before :meth:`run`."""
        if self._endpoints_started:
            return
        self._endpoints_started = True
        if self.config.http_port is not None:
            self.metrics_server = MetricsServer(
                {
                    "/metrics": lambda: self.metrics.snapshot(
                        self.registry.counts(),
                        workload_families=self.registry.family_counts(),
                    ),
                    "/streams": self._stream_views,
                },
                port=self.config.http_port,
            )
            self.metrics_server.start()
        if self.config.socket_path is not None:
            self.ingest = IngestListener(
                self.config.socket_path, self.config.spool_dir,
                on_ingest=lambda _path: self.metrics.count(
                    "ingested_sockets"
                ),
            )
            self.ingest.start()

    def _stop_endpoints(self) -> None:
        if self.ingest is not None:
            self.ingest.stop()
            self.ingest = None
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None
        self._endpoints_started = False
