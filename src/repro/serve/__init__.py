"""``repro serve``: the always-on multi-stream checking daemon.

Layering (each module usable alone):

* :mod:`~repro.serve.config` — :class:`ServeConfig`, the one knob set.
* :mod:`~repro.serve.registry` — crash-safe per-stream state on disk.
* :mod:`~repro.serve.spool` — stable-file detection, content dedupe,
  format sniffing over the watched directory.
* :mod:`~repro.serve.stream` — the per-stream worker body (resume,
  check, bounded outcome).
* :mod:`~repro.serve.retry` — exponential backoff, then park.
* :mod:`~repro.serve.metrics` — counters plus the HTTP endpoint.
* :mod:`~repro.serve.ingest` — unix-socket trace uploads.
* :mod:`~repro.serve.daemon` — the round loop tying it all together.

See ``docs/serving.md`` for the operational story and the
crash-equivalence guarantee.
"""

from repro.serve.config import NO_SNAPSHOT_POLICIES, ServeConfig
from repro.serve.daemon import ServeDaemon
from repro.serve.ingest import IngestListener, upload_trace
from repro.serve.metrics import MetricsServer, ServeMetrics
from repro.serve.registry import StreamRecord, StreamRegistry, stream_id
from repro.serve.retry import RetryPolicy
from repro.serve.spool import SpoolScanner, StableFile, file_digest
from repro.serve.stream import process_stream, warning_fingerprint

__all__ = [
    "NO_SNAPSHOT_POLICIES",
    "ServeConfig",
    "ServeDaemon",
    "IngestListener",
    "upload_trace",
    "MetricsServer",
    "ServeMetrics",
    "StreamRecord",
    "StreamRegistry",
    "stream_id",
    "RetryPolicy",
    "SpoolScanner",
    "StableFile",
    "file_digest",
    "process_stream",
    "warning_fingerprint",
]
