"""The packed binary trace store (VTRC).

A first-class on-disk representation for recorded event streams:
compressed, seekable, CRC-protected, and shardable.  See
``docs/traces.md`` for the format specification and
:mod:`repro.store.format` for the wire layout.

Public surface:

* :class:`PackedTraceWriter` / :func:`save_packed` — streaming encode;
* :class:`PackedTraceReader` / :func:`load_packed` — strict decode,
  ``seek(seq)``, ``iter_blocks()``, ``info()``;
* :class:`TolerantPackedReader` / :func:`load_packed_tolerant` —
  quarantine-aware recovery reads;
* :func:`load_packed_parallel` — multi-process block-range decode;
* :class:`BlockSummary` / :class:`TargetFootprint` /
  :func:`summarize_ops` — the v2 per-block summary records that let
  analyses fast-forward whole blocks without decoding them;
* :func:`sniff_path` / :func:`sniff_bytes` — magic-byte format
  detection shared by every trace-reading entry point.
"""

from repro.store.format import (
    DEFAULT_BLOCK_OPS,
    MAGIC,
    VERSION,
    CorruptBlock,
    StoreError,
    StoreFormatError,
)
from repro.store.parallel import block_ranges, load_packed_parallel
from repro.store.reader import (
    BlockInfo,
    PackedTraceReader,
    StoreInfo,
    TolerantPackedReader,
    load_packed,
    load_packed_tolerant,
)
from repro.store.sniff import (
    FORMAT_DSL,
    FORMAT_JSONL,
    FORMAT_PACKED,
    UnknownTraceFormat,
    sniff_bytes,
    sniff_path,
)
from repro.store.summary import (
    HISTOGRAM_KINDS,
    BlockSummary,
    TargetFootprint,
    summarize_ops,
)
from repro.store.writer import PackedTraceWriter, save_packed

__all__ = [
    "BlockInfo",
    "BlockSummary",
    "HISTOGRAM_KINDS",
    "TargetFootprint",
    "summarize_ops",
    "CorruptBlock",
    "DEFAULT_BLOCK_OPS",
    "FORMAT_DSL",
    "FORMAT_JSONL",
    "FORMAT_PACKED",
    "MAGIC",
    "PackedTraceReader",
    "PackedTraceWriter",
    "StoreError",
    "StoreFormatError",
    "StoreInfo",
    "TolerantPackedReader",
    "UnknownTraceFormat",
    "VERSION",
    "block_ranges",
    "load_packed",
    "load_packed_parallel",
    "load_packed_tolerant",
    "save_packed",
    "sniff_bytes",
    "sniff_path",
]
