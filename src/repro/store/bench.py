"""``repro bench store``: packed-store size and speed measurements.

Produces ``BENCH_store.json`` with three sections:

* **size** — bytes on the wire for the same recording as JSONL and as
  packed VTRC, plus the ratio.  The acceptance floor is 3.0x: packed
  must stay at least three times smaller than JSONL.
* **encode** / **decode** — best-of-N events/sec for each format's
  writer and reader over an in-memory stream (no disk noise).  The
  acceptance floor is a 1.5x decode speedup of packed over JSONL.
* **seek** — how long ``seek(seq)`` to the middle of the recording
  takes versus decoding everything up to that point, and the fraction
  of blocks it touched.

``--check-against BASELINE.json`` additionally gates on the committed
baseline: an events/sec regression beyond ``--threshold`` (default
30%) fails, and the 3.0x / 1.5x floors are always enforced whether or
not a baseline is given.

``--analyze`` measures the *analysis* plane instead (writes
``BENCH_analyze.json``): the same packed recording checked by
``VelodromeOptimized`` with block-summary fast-forward on versus off,
over two workload shapes — **sparse** (long thread-local stretches,
where most blocks fold: floor is a 2.0x end-to-end speedup) and
**dense** (per-op thread interleave, where no block is foldable and
the summary offers must cost < 5%).

Run as a script::

    python -m repro.store.bench [--quick] [--output FILE]
        [--check-against FILE] [--threshold F] [--analyze]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
import zlib
from typing import Callable, Optional, Sequence

#: Acceptance floors from the issue: packed must be at least this many
#: times smaller than JSONL, and decode at least this many times
#: faster.  These are absolute gates, independent of any baseline.
SIZE_RATIO_FLOOR = 3.0
DECODE_SPEEDUP_FLOOR = 1.5

#: Fast-forward floors: on the sparse (mostly-foldable) workload,
#: checking with summaries must be at least this much faster
#: end-to-end than full decode + op-by-op replay ...
ANALYZE_SPARSE_FLOOR = 2.0
#: ... and on the dense (never-foldable) workload the declined
#: summary offers must not cost more than 5% throughput.
ANALYZE_DENSE_RATIO_FLOOR = 0.95

_STAGE_SEED = 7
_STAGE_COPIES = 40
_STAGE_COPIES_QUICK = 10


def _best_of(repeats: int, thunk: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_ops(quick: bool) -> list:
    from repro.fuzz.engine import trace_for_seed

    copies = _STAGE_COPIES_QUICK if quick else _STAGE_COPIES
    return list(trace_for_seed(_STAGE_SEED)) * copies


def measure_store(quick: bool = False) -> dict:
    """The full measurement; returns the ``BENCH_store.json`` dict."""
    from repro.events.serialize import dump_jsonl, load_jsonl
    from repro.store.reader import PackedTraceReader
    from repro.store.writer import PackedTraceWriter

    repeats = 3 if quick else 7
    ops = _bench_ops(quick)
    events = len(ops)

    buffer = io.StringIO()
    dump_jsonl(ops, buffer)
    jsonl_text = buffer.getvalue()
    jsonl_bytes = len(jsonl_text.encode("utf-8"))

    def pack() -> bytes:
        sink = io.BytesIO()
        with PackedTraceWriter(sink) as writer:
            writer.write_all(ops)
        return sink.getvalue()

    packed_blob = pack()
    packed_bytes = len(packed_blob)

    def decode_packed():
        with PackedTraceReader(io.BytesIO(packed_blob)) as reader:
            return reader.read()

    jsonl_encode = _best_of(repeats, lambda: dump_jsonl(ops, io.StringIO()))
    jsonl_decode = _best_of(
        repeats, lambda: load_jsonl(io.StringIO(jsonl_text))
    )
    packed_encode = _best_of(repeats, pack)
    packed_decode = _best_of(repeats, decode_packed)

    # Seek to the midpoint: only the containing block onward is read.
    mid = events // 2
    with PackedTraceReader(io.BytesIO(packed_blob)) as reader:
        block = reader.block_for_seq(mid)
        blocks_touched = len(reader.blocks) - block.number

        def seek_tail():
            for _op in reader.seek(mid):
                pass

        seek_seconds = _best_of(repeats, seek_tail)

    def rate(elapsed: float, n: int = events) -> float:
        return round(n / elapsed, 1) if elapsed else 0.0

    return {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "zlib": zlib.ZLIB_VERSION,
        "events": events,
        "size": {
            "jsonl_bytes": jsonl_bytes,
            "packed_bytes": packed_bytes,
            "ratio": round(jsonl_bytes / packed_bytes, 2),
            "floor": SIZE_RATIO_FLOOR,
        },
        "encode": {
            "jsonl": {
                "best_seconds": round(jsonl_encode, 6),
                "events_per_sec": rate(jsonl_encode),
            },
            "packed": {
                "best_seconds": round(packed_encode, 6),
                "events_per_sec": rate(packed_encode),
            },
        },
        "decode": {
            "jsonl": {
                "best_seconds": round(jsonl_decode, 6),
                "events_per_sec": rate(jsonl_decode),
            },
            "packed": {
                "best_seconds": round(packed_decode, 6),
                "events_per_sec": rate(packed_decode),
            },
            "speedup": round(jsonl_decode / packed_decode, 2)
            if packed_decode else 0.0,
            "floor": DECODE_SPEEDUP_FLOOR,
        },
        "seek": {
            "position": mid,
            "blocks_touched": blocks_touched,
            "blocks_total_fraction": round(
                blocks_touched / max(1, blocks_touched + block.number), 3
            ),
            "best_seconds": round(seek_seconds, 6),
            "events_per_sec": rate(seek_seconds, events - mid),
        },
    }


def _analyze_ops_sparse(quick: bool) -> list:
    """Thread-local stretches aligned to whole blocks (512 ops).

    Each thread works its own variables and lock for exactly two
    blocks before yielding, so nearly every block is single-tid and
    lock-release-only — the foldable shape the summaries certify.
    """
    from repro.events.operations import Operation, OpKind

    turns = 8 if quick else 24
    ops = []
    for turn in range(turns):
        tid = turn % 4
        for i in range(1024):
            phase = i % 128
            if phase == 126:
                ops.append(Operation(OpKind.ACQUIRE, tid, f"m{tid}"))
            elif phase == 127:
                ops.append(Operation(OpKind.RELEASE, tid, f"m{tid}"))
            elif i % 4 == 3:
                ops.append(Operation(OpKind.WRITE, tid, f"x{tid}_{i % 8}"))
            else:
                ops.append(Operation(OpKind.READ, tid, f"x{tid}_{i % 8}"))
    return ops


def _analyze_ops_dense(quick: bool) -> list:
    """Per-op thread interleave: no block is ever single-tid."""
    from repro.events.operations import Operation, OpKind

    count = 8 * 1024 if quick else 24 * 1024
    ops = []
    for i in range(count):
        tid = i % 4
        var = f"s{i % 8}"
        if i % 4 == 3:
            ops.append(Operation(OpKind.WRITE, tid, var))
        else:
            ops.append(Operation(OpKind.READ, tid, var))
    return ops


def _measure_checked(blob: bytes, fast_forward: bool, repeats: int):
    """Best-of-N wall time checking ``blob`` with VelodromeOptimized.

    Returns ``(best_seconds, blocks_in, blocks_fast_forwarded)`` from
    the fastest run.  Both modes pay the same reader-open cost (index
    and summary parse); only the per-block treatment differs.
    """
    from repro.core.optimized import VelodromeOptimized
    from repro.pipeline.core import Pipeline
    from repro.pipeline.source import PackedTraceSource

    best = float("inf")
    blocks = fast = 0
    for _ in range(repeats):
        pipeline = Pipeline([VelodromeOptimized()])
        source = PackedTraceSource(io.BytesIO(blob))
        started = time.perf_counter()
        if fast_forward:
            source.run_blocks(pipeline.process_block)
        else:
            source.run(pipeline.process)
        pipeline.finish()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            metrics = pipeline.metrics()
            blocks = metrics.blocks_in
            fast = metrics.blocks_fast_forwarded
    return best, blocks, fast


def measure_analyze(quick: bool = False) -> dict:
    """The fast-forward measurement; returns ``BENCH_analyze.json``."""
    from repro.store.writer import PackedTraceWriter

    repeats = 3 if quick else 5
    report: dict = {"schema": 1, "cpu_count": os.cpu_count(),
                    "quick": quick}
    for shape, make_ops in (
        ("sparse", _analyze_ops_sparse),
        ("dense", _analyze_ops_dense),
    ):
        ops = make_ops(quick)
        sink = io.BytesIO()
        with PackedTraceWriter(sink) as writer:
            writer.write_all(ops)
        blob = sink.getvalue()
        on, blocks, fast = _measure_checked(blob, True, repeats)
        off, _, _ = _measure_checked(blob, False, repeats)
        speedup = round(off / on, 2) if on else 0.0
        report[shape] = {
            "events": len(ops),
            "blocks": blocks,
            "blocks_fast_forwarded": fast,
            "ff_on": {
                "best_seconds": round(on, 6),
                "events_per_sec": round(len(ops) / on, 1) if on else 0.0,
            },
            "ff_off": {
                "best_seconds": round(off, 6),
                "events_per_sec": round(len(ops) / off, 1) if off else 0.0,
            },
            "speedup": speedup,
            "floor": (
                ANALYZE_SPARSE_FLOOR if shape == "sparse"
                else ANALYZE_DENSE_RATIO_FLOOR
            ),
        }
    return report


def check_analyze_floors(report: dict) -> list[str]:
    """Fast-forward floor violations (empty = pass)."""
    problems = []
    sparse = report["sparse"]["speedup"]
    if sparse < ANALYZE_SPARSE_FLOOR:
        problems.append(
            f"analyze.sparse: fast-forward is only {sparse:.2f}x faster "
            f"than full decode (floor {ANALYZE_SPARSE_FLOOR:.1f}x)"
        )
    if report["sparse"]["blocks_fast_forwarded"] == 0:
        problems.append(
            "analyze.sparse: no block was fast-forwarded — the "
            "workload no longer exercises the fast path"
        )
    dense = report["dense"]["speedup"]
    if dense < ANALYZE_DENSE_RATIO_FLOOR:
        problems.append(
            f"analyze.dense: declined summary offers cost "
            f"{1 - dense:.0%} throughput "
            f"(allowed {1 - ANALYZE_DENSE_RATIO_FLOOR:.0%})"
        )
    return problems


def compare_analyze_to_baseline(
    current: dict, baseline: dict, threshold: float = 0.30
) -> list[str]:
    """Events/sec regressions vs a committed ``BENCH_analyze.json``."""
    regressions = []
    for shape in ("sparse", "dense"):
        for mode in ("ff_on", "ff_off"):
            new = current.get(shape, {}).get(mode)
            old = baseline.get(shape, {}).get(mode)
            if not new or not old:
                continue
            new_rate = new.get("events_per_sec")
            old_rate = old.get("events_per_sec")
            if not new_rate or not old_rate:
                continue
            if new_rate < old_rate * (1.0 - threshold):
                regressions.append(
                    f"analyze.{shape}.{mode}: {new_rate:,.0f} ev/s is "
                    f"{1 - new_rate / old_rate:.0%} below baseline "
                    f"{old_rate:,.0f} ev/s (allowed: {threshold:.0%})"
                )
    return regressions


def check_floors(report: dict) -> list[str]:
    """Violations of the absolute acceptance floors (empty = pass)."""
    problems = []
    ratio = report["size"]["ratio"]
    if ratio < SIZE_RATIO_FLOOR:
        problems.append(
            f"size: packed is only {ratio:.2f}x smaller than JSONL "
            f"(floor {SIZE_RATIO_FLOOR:.1f}x)"
        )
    speedup = report["decode"]["speedup"]
    if speedup < DECODE_SPEEDUP_FLOOR:
        problems.append(
            f"decode: packed is only {speedup:.2f}x faster than JSONL "
            f"(floor {DECODE_SPEEDUP_FLOOR:.1f}x)"
        )
    return problems


def compare_to_baseline(
    current: dict, baseline: dict, threshold: float = 0.30
) -> list[str]:
    """Events/sec regressions beyond ``threshold`` vs the baseline.

    Only figures present in both reports are compared; faster than
    baseline is never a failure.
    """
    regressions = []
    for section in ("encode", "decode"):
        for fmt in ("jsonl", "packed"):
            new = current.get(section, {}).get(fmt)
            old = baseline.get(section, {}).get(fmt)
            if not new or not old:
                continue
            new_rate = new.get("events_per_sec")
            old_rate = old.get("events_per_sec")
            if not new_rate or not old_rate:
                continue
            floor = old_rate * (1.0 - threshold)
            if new_rate < floor:
                regressions.append(
                    f"{section}.{fmt}: {new_rate:,.0f} ev/s is "
                    f"{1 - new_rate / old_rate:.0%} below baseline "
                    f"{old_rate:,.0f} ev/s (allowed: {threshold:.0%})"
                )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller trace (the CI perf-smoke shape)")
    parser.add_argument("--analyze", action="store_true",
                        help="measure block-summary fast-forward vs "
                             "full decode (writes BENCH_analyze.json)")
    parser.add_argument("--output", default=None,
                        help="where to write the JSON report (default "
                             "BENCH_store.json, or BENCH_analyze.json "
                             "with --analyze)")
    parser.add_argument("--check-against", metavar="FILE", default=None,
                        help="committed baseline to gate against")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed events/sec regression vs the "
                             "baseline (default 0.30)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = (
            "BENCH_analyze.json" if args.analyze else "BENCH_store.json"
        )

    if args.analyze:
        return _main_analyze(args)

    report = measure_store(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")

    size = report["size"]
    print(f"size   : {size['jsonl_bytes']:,} B jsonl -> "
          f"{size['packed_bytes']:,} B packed ({size['ratio']}x smaller)")
    for section in ("encode", "decode"):
        entry = report[section]
        print(f"{section} : jsonl "
              f"{entry['jsonl']['events_per_sec']:>12,.0f} ev/s | packed "
              f"{entry['packed']['events_per_sec']:>12,.0f} ev/s")
    print(f"decode speedup: {report['decode']['speedup']}x "
          f"(floor {DECODE_SPEEDUP_FLOOR}x)")
    seek = report["seek"]
    print(f"seek   : position {seek['position']} touched "
          f"{seek['blocks_touched']} block(s), "
          f"{seek['events_per_sec']:,.0f} ev/s")
    print(f"wrote {args.output}")

    problems = check_floors(report)
    if args.check_against:
        with open(args.check_against, encoding="utf-8") as stream:
            baseline = json.load(stream)
        problems.extend(
            compare_to_baseline(report, baseline, threshold=args.threshold)
        )
    if problems:
        print("STORE BENCH FAILURE:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)
    if args.check_against:
        print(f"no regression vs {args.check_against} "
              f"(threshold {args.threshold:.0%}; floors "
              f"{SIZE_RATIO_FLOOR}x size, {DECODE_SPEEDUP_FLOOR}x decode)")


def _main_analyze(args) -> None:
    """The ``--analyze`` lane: measure, print, gate, write."""
    report = measure_analyze(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")

    for shape in ("sparse", "dense"):
        entry = report[shape]
        print(f"{shape:6s} : ff-on "
              f"{entry['ff_on']['events_per_sec']:>12,.0f} ev/s | "
              f"ff-off {entry['ff_off']['events_per_sec']:>12,.0f} ev/s "
              f"({entry['speedup']}x, "
              f"{entry['blocks_fast_forwarded']}/{entry['blocks']} "
              f"blocks folded)")
    print(f"wrote {args.output}")

    problems = check_analyze_floors(report)
    if args.check_against:
        with open(args.check_against, encoding="utf-8") as stream:
            baseline = json.load(stream)
        problems.extend(compare_analyze_to_baseline(
            report, baseline, threshold=args.threshold
        ))
    if problems:
        print("ANALYZE BENCH FAILURE:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)
    if args.check_against:
        print(f"no regression vs {args.check_against} "
              f"(threshold {args.threshold:.0%}; floors "
              f"{ANALYZE_SPARSE_FLOOR}x sparse, "
              f"{ANALYZE_DENSE_RATIO_FLOOR} dense ratio)")


if __name__ == "__main__":
    main()
