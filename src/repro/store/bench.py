"""``repro bench store``: packed-store size and speed measurements.

Produces ``BENCH_store.json`` with three sections:

* **size** — bytes on the wire for the same recording as JSONL and as
  packed VTRC, plus the ratio.  The acceptance floor is 3.0x: packed
  must stay at least three times smaller than JSONL.
* **encode** / **decode** — best-of-N events/sec for each format's
  writer and reader over an in-memory stream (no disk noise).  The
  acceptance floor is a 1.5x decode speedup of packed over JSONL.
* **seek** — how long ``seek(seq)`` to the middle of the recording
  takes versus decoding everything up to that point, and the fraction
  of blocks it touched.

``--check-against BASELINE.json`` additionally gates on the committed
baseline: an events/sec regression beyond ``--threshold`` (default
30%) fails, and the 3.0x / 1.5x floors are always enforced whether or
not a baseline is given.

Run as a script::

    python -m repro.store.bench [--quick] [--output FILE]
        [--check-against FILE] [--threshold F]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
import zlib
from typing import Callable, Optional, Sequence

#: Acceptance floors from the issue: packed must be at least this many
#: times smaller than JSONL, and decode at least this many times
#: faster.  These are absolute gates, independent of any baseline.
SIZE_RATIO_FLOOR = 3.0
DECODE_SPEEDUP_FLOOR = 1.5

_STAGE_SEED = 7
_STAGE_COPIES = 40
_STAGE_COPIES_QUICK = 10


def _best_of(repeats: int, thunk: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_ops(quick: bool) -> list:
    from repro.fuzz.engine import trace_for_seed

    copies = _STAGE_COPIES_QUICK if quick else _STAGE_COPIES
    return list(trace_for_seed(_STAGE_SEED)) * copies


def measure_store(quick: bool = False) -> dict:
    """The full measurement; returns the ``BENCH_store.json`` dict."""
    from repro.events.serialize import dump_jsonl, load_jsonl
    from repro.store.reader import PackedTraceReader
    from repro.store.writer import PackedTraceWriter

    repeats = 3 if quick else 7
    ops = _bench_ops(quick)
    events = len(ops)

    buffer = io.StringIO()
    dump_jsonl(ops, buffer)
    jsonl_text = buffer.getvalue()
    jsonl_bytes = len(jsonl_text.encode("utf-8"))

    def pack() -> bytes:
        sink = io.BytesIO()
        with PackedTraceWriter(sink) as writer:
            writer.write_all(ops)
        return sink.getvalue()

    packed_blob = pack()
    packed_bytes = len(packed_blob)

    def decode_packed():
        with PackedTraceReader(io.BytesIO(packed_blob)) as reader:
            return reader.read()

    jsonl_encode = _best_of(repeats, lambda: dump_jsonl(ops, io.StringIO()))
    jsonl_decode = _best_of(
        repeats, lambda: load_jsonl(io.StringIO(jsonl_text))
    )
    packed_encode = _best_of(repeats, pack)
    packed_decode = _best_of(repeats, decode_packed)

    # Seek to the midpoint: only the containing block onward is read.
    mid = events // 2
    with PackedTraceReader(io.BytesIO(packed_blob)) as reader:
        block = reader.block_for_seq(mid)
        blocks_touched = len(reader.blocks) - block.number

        def seek_tail():
            for _op in reader.seek(mid):
                pass

        seek_seconds = _best_of(repeats, seek_tail)

    def rate(elapsed: float, n: int = events) -> float:
        return round(n / elapsed, 1) if elapsed else 0.0

    return {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "zlib": zlib.ZLIB_VERSION,
        "events": events,
        "size": {
            "jsonl_bytes": jsonl_bytes,
            "packed_bytes": packed_bytes,
            "ratio": round(jsonl_bytes / packed_bytes, 2),
            "floor": SIZE_RATIO_FLOOR,
        },
        "encode": {
            "jsonl": {
                "best_seconds": round(jsonl_encode, 6),
                "events_per_sec": rate(jsonl_encode),
            },
            "packed": {
                "best_seconds": round(packed_encode, 6),
                "events_per_sec": rate(packed_encode),
            },
        },
        "decode": {
            "jsonl": {
                "best_seconds": round(jsonl_decode, 6),
                "events_per_sec": rate(jsonl_decode),
            },
            "packed": {
                "best_seconds": round(packed_decode, 6),
                "events_per_sec": rate(packed_decode),
            },
            "speedup": round(jsonl_decode / packed_decode, 2)
            if packed_decode else 0.0,
            "floor": DECODE_SPEEDUP_FLOOR,
        },
        "seek": {
            "position": mid,
            "blocks_touched": blocks_touched,
            "blocks_total_fraction": round(
                blocks_touched / max(1, blocks_touched + block.number), 3
            ),
            "best_seconds": round(seek_seconds, 6),
            "events_per_sec": rate(seek_seconds, events - mid),
        },
    }


def check_floors(report: dict) -> list[str]:
    """Violations of the absolute acceptance floors (empty = pass)."""
    problems = []
    ratio = report["size"]["ratio"]
    if ratio < SIZE_RATIO_FLOOR:
        problems.append(
            f"size: packed is only {ratio:.2f}x smaller than JSONL "
            f"(floor {SIZE_RATIO_FLOOR:.1f}x)"
        )
    speedup = report["decode"]["speedup"]
    if speedup < DECODE_SPEEDUP_FLOOR:
        problems.append(
            f"decode: packed is only {speedup:.2f}x faster than JSONL "
            f"(floor {DECODE_SPEEDUP_FLOOR:.1f}x)"
        )
    return problems


def compare_to_baseline(
    current: dict, baseline: dict, threshold: float = 0.30
) -> list[str]:
    """Events/sec regressions beyond ``threshold`` vs the baseline.

    Only figures present in both reports are compared; faster than
    baseline is never a failure.
    """
    regressions = []
    for section in ("encode", "decode"):
        for fmt in ("jsonl", "packed"):
            new = current.get(section, {}).get(fmt)
            old = baseline.get(section, {}).get(fmt)
            if not new or not old:
                continue
            new_rate = new.get("events_per_sec")
            old_rate = old.get("events_per_sec")
            if not new_rate or not old_rate:
                continue
            floor = old_rate * (1.0 - threshold)
            if new_rate < floor:
                regressions.append(
                    f"{section}.{fmt}: {new_rate:,.0f} ev/s is "
                    f"{1 - new_rate / old_rate:.0%} below baseline "
                    f"{old_rate:,.0f} ev/s (allowed: {threshold:.0%})"
                )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller trace (the CI perf-smoke shape)")
    parser.add_argument("--output", default="BENCH_store.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-against", metavar="FILE", default=None,
                        help="committed baseline to gate against")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed events/sec regression vs the "
                             "baseline (default 0.30)")
    args = parser.parse_args(argv)

    report = measure_store(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")

    size = report["size"]
    print(f"size   : {size['jsonl_bytes']:,} B jsonl -> "
          f"{size['packed_bytes']:,} B packed ({size['ratio']}x smaller)")
    for section in ("encode", "decode"):
        entry = report[section]
        print(f"{section} : jsonl "
              f"{entry['jsonl']['events_per_sec']:>12,.0f} ev/s | packed "
              f"{entry['packed']['events_per_sec']:>12,.0f} ev/s")
    print(f"decode speedup: {report['decode']['speedup']}x "
          f"(floor {DECODE_SPEEDUP_FLOOR}x)")
    seek = report["seek"]
    print(f"seek   : position {seek['position']} touched "
          f"{seek['blocks_touched']} block(s), "
          f"{seek['events_per_sec']:,.0f} ev/s")
    print(f"wrote {args.output}")

    problems = check_floors(report)
    if args.check_against:
        with open(args.check_against, encoding="utf-8") as stream:
            baseline = json.load(stream)
        problems.extend(
            compare_to_baseline(report, baseline, threshold=args.threshold)
        )
    if problems:
        print("STORE BENCH FAILURE:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)
    if args.check_against:
        print(f"no regression vs {args.check_against} "
              f"(threshold {args.threshold:.0%}; floors "
              f"{SIZE_RATIO_FLOOR}x size, {DECODE_SPEEDUP_FLOOR}x decode)")


if __name__ == "__main__":
    main()
