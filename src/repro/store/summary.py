"""Per-block summaries: what a VTRC block touches, without decoding it.

A :class:`BlockSummary` is the wire-level digest a v2 writer computes
while flushing each block — the tid set, the op-kind histogram, and a
per-target footprint (which variables/locks the block reads, writes,
acquires, releases, in first-touch order).  Readers of v2 files get
every summary from the trailing index for free; for v1 files the same
record is reconstructed lazily from a full decode of the block
(:meth:`repro.store.reader.PackedTraceReader.block_summary`).

Summaries exist so an analysis can *fast-forward* a block: a backend
that can prove from the footprint alone that replaying the block op by
op would only shuffle steps along one already-known transaction node
may apply the whole block as a single batched state update
(:meth:`repro.core.backend.AnalysisBackend.apply_block_summary`).  To
make that exact — bit-identical state, not merely equal verdicts — a
*foldable* summary also carries the result of a tiny abstract replay
run at write time:

* every step a merged outside-transaction run produces lives on the
  thread's current node ``N`` at some timestamp ``L(t).timestamp + k``;
* the integer machine below tracks only those ``k`` offsets: a release
  advances ``k`` by one, a write jumps ``k`` back to the step of the
  variable's latest in-block read (else its latest in-block write),
  reads and acquires leave ``k`` alone;
* the summary records, per target, the final ``k`` of its reader /
  writer / unlocker entry plus the in-block offset of its first touch
  (weak-map insertion order is part of backend state).

A summary is ``foldable`` only for single-tid blocks containing no
``begin``/``end`` markers; everything else still gets a footprint and
histogram (``repro trace info`` renders them) with ``foldable=False``.

The histogram is ordered exactly like the on-disk op-kind codes
(:data:`repro.store.codec.KIND_CODES`); ``tests/test_fastforward.py``
pins the alignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.events.operations import Operation, OpKind
from repro.store.format import (
    StoreError,
    read_varint,
    unzigzag,
    write_varint,
    zigzag,
)

#: Histogram slot order; must match ``repro.store.codec.KIND_CODES``.
HISTOGRAM_KINDS: tuple[OpKind, ...] = (
    OpKind.READ,
    OpKind.WRITE,
    OpKind.ACQUIRE,
    OpKind.RELEASE,
    OpKind.BEGIN,
    OpKind.END,
)
_KIND_SLOT = {kind: slot for slot, kind in enumerate(HISTOGRAM_KINDS)}

_FLAG_FOLDABLE = 0x01

_FP_READ = 0x01
_FP_WRITTEN = 0x02
_FP_ACQUIRED = 0x04
_FP_RELEASED = 0x08
_FP_FIRST_ACCESS_WRITE = 0x10


@dataclass(frozen=True, slots=True)
class TargetFootprint:
    """One variable or lock touched by a block.

    The ``first_*`` fields are in-block operation offsets (position of
    the first read / write / release of the target inside the block);
    the ``*_k`` fields are the timestamp offsets the fold machine
    computed (see module docstring).  ``-1`` marks an absent offset.
    """

    name: str
    read: bool = False
    written: bool = False
    acquired: bool = False
    released: bool = False
    #: For variables: the first access was a write (no prior in-block
    #: read).  Folding such a block needs the pre-block reader/writer
    #: entries to be provably inert; see ``apply_block_summary``.
    first_access_write: bool = False
    first_read: int = -1
    read_k: int = 0
    first_write: int = -1
    write_k: int = 0
    #: Fold-machine ``k`` just before the first write of a
    #: first-access-write variable (the merge at that write picks the
    #: thread's last step only if nothing older is live).
    write_pre_k: int = 0
    first_release: int = -1
    release_k: int = 0

    @property
    def is_variable(self) -> bool:
        return self.read or self.written

    @property
    def is_lock(self) -> bool:
        return self.acquired or self.released


@dataclass(frozen=True, slots=True)
class BlockSummary:
    """Digest of one packed block; see the module docstring."""

    number: int
    first_seq: int
    op_count: int
    tids: tuple[int, ...]
    #: Op-kind counts in :data:`HISTOGRAM_KINDS` order.
    histogram: tuple[int, int, int, int, int, int]
    #: True iff the fold machine ran and its ``k`` offsets are valid.
    foldable: bool
    #: Final / maximal timestamp offset of the thread's last step.
    last_k: int = 0
    max_k: int = 0
    targets: tuple[TargetFootprint, ...] = ()

    @property
    def last_seq(self) -> int:
        return self.first_seq + self.op_count - 1

    @property
    def reads(self) -> int:
        return self.histogram[0]

    @property
    def writes(self) -> int:
        return self.histogram[1]

    @property
    def acquires(self) -> int:
        return self.histogram[2]

    @property
    def releases(self) -> int:
        return self.histogram[3]

    @property
    def begins(self) -> int:
        return self.histogram[4]

    @property
    def ends(self) -> int:
        return self.histogram[5]

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.targets if t.is_variable)

    @property
    def locks(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.targets if t.is_lock)


class _Footprint:
    """Mutable builder for one :class:`TargetFootprint`."""

    __slots__ = (
        "name", "read", "written", "acquired", "released",
        "first_access_write", "first_read", "read_k", "first_write",
        "write_k", "write_pre_k", "first_release", "release_k",
    )

    def __init__(self, name: str):
        self.name = name
        self.read = self.written = self.acquired = self.released = False
        self.first_access_write = False
        self.first_read = self.first_write = self.first_release = -1
        self.read_k = self.write_k = self.write_pre_k = self.release_k = 0

    def freeze(self) -> TargetFootprint:
        return TargetFootprint(
            name=self.name,
            read=self.read,
            written=self.written,
            acquired=self.acquired,
            released=self.released,
            first_access_write=self.first_access_write,
            first_read=self.first_read,
            read_k=self.read_k,
            first_write=self.first_write,
            write_k=self.write_k,
            write_pre_k=self.write_pre_k,
            first_release=self.first_release,
            release_k=self.release_k,
        )


def summarize_ops(
    ops: Sequence[Operation], first_seq: int, number: int = 0
) -> BlockSummary:
    """Compute the summary a v2 writer stores for this block.

    This is the single source of truth: the writer calls it at flush
    time and the reader calls it to reconstruct summaries for v1 files,
    so both paths agree byte for byte.
    """
    histogram = [0, 0, 0, 0, 0, 0]
    tids: dict[int, None] = {}
    entries: dict[str, _Footprint] = {}
    for offset, op in enumerate(ops):
        histogram[_KIND_SLOT[op.kind]] += 1
        tids[op.tid] = None
        target = op.target
        if target is None:
            continue
        fp = entries.get(target)
        if fp is None:
            fp = entries[target] = _Footprint(target)
        kind = op.kind
        if kind is OpKind.READ:
            if not fp.read:
                fp.read = True
                fp.first_read = offset
        elif kind is OpKind.WRITE:
            if not fp.written:
                fp.written = True
                fp.first_write = offset
                fp.first_access_write = not fp.read
        elif kind is OpKind.ACQUIRE:
            fp.acquired = True
        elif kind is OpKind.RELEASE:
            fp.released = True
            if fp.first_release < 0:
                fp.first_release = offset

    foldable = (
        len(ops) > 0
        and len(tids) == 1
        and histogram[4] == 0  # begin
        and histogram[5] == 0  # end
    )
    last_k = max_k = 0
    if foldable:
        # The fold machine: replay the block over timestamp offsets
        # only.  Mirrors the merged outside-transaction rules of
        # repro.core.optimized (reads/acquires merge to the last step,
        # releases advance it, writes jump it back to the variable's
        # latest in-block reader/writer step).
        read_in_block: set[str] = set()
        written_in_block: set[str] = set()
        for op in ops:
            kind = op.kind
            fp = entries[op.target]
            if kind is OpKind.READ:
                fp.read_k = last_k
                read_in_block.add(op.target)
            elif kind is OpKind.WRITE:
                if op.target in read_in_block:
                    last_k = fp.read_k
                elif op.target in written_in_block:
                    last_k = fp.write_k
                else:
                    # First in-block touch of a first-access-write
                    # variable: the merge keeps the last step.
                    fp.write_pre_k = last_k
                fp.write_k = last_k
                written_in_block.add(op.target)
            elif kind is OpKind.RELEASE:
                last_k += 1
                if last_k > max_k:
                    max_k = last_k
                fp.release_k = last_k
            # ACQUIRE merges into the last step; nothing moves.
    return BlockSummary(
        number=number,
        first_seq=first_seq,
        op_count=len(ops),
        tids=tuple(sorted(tids)),
        histogram=tuple(histogram),  # type: ignore[arg-type]
        foldable=foldable,
        last_k=last_k,
        max_k=max_k,
        targets=tuple(fp.freeze() for fp in entries.values()),
    )


# ------------------------------------------------------------- wire codec
# Summaries live in the v2 trailing index, after the v1-compatible
# [comp_len, op_count, crc] triplets: a file-level interned string
# table for target names, then one record per block.  ``number``,
# ``first_seq`` and ``op_count`` are not re-encoded — the reader
# already knows them from the triplets.

def encode_summary(
    out: bytearray, summary: BlockSummary, intern: Callable[[str], int]
) -> None:
    """Append one summary record to the index buffer."""
    out.append(_FLAG_FOLDABLE if summary.foldable else 0)
    write_varint(out, len(summary.tids))
    previous = 0
    for tid in summary.tids:
        write_varint(out, zigzag(tid - previous))
        previous = tid
    for count in summary.histogram:
        write_varint(out, count)
    write_varint(out, summary.last_k)
    write_varint(out, summary.max_k)
    write_varint(out, len(summary.targets))
    for fp in summary.targets:
        write_varint(out, intern(fp.name))
        flags = (
            (_FP_READ if fp.read else 0)
            | (_FP_WRITTEN if fp.written else 0)
            | (_FP_ACQUIRED if fp.acquired else 0)
            | (_FP_RELEASED if fp.released else 0)
            | (_FP_FIRST_ACCESS_WRITE if fp.first_access_write else 0)
        )
        out.append(flags)
        if fp.read:
            write_varint(out, fp.first_read)
            write_varint(out, fp.read_k)
        if fp.written:
            write_varint(out, fp.first_write)
            write_varint(out, fp.write_k)
            write_varint(out, fp.write_pre_k)
        if fp.released:
            write_varint(out, fp.first_release)
            write_varint(out, fp.release_k)


def decode_summary(
    data: bytes,
    pos: int,
    strings: Sequence[str],
    number: int,
    first_seq: int,
    op_count: int,
) -> tuple[BlockSummary, int]:
    """Parse one summary record; returns (summary, next_pos)."""
    if pos >= len(data):
        raise StoreError("truncated block summary")
    flags = data[pos]
    pos += 1
    n_tids, pos = read_varint(data, pos)
    tids = []
    tid = 0
    for _ in range(n_tids):
        delta, pos = read_varint(data, pos)
        tid += unzigzag(delta)
        tids.append(tid)
    histogram = []
    for _ in range(6):
        count, pos = read_varint(data, pos)
        histogram.append(count)
    last_k, pos = read_varint(data, pos)
    max_k, pos = read_varint(data, pos)
    n_targets, pos = read_varint(data, pos)
    targets = []
    for _ in range(n_targets):
        ref, pos = read_varint(data, pos)
        if not 1 <= ref <= len(strings):
            raise StoreError(
                f"summary string reference {ref} out of range"
            )
        if pos >= len(data):
            raise StoreError("truncated footprint flags")
        fp_flags = data[pos]
        pos += 1
        first_read, read_k = -1, 0
        first_write, write_k, write_pre_k = -1, 0, 0
        first_release, release_k = -1, 0
        if fp_flags & _FP_READ:
            first_read, pos = read_varint(data, pos)
            read_k, pos = read_varint(data, pos)
        if fp_flags & _FP_WRITTEN:
            first_write, pos = read_varint(data, pos)
            write_k, pos = read_varint(data, pos)
            write_pre_k, pos = read_varint(data, pos)
        if fp_flags & _FP_RELEASED:
            first_release, pos = read_varint(data, pos)
            release_k, pos = read_varint(data, pos)
        targets.append(TargetFootprint(
            name=strings[ref - 1],
            read=bool(fp_flags & _FP_READ),
            written=bool(fp_flags & _FP_WRITTEN),
            acquired=bool(fp_flags & _FP_ACQUIRED),
            released=bool(fp_flags & _FP_RELEASED),
            first_access_write=bool(fp_flags & _FP_FIRST_ACCESS_WRITE),
            first_read=first_read,
            read_k=read_k,
            first_write=first_write,
            write_k=write_k,
            write_pre_k=write_pre_k,
            first_release=first_release,
            release_k=release_k,
        ))
    return BlockSummary(
        number=number,
        first_seq=first_seq,
        op_count=op_count,
        tids=tuple(tids),
        histogram=tuple(histogram),  # type: ignore[arg-type]
        foldable=bool(flags & _FLAG_FOLDABLE),
        last_k=last_k,
        max_k=max_k,
        targets=tuple(targets),
    ), pos
