"""Trace format sniffing: magic bytes, never file extensions.

Every reader entry point (``load_trace``, ``TraceSource.from_path``,
``repro check``, ``fuzz --replay``, ``--resume``) accepts packed,
JSONL, and DSL recordings through one detector:

* a file whose first four bytes are the ``VTRC`` magic is a packed
  trace, whatever it is named;
* a file whose first non-whitespace byte is ``{`` is JSONL (every
  record the serializer has ever written is a JSON object);
* a file whose first token matches the DSL's ``tid:kind`` shape is
  DSL text;
* anything else — including an empty or whitespace-only file — raises
  :class:`UnknownTraceFormat`: a renamed database file or a truncated
  copy must fail loudly, not parse as a zero-op trace.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from repro.store.format import MAGIC

PathLike = Union[str, Path]

FORMAT_PACKED = "vtrc"
FORMAT_JSONL = "jsonl"
FORMAT_DSL = "dsl"

#: How many leading bytes the detector needs at most.
SNIFF_BYTES = 64

_DSL_TOKEN = re.compile(rb"^\d+:[a-z]+")


class UnknownTraceFormat(ValueError):
    """The file matches no trace format this build knows."""


def sniff_bytes(prefix: bytes) -> str:
    """Classify a file by its leading bytes.

    Returns one of :data:`FORMAT_PACKED`, :data:`FORMAT_JSONL`,
    :data:`FORMAT_DSL`; raises :class:`UnknownTraceFormat` otherwise.
    """
    if prefix.startswith(MAGIC):
        return FORMAT_PACKED
    stripped = prefix.lstrip(b" \t\r\n;")
    if not stripped and not prefix.strip(b" \t\r\n;"):
        # An empty (or whitespace-only) file carries no format
        # evidence at all.  Treating it as an empty trace once hid a
        # truncated-to-zero recording behind a clean "no warnings".
        raise UnknownTraceFormat(
            "empty file: no trace content to sniff (an intentionally "
            "empty recording must still carry its format, e.g. a "
            "packed header or a JSONL/DSL comment line)"
        )
    if stripped.startswith(b"{"):
        return FORMAT_JSONL
    if _DSL_TOKEN.match(stripped):
        return FORMAT_DSL
    head = prefix[:16]
    raise UnknownTraceFormat(
        f"unrecognized trace format (leading bytes {head!r}): expected "
        f"the {MAGIC!r} packed-trace magic, a JSONL record, or a "
        f"tid:kind DSL token"
    )


def sniff_path(path: PathLike) -> str:
    """Classify the trace file at ``path`` by content."""
    with open(path, "rb") as stream:
        return sniff_bytes(stream.read(SNIFF_BYTES))
