"""Parallel decode of packed traces: disjoint block ranges per worker.

The block index makes a packed trace trivially shardable: workers
receive ``(path, first_block, end_block)`` specs
(:class:`repro.parallel.tasks.BlockRangeTask`), open the file
independently, and decode only their blocks; the parent concatenates
results in block order, so the operation list is byte-identical to a
serial decode.  Shard containment follows the executor's contract —
a worker that dies fails only its range, and this module retries the
failed ranges serially rather than losing them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.events.operations import Operation
from repro.events.trace import Trace

PathLike = Union[str, Path]

#: Don't bother forking below this many blocks per prospective worker.
MIN_BLOCKS_PER_SHARD = 2


def block_ranges(n_blocks: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``n_blocks`` into at most ``jobs`` contiguous ranges."""
    jobs = max(1, min(jobs, n_blocks))
    base, extra = divmod(n_blocks, jobs)
    ranges = []
    start = 0
    for shard in range(jobs):
        size = base + (1 if shard < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def load_packed_parallel(path: PathLike, jobs: int) -> Trace:
    """Decode a packed trace with ``jobs`` worker processes.

    Falls back to (and is identical to) a serial decode when the file
    is too small to shard or a shard's worker dies.
    """
    from repro.parallel.executor import run_shards
    from repro.parallel.tasks import BlockRangeTask, run_block_decode
    from repro.store.reader import PackedTraceReader

    with PackedTraceReader(path) as reader:
        n_blocks = len(reader.blocks)
        if jobs <= 1 or n_blocks < MIN_BLOCKS_PER_SHARD * 2:
            return reader.read()
    tasks = [
        BlockRangeTask(path=str(path), first_block=lo, end_block=hi)
        for lo, hi in block_ranges(n_blocks, jobs)
    ]
    ops: list[Operation] = []
    for shard in run_shards(run_block_decode, tasks, jobs=jobs):
        if shard.ok:
            ops.extend(shard.value)
        else:
            # Containment: decode the lost range in-process.  The
            # result stays byte-identical; only wall-clock suffers.
            task = tasks[shard.index]
            ops.extend(run_block_decode(task))
    return Trace(ops)
