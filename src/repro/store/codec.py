"""Block payload codec: operations <-> columnar bytes.

One block's decompressed payload encodes a run of consecutive
operations.  The layout (all integers LEB128 varints unless noted)::

    first_seq                 global position of the block's first op
    op_count
    n_strings; then per string: byte length + UTF-8 bytes
    values_json byte length; then a JSON array of recorded values
    n_distinct                distinct operation shapes in this block
    kinds                     n_distinct raw bytes (op-kind codes)
    tids                      n_distinct zigzag deltas
    target refs               n_distinct varints (0 = None,
                              k = strings[k-1])
    value refs                n_distinct varints (0 = None,
                              k = values[k-1])
    label refs                n_distinct varints (same string table)
    loc refs                  n_distinct varints (same string table)
    occurrences               op_count varints into the distinct table

Interning distinct shapes is what makes both directions fast: a
typical trace repeats a few dozen operation shapes thousands of times
(loop bodies, lock acquire/release pairs, the same source location),
so the decoder materializes each :class:`Operation` once and the
occurrence pass is a C-speed list indexing loop.

Values survive exactly one JSON round trip — the same contract the
JSONL serializer has always had; a value ``json`` cannot represent
raises :class:`~repro.store.format.StoreError` at pack time instead
of corrupting the recording.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.events.operations import Operation, OpKind
from repro.store.format import (
    StoreError,
    read_varint,
    unzigzag,
    write_varint,
    zigzag,
)

#: Stable wire codes for operation kinds.  New kinds append; existing
#: codes never renumber (they are on disk).
KIND_CODES: dict[OpKind, int] = {
    OpKind.READ: 0,
    OpKind.WRITE: 1,
    OpKind.ACQUIRE: 2,
    OpKind.RELEASE: 3,
    OpKind.BEGIN: 4,
    OpKind.END: 5,
}
CODE_KINDS: dict[int, OpKind] = {code: kind for kind, code in
                                 KIND_CODES.items()}


def encode_block(ops: Sequence[Operation], first_seq: int) -> bytes:
    """Encode consecutive operations into one payload (uncompressed)."""
    strings: dict[str, int] = {}
    values: list = []
    value_refs: dict[str, int] = {}
    distinct: dict[tuple, int] = {}
    table: list[Operation] = []
    occurrences = bytearray()

    def intern_string(text: Optional[str]) -> int:
        if text is None:
            return 0
        ref = strings.get(text)
        if ref is None:
            ref = len(strings) + 1
            strings[text] = ref
        return ref

    def intern_value(value: object) -> int:
        if value is None:
            return 0
        try:
            canonical = json.dumps(value, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"value {value!r} is not JSON-representable; packed "
                f"traces store values the way JSONL recordings do"
            ) from exc
        ref = value_refs.get(canonical)
        if ref is None:
            values.append(json.loads(canonical))
            ref = len(values)
            value_refs[canonical] = ref
        return ref

    refs: list[tuple[int, int, int, int, int, int]] = []
    for op in ops:
        value = op.value
        if value is None or isinstance(value, (str, int, float, bool)):
            # Type-qualified: True == 1 == 1.0 in dict keys, but they
            # are distinct on the wire (JSON true / 1 / 1.0).
            value_key = (type(value).__name__, value)
        else:
            value_key = ("id", id(value))
        key = (op.kind, op.tid, op.target, value_key, op.label, op.loc)
        index = distinct.get(key)
        if index is None:
            index = len(table)
            distinct[key] = index
            table.append(op)
            refs.append((
                KIND_CODES[op.kind],
                op.tid,
                intern_string(op.target),
                intern_value(op.value),
                intern_string(op.label),
                intern_string(op.loc),
            ))
        write_varint(occurrences, index)

    out = bytearray()
    write_varint(out, first_seq)
    write_varint(out, len(ops))
    write_varint(out, len(strings))
    for text in strings:  # insertion order == ref order
        raw = text.encode("utf-8")
        write_varint(out, len(raw))
        out += raw
    values_json = json.dumps(values, sort_keys=True).encode("utf-8")
    write_varint(out, len(values_json))
    out += values_json
    write_varint(out, len(table))
    out += bytes(ref[0] for ref in refs)
    previous_tid = 0
    for ref in refs:
        write_varint(out, zigzag(ref[1] - previous_tid))
        previous_tid = ref[1]
    for column in (2, 3, 4, 5):
        for ref in refs:
            write_varint(out, ref[column])
    out += occurrences
    return bytes(out)


def decode_block(
    payload: bytes,
) -> tuple[int, list[Operation]]:
    """Decode one payload; returns (first_seq, operations).

    Raises :class:`~repro.store.format.StoreError` on any structural
    problem — truncated varints, out-of-range table references, bad
    kind codes, undecodable UTF-8.
    """
    try:
        pos = 0
        first_seq, pos = read_varint(payload, pos)
        op_count, pos = read_varint(payload, pos)
        n_strings, pos = read_varint(payload, pos)
        strings: list[str] = []
        for _ in range(n_strings):
            length, pos = read_varint(payload, pos)
            end = pos + length
            if end > len(payload):
                raise StoreError("string table overruns payload")
            strings.append(payload[pos:end].decode("utf-8"))
            pos = end
        values_len, pos = read_varint(payload, pos)
        end = pos + values_len
        if end > len(payload):
            raise StoreError("value table overruns payload")
        values = json.loads(payload[pos:end].decode("utf-8"))
        if not isinstance(values, list):
            raise StoreError("value table is not a JSON array")
        pos = end
        n_distinct, pos = read_varint(payload, pos)
        end = pos + n_distinct
        if end > len(payload):
            raise StoreError("kind column overruns payload")
        kind_codes = payload[pos:end]
        pos = end
        tids: list[int] = []
        tid = 0
        for _ in range(n_distinct):
            delta, pos = read_varint(payload, pos)
            tid += unzigzag(delta)
            tids.append(tid)
        columns: list[list[int]] = []
        for _ in range(4):
            column = []
            for _ in range(n_distinct):
                ref, pos = read_varint(payload, pos)
                column.append(ref)
            columns.append(column)
        target_refs, value_refs, label_refs, loc_refs = columns

        def string_at(ref: int) -> Optional[str]:
            if ref == 0:
                return None
            if ref > len(strings):
                raise StoreError(f"string reference {ref} out of range")
            return strings[ref - 1]

        def value_at(ref: int) -> object:
            if ref == 0:
                return None
            if ref > len(values):
                raise StoreError(f"value reference {ref} out of range")
            return values[ref - 1]

        table: list[Operation] = []
        for i in range(n_distinct):
            code = kind_codes[i]
            kind = CODE_KINDS.get(code)
            if kind is None:
                raise StoreError(f"unknown op-kind code {code}")
            table.append(Operation(
                kind,
                tids[i],
                target=string_at(target_refs[i]),
                value=value_at(value_refs[i]),
                label=string_at(label_refs[i]),
                loc=string_at(loc_refs[i]),
            ))
        indices: list[int] = []
        for _ in range(op_count):
            index, pos = read_varint(payload, pos)
            indices.append(index)
        if pos != len(payload):
            raise StoreError(
                f"{len(payload) - pos} trailing bytes after block payload"
            )
        try:
            ops = [table[i] for i in indices]
        except IndexError:
            raise StoreError("occurrence index out of range") from None
        return first_seq, ops
    except StoreError:
        raise
    except (ValueError, UnicodeDecodeError, KeyError) as exc:
        raise StoreError(f"undecodable block payload: {exc}") from exc
