"""Streaming writer for packed (VTRC) trace files.

:class:`PackedTraceWriter` accumulates operations into blocks of
``block_ops``, encodes each block columnar (:mod:`repro.store.codec`),
compresses it with zlib, and appends a ``[length | crc32 | payload]``
frame.  ``close()`` flushes the final partial block and writes the
trailing block index plus footer, after which the file is complete
and seekable.  A writer killed before ``close()`` leaves a header and
whole frames — exactly the truncated shape the tolerant reader
(:class:`repro.store.reader.TolerantPackedReader`) recovers from.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import BinaryIO, Iterable, Optional, Union

from repro.events.operations import Operation
from repro.store.codec import encode_block
from repro.store.format import (
    DEFAULT_BLOCK_OPS,
    SUPPORTED_VERSIONS,
    VERSION,
    StoreError,
    pack_footer,
    pack_frame,
    pack_header,
    write_varint,
)
from repro.store.summary import BlockSummary, encode_summary, summarize_ops

PathLike = Union[str, Path]


class PackedTraceWriter:
    """Write an operation stream as a packed trace.

    Usable as a context manager; ``close()`` is idempotent.  The
    writer owns the stream only when constructed from a path.

    Args:
        destination: a path or a binary stream open for writing.
        block_ops: nominal operations per block.  Small blocks seek
            finer but compress worse; the default suits both.
        compress_level: zlib level (1 fastest .. 9 smallest).
        version: on-disk format version.  The default (v2) stores a
            per-block :class:`~repro.store.summary.BlockSummary` in
            the trailing index; pass 1 to write the summary-free v1
            layout older readers expect.
    """

    def __init__(
        self,
        destination: Union[PathLike, BinaryIO],
        block_ops: int = DEFAULT_BLOCK_OPS,
        compress_level: int = 6,
        version: int = VERSION,
    ):
        if block_ops < 1:
            raise StoreError("block_ops must be >= 1")
        if version not in SUPPORTED_VERSIONS:
            raise StoreError(f"cannot write packed-trace version {version}")
        if isinstance(destination, (str, Path)):
            self._stream: BinaryIO = open(destination, "wb")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        self.block_ops = block_ops
        self.compress_level = compress_level
        self.version = version
        self.ops_written = 0
        self.blocks_written = 0
        self._pending: list[Operation] = []
        #: Per-block [comp_len, op_count, crc] index entries.
        self._index: list[tuple[int, int, int]] = []
        #: Per-block summaries (v2 only), in block order.
        self._summaries: list[BlockSummary] = []
        self._closed = False
        self._stream.write(pack_header(block_ops, version=version))

    # ------------------------------------------------------------- writing
    def write(self, op: Operation) -> None:
        """Append one operation to the stream."""
        if self._closed:
            raise StoreError("writer is closed")
        self._pending.append(op)
        if len(self._pending) >= self.block_ops:
            self._flush_block()

    def write_all(self, ops: Iterable[Operation]) -> int:
        """Append every operation of ``ops``; returns how many."""
        count = 0
        for op in ops:
            self.write(op)
            count += 1
        return count

    def _flush_block(self) -> None:
        if not self._pending:
            return
        first_seq = self.ops_written
        payload = encode_block(self._pending, first_seq)
        comp = zlib.compress(payload, self.compress_level)
        crc = zlib.crc32(comp)
        self._stream.write(pack_frame(len(comp), crc))
        self._stream.write(comp)
        self._index.append((len(comp), len(self._pending), crc))
        if self.version >= 2:
            self._summaries.append(summarize_ops(
                self._pending, first_seq, number=self.blocks_written
            ))
        self.ops_written += len(self._pending)
        self.blocks_written += 1
        self._pending.clear()

    # ------------------------------------------------------------- closing
    def close(self) -> int:
        """Flush, write the index and footer; returns ops written."""
        if self._closed:
            return self.ops_written
        self._flush_block()
        index = bytearray()
        write_varint(index, len(self._index))
        for comp_len, op_count, crc in self._index:
            write_varint(index, comp_len)
            write_varint(index, op_count)
            index += crc.to_bytes(4, "little")
        if self.version >= 2:
            # v2 appends summaries after the v1-shaped triplets: a
            # file-level interned table of target names, then one
            # record per block.  The footer's index CRC covers it all.
            strings: dict[str, int] = {}

            def intern(name: str) -> int:
                ref = strings.get(name)
                if ref is None:
                    ref = len(strings) + 1
                    strings[name] = ref
                return ref

            records = bytearray()
            for summary in self._summaries:
                encode_summary(records, summary, intern)
            write_varint(index, len(strings))
            for name in strings:  # insertion order == ref order
                raw = name.encode("utf-8")
                write_varint(index, len(raw))
                index += raw
            index += records
        index_bytes = bytes(index)
        self._stream.write(index_bytes)
        self._stream.write(pack_footer(
            len(index_bytes), zlib.crc32(index_bytes), self.ops_written
        ))
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
        self._closed = True
        return self.ops_written

    def __enter__(self) -> "PackedTraceWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        # On error, leave the file truncated (no footer): a partial
        # recording must not masquerade as a complete one.
        if exc_type is None:
            self.close()
        elif self._owns_stream and not self._closed:
            self._stream.close()
            self._closed = True


def save_packed(
    ops: Iterable[Operation],
    path: PathLike,
    block_ops: int = DEFAULT_BLOCK_OPS,
    compress_level: int = 6,
    version: int = VERSION,
) -> int:
    """Write ``ops`` to ``path`` as a packed trace; returns the count."""
    with PackedTraceWriter(
        path, block_ops=block_ops, compress_level=compress_level,
        version=version,
    ) as writer:
        return writer.write_all(ops)
