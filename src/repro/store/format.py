"""The VTRC packed binary trace format: constants and primitives.

A ``.vtrc`` file is a compact, seekable, self-describing container
for one recorded operation stream::

    +----------------+  12 bytes: magic "VTRC", version, flags,
    |     header     |  nominal block size (ops per block)
    +----------------+
    |    block 0     |  u32 comp_len | u32 crc32 | zlib payload
    |    block 1     |
    |      ...       |
    +----------------+
    |     index      |  varint-coded [comp_len, op_count, crc32]
    +----------------+  per block, in file order
    |     footer     |  24 bytes: index length + crc, total op
    +----------------+  count, end magic "VTRCIDX\\0"

Each block packs up to ``block_ops`` consecutive operations.  The
*decompressed* payload is columnar: a per-block interned string table
(variables, locks, labels, source locations), a JSON-encoded table of
recorded values, and a table of *distinct* operation shapes — op-kind
byte column, zigzag/delta-coded tid column, varint string/value table
references — followed by one varint per operation indexing into the
distinct table.  Real traces repeat a small set of operation shapes
constantly (loop bodies, lock pairs), so the occurrence sequence is
the only per-op cost and both encode size and decode time collapse.

The payload also begins with the block's first global sequence number
and its op count, making every block self-describing: a reader that
lost the trailing index (a writer crash truncates the file before the
footer is written) can still scan blocks front to back.

The trailing index makes ``seek(seq)`` O(log blocks): cumulative op
counts locate the one block that must be decoded.  CRCs are computed
over the *compressed* payload so corruption is detected before
``zlib`` sees attacker-shaped input.

Versioning rules: the header carries a format version; readers reject
versions they do not know (forward compatibility is explicit, never
guessed).  Additions that old readers can safely ignore must come
with a new version anyway — a trace store that silently drops fields
is corrupting evidence.  See ``docs/traces.md`` for the normative
layout description.
"""

from __future__ import annotations

import struct

#: Leading file magic; the first four bytes of every packed trace.
MAGIC = b"VTRC"
#: Trailing footer magic; the last eight bytes of a *complete* file.
END_MAGIC = b"VTRCIDX\x00"
#: Current format version (header byte); readers reject others.
#: v1: blocks + [comp_len, op_count, crc] index.  v2: identical block
#: frames and index prefix, plus per-block summary records appended to
#: the index (see ``repro.store.summary`` and ``docs/traces.md``).
VERSION = 2
#: Every version this build can read.
SUPPORTED_VERSIONS = frozenset({1, 2})

#: Header layout: magic, version u8, flags u8, reserved u16,
#: nominal ops-per-block u32.
_HEADER = struct.Struct("<4sBBHI")
HEADER_SIZE = _HEADER.size  # 12

#: Per-block frame prefix: compressed length u32, crc32 u32.
_FRAME = struct.Struct("<II")
FRAME_SIZE = _FRAME.size  # 8

#: Footer layout: index length u32, index crc32 u32, total ops u64,
#: end magic.
_FOOTER = struct.Struct("<IIQ8s")
FOOTER_SIZE = _FOOTER.size  # 24

#: Default nominal block size (operations per block).  Large enough
#: that zlib and the string tables amortize, small enough that a
#: ``seek`` never decodes more than a modest prefix of its block.
DEFAULT_BLOCK_OPS = 512

#: An encoder-side cap on how implausibly large a single compressed
#: block may claim to be; the tolerant reader treats frames beyond it
#: as corruption rather than allocating unbounded buffers.
MAX_BLOCK_BYTES = 1 << 30


class StoreError(ValueError):
    """A packed trace could not be encoded, parsed, or decoded."""


class StoreFormatError(StoreError):
    """The file is not a packed trace this build can read."""


class CorruptBlock(StoreError):
    """One block failed its CRC, decompression, or payload parse.

    Attributes:
        block: 0-based block number in file order.
        byte_offset: offset of the block frame's first byte.
    """

    def __init__(self, message: str, block: int, byte_offset: int):
        super().__init__(message)
        self.block = block
        self.byte_offset = byte_offset


def pack_header(block_ops: int, version: int = VERSION) -> bytes:
    return _HEADER.pack(MAGIC, version, 0, 0, block_ops)


def parse_header(raw: bytes) -> tuple[int, int]:
    """Validate a header; returns (format version, nominal block size)."""
    if len(raw) < HEADER_SIZE:
        raise StoreFormatError(
            f"file too short for a packed-trace header "
            f"({len(raw)} bytes, need {HEADER_SIZE})"
        )
    magic, version, _flags, _reserved, block_ops = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise StoreFormatError(
            f"bad magic {magic!r} (expected {MAGIC!r}): "
            f"not a packed trace"
        )
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_VERSIONS))
        raise StoreFormatError(
            f"packed-trace version {version} not supported "
            f"(this build reads versions {supported})"
        )
    if block_ops < 1:
        raise StoreFormatError(f"bad block size {block_ops}")
    return version, block_ops


def pack_frame(comp_len: int, crc: int) -> bytes:
    return _FRAME.pack(comp_len, crc)


def parse_frame(raw: bytes, offset: int = 0) -> tuple[int, int]:
    return _FRAME.unpack_from(raw, offset)


def pack_footer(index_len: int, index_crc: int, total_ops: int) -> bytes:
    return _FOOTER.pack(index_len, index_crc, total_ops, END_MAGIC)


def parse_footer(raw: bytes) -> tuple[int, int, int]:
    """Validate a footer; returns (index_len, index_crc, total_ops)."""
    if len(raw) != FOOTER_SIZE:
        raise StoreFormatError(
            f"footer truncated ({len(raw)} bytes, need {FOOTER_SIZE})"
        )
    index_len, index_crc, total_ops, magic = _FOOTER.unpack(raw)
    if magic != END_MAGIC:
        raise StoreFormatError(
            f"bad end magic {magic!r}: file is truncated or not a "
            f"complete packed trace"
        )
    return index_len, index_crc, total_ops


# ------------------------------------------------------------------ varints
def write_varint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as a LEB128 varint."""
    if value < 0:
        raise StoreError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one varint at ``pos``; returns (value, next_pos)."""
    result = 0
    shift = 0
    length = len(data)
    while True:
        if pos >= length:
            raise StoreError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise StoreError("varint too long")


def zigzag(value: int) -> int:
    """Signed -> unsigned mapping for delta columns."""
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)
