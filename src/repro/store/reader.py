"""Readers for packed (VTRC) trace files.

Two readers with different trust models:

* :class:`PackedTraceReader` — the strict, seekable reader.  Parses
  the footer and block index on open, verifies every CRC it touches,
  and raises :class:`~repro.store.format.StoreError` on the first
  problem.  ``seek(seq)`` decodes exactly one block to land on an
  arbitrary stream position; ``iter_blocks()`` exposes the physical
  layout for shard planning (:mod:`repro.store.parallel`).

* :class:`TolerantPackedReader` — the quarantine-aware reader used by
  recovery paths.  Reuses the fault taxonomy and
  :class:`~repro.resilience.quarantine.ResyncPolicy` machinery of
  :mod:`repro.resilience.quarantine`: a CRC-failing or undecodable
  block becomes a ``malformed`` :class:`StreamFault` (with the frame's
  byte offset) and reading resumes at the next indexed block; a
  truncated final block (writer crashed before ``close()``) becomes a
  ``torn`` fault; missing operations between delivered blocks are
  reported as a ``gap``.  Under ``STRICT`` the first fault raises
  :class:`~repro.resilience.quarantine.StreamIntegrityError`.
"""

from __future__ import annotations

import os
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.events.operations import Operation
from repro.events.trace import Trace
from repro.resilience.quarantine import (
    LENIENT,
    FaultKind,
    Quarantine,
    ResyncPolicy,
    StreamFault,
)
from repro.store.codec import decode_block
from repro.store.summary import BlockSummary, decode_summary, summarize_ops
from repro.store.format import (
    FOOTER_SIZE,
    FRAME_SIZE,
    HEADER_SIZE,
    MAX_BLOCK_BYTES,
    CorruptBlock,
    StoreError,
    StoreFormatError,
    parse_footer,
    parse_frame,
    parse_header,
    read_varint,
)

PathLike = Union[str, Path]


@dataclass(frozen=True)
class BlockInfo:
    """One entry of the trailing block index.

    Attributes:
        number: 0-based block position in file order.
        byte_offset: offset of the block's frame header.
        comp_len: compressed payload length in bytes.
        op_count: operations encoded in the block.
        first_seq: global position of the block's first operation.
        crc: CRC-32 of the compressed payload.
    """

    number: int
    byte_offset: int
    comp_len: int
    op_count: int
    first_seq: int
    crc: int

    @property
    def last_seq(self) -> int:
        """Global position of the block's final operation."""
        return self.first_seq + self.op_count - 1


@dataclass(frozen=True)
class StoreInfo:
    """Summary of a packed trace file (``repro trace info``)."""

    path: Optional[str]
    file_bytes: int
    block_ops: int
    blocks: int
    ops: int
    payload_bytes: int
    version: int = 1

    def render(self) -> str:
        lines = [
            f"packed trace: {self.path or '<stream>'}",
            f"  format     : VTRC v{self.version}"
            + (" (per-block summaries)" if self.version >= 2 else ""),
            f"  operations : {self.ops}",
            f"  blocks     : {self.blocks} "
            f"(nominal {self.block_ops} ops/block)",
            f"  file size  : {self.file_bytes} bytes",
            f"  compressed : {self.payload_bytes} bytes of block payload",
        ]
        if self.ops:
            lines.append(
                f"  bytes/op   : {self.file_bytes / self.ops:.2f}"
            )
        return "\n".join(lines)


class PackedTraceReader:
    """Strict random-access reader over a complete packed trace.

    Accepts a path or any seekable binary stream (which the caller
    keeps ownership of).
    """

    def __init__(self, path: Union[PathLike, "os.PathLike", object]):
        if hasattr(path, "read") and hasattr(path, "seek"):
            self.path = None
            self._stream = path
            self._owns_stream = False
        else:
            self.path = Path(path)
            self._stream = open(self.path, "rb")
            self._owns_stream = True
        self._name = str(self.path) if self.path is not None else "<stream>"
        try:
            self._stream.seek(0)
            self._load_layout()
        except Exception:
            if self._owns_stream:
                self._stream.close()
            raise

    # -------------------------------------------------------------- layout
    def _load_layout(self) -> None:
        stream = self._stream
        header = stream.read(HEADER_SIZE)
        self.version, self.block_ops = parse_header(header)
        stream.seek(0, os.SEEK_END)
        self.file_bytes = stream.tell()
        if self.file_bytes < HEADER_SIZE + FOOTER_SIZE:
            raise StoreFormatError(
                f"{self._name}: too short to hold a footer — "
                f"truncated packed trace (recover with the tolerant "
                f"reader)"
            )
        stream.seek(self.file_bytes - FOOTER_SIZE)
        index_len, index_crc, total_ops = parse_footer(
            stream.read(FOOTER_SIZE)
        )
        index_start = self.file_bytes - FOOTER_SIZE - index_len
        if index_start < HEADER_SIZE:
            raise StoreFormatError(
                f"{self._name}: index length {index_len} overruns the file"
            )
        stream.seek(index_start)
        index_bytes = stream.read(index_len)
        if zlib.crc32(index_bytes) != index_crc:
            raise StoreFormatError(
                f"{self._name}: block index fails its CRC"
            )
        blocks: list[BlockInfo] = []
        pos = 0
        n_blocks, pos = read_varint(index_bytes, pos)
        offset = HEADER_SIZE
        first_seq = 0
        for number in range(n_blocks):
            comp_len, pos = read_varint(index_bytes, pos)
            op_count, pos = read_varint(index_bytes, pos)
            if pos + 4 > len(index_bytes):
                raise StoreFormatError(
                    f"{self._name}: block index truncated"
                )
            crc = int.from_bytes(index_bytes[pos:pos + 4], "little")
            pos += 4
            blocks.append(BlockInfo(
                number=number,
                byte_offset=offset,
                comp_len=comp_len,
                op_count=op_count,
                first_seq=first_seq,
                crc=crc,
            ))
            offset += FRAME_SIZE + comp_len
            first_seq += op_count
        summaries: list[Optional[BlockSummary]] = [None] * n_blocks
        if self.version >= 2:
            # Summaries trail the v1-shaped triplets: interned target
            # names, then one record per block (repro.store.summary).
            try:
                n_strings, pos = read_varint(index_bytes, pos)
                strings: list[str] = []
                for _ in range(n_strings):
                    length, pos = read_varint(index_bytes, pos)
                    end = pos + length
                    if end > len(index_bytes):
                        raise StoreError("string table overruns the index")
                    strings.append(index_bytes[pos:end].decode("utf-8"))
                    pos = end
                for number in range(n_blocks):
                    summaries[number], pos = decode_summary(
                        index_bytes, pos, strings, number,
                        blocks[number].first_seq, blocks[number].op_count,
                    )
            except (StoreError, UnicodeDecodeError) as exc:
                raise StoreFormatError(
                    f"{self._name}: malformed block summaries: {exc}"
                ) from exc
        if pos != len(index_bytes):
            raise StoreFormatError(
                f"{self._name}: {len(index_bytes) - pos} stray bytes in "
                f"the block index"
            )
        if offset != index_start:
            raise StoreFormatError(
                f"{self._name}: blocks end at byte {offset} but the "
                f"index starts at {index_start}"
            )
        if first_seq != total_ops:
            raise StoreFormatError(
                f"{self._name}: footer claims {total_ops} ops but the "
                f"index sums to {first_seq}"
            )
        self.blocks: list[BlockInfo] = blocks
        self.total_ops = total_ops
        #: Per-block summaries: parsed from the index for v2 files,
        #: reconstructed (and cached) on demand for v1.
        self._summaries = summaries
        #: Cumulative first_seq list for bisect-based seeks.
        self._starts = [block.first_seq for block in blocks]

    # ------------------------------------------------------------- reading
    def decode_block(self, block: Union[int, BlockInfo]) -> list[Operation]:
        """Decode one block (by number or index entry) to operations."""
        info = self.blocks[block] if isinstance(block, int) else block
        self._stream.seek(info.byte_offset)
        frame = self._stream.read(FRAME_SIZE)
        if len(frame) < FRAME_SIZE:
            raise CorruptBlock(
                f"block {info.number} frame truncated",
                info.number, info.byte_offset,
            )
        comp_len, crc = parse_frame(frame)
        if comp_len != info.comp_len or crc != info.crc:
            raise CorruptBlock(
                f"block {info.number} frame disagrees with the index "
                f"at byte {info.byte_offset}",
                info.number, info.byte_offset,
            )
        comp = self._stream.read(comp_len)
        if len(comp) < comp_len:
            raise CorruptBlock(
                f"block {info.number} payload truncated "
                f"at byte {info.byte_offset}",
                info.number, info.byte_offset,
            )
        if zlib.crc32(comp) != crc:
            raise CorruptBlock(
                f"block {info.number} fails its CRC "
                f"at byte {info.byte_offset}",
                info.number, info.byte_offset,
            )
        try:
            first_seq, ops = decode_block(zlib.decompress(comp))
        except (zlib.error, StoreError) as exc:
            raise CorruptBlock(
                f"block {info.number} undecodable at byte "
                f"{info.byte_offset}: {exc}",
                info.number, info.byte_offset,
            ) from exc
        if first_seq != info.first_seq or len(ops) != info.op_count:
            raise CorruptBlock(
                f"block {info.number} payload claims seqs "
                f"{first_seq}..{first_seq + len(ops) - 1}, index says "
                f"{info.first_seq}..{info.last_seq}",
                info.number, info.byte_offset,
            )
        return ops

    def block_summary(
        self, block: Union[int, BlockInfo], reconstruct: bool = False
    ) -> Optional[BlockSummary]:
        """The stored summary of one block.

        For v2 files this is free (parsed from the index on open).
        For v1 files it is ``None`` unless ``reconstruct`` is set, in
        which case the block is decoded once and the summary computed
        with the same :func:`~repro.store.summary.summarize_ops` the
        v2 writer uses, then cached.
        """
        number = block if isinstance(block, int) else block.number
        summary = self._summaries[number]
        if summary is None and reconstruct:
            info = self.blocks[number]
            summary = summarize_ops(
                self.decode_block(info), info.first_seq, number=number
            )
            self._summaries[number] = summary
        return summary

    def iter_blocks(self) -> Iterator[tuple[BlockInfo, list[Operation]]]:
        """Yield every (index entry, decoded operations) pair in order."""
        for info in self.blocks:
            yield info, self.decode_block(info)

    def __iter__(self) -> Iterator[Operation]:
        for _info, ops in self.iter_blocks():
            yield from ops

    def seek(self, seq: int) -> Iterator[Operation]:
        """Iterate operations from global position ``seq`` onward.

        Only the block containing ``seq`` and its successors are read
        and decoded; the prefix of the file is never touched.
        """
        if seq < 0:
            raise StoreError(f"seek position must be >= 0, got {seq}")
        if seq >= self.total_ops:
            return
        number = bisect_right(self._starts, seq) - 1
        info = self.blocks[number]
        yield from self.decode_block(info)[seq - info.first_seq:]
        for later in self.blocks[number + 1:]:
            yield from self.decode_block(later)

    def block_for_seq(self, seq: int) -> BlockInfo:
        """The index entry of the block containing position ``seq``."""
        if not 0 <= seq < self.total_ops:
            raise StoreError(
                f"position {seq} outside 0..{self.total_ops - 1}"
            )
        return self.blocks[bisect_right(self._starts, seq) - 1]

    def read(self) -> Trace:
        """The whole recording as a :class:`Trace`."""
        ops: list[Operation] = []
        for _info, block_ops in self.iter_blocks():
            ops.extend(block_ops)
        return Trace(ops)

    def info(self) -> StoreInfo:
        return StoreInfo(
            path=None if self.path is None else str(self.path),
            file_bytes=self.file_bytes,
            block_ops=self.block_ops,
            blocks=len(self.blocks),
            ops=self.total_ops,
            payload_bytes=sum(block.comp_len for block in self.blocks),
            version=self.version,
        )

    # ------------------------------------------------------------ plumbing
    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PackedTraceReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def load_packed(path: PathLike) -> Trace:
    """Read a complete packed trace strictly."""
    with PackedTraceReader(path) as reader:
        return reader.read()


class TolerantPackedReader:
    """Quarantine-aware reader that survives damaged packed traces.

    With an intact footer, iteration is index-driven: a block that
    fails its CRC or decode is quarantined as ``malformed`` (byte
    offset included) and reading **resumes at the next indexed
    block**, with a ``gap`` fault recording the sequence range lost.
    Without a footer — the file a crashed writer leaves — blocks are
    scanned front to back using their frames; the cut-off final frame
    is quarantined as ``torn``.

    Args:
        path: the packed trace file.
        policy: :data:`~repro.resilience.quarantine.LENIENT` skips and
            records; :data:`~repro.resilience.quarantine.STRICT`
            raises on the first fault.
    """

    def __init__(self, path: PathLike, policy: ResyncPolicy = LENIENT):
        self.path = Path(path)
        self.quarantine = Quarantine(policy)
        self.ops_delivered = 0

    # ------------------------------------------------------------ internals
    def _admit(
        self,
        kind: FaultKind,
        detail: str,
        byte_offset: int,
        seq: Optional[int] = None,
    ) -> None:
        self.quarantine.admit(StreamFault(
            kind,
            detail,
            self.ops_delivered,
            byte_offset=byte_offset,
            seq=seq,
        ))

    def _iter_indexed(self, reader: PackedTraceReader) -> Iterator[Operation]:
        expected_seq = 0
        for info in reader.blocks:
            try:
                ops = reader.decode_block(info)
            except CorruptBlock as exc:
                self._admit(
                    FaultKind.MALFORMED, str(exc), exc.byte_offset,
                    seq=info.first_seq,
                )
                continue
            if info.first_seq != expected_seq:
                self._admit(
                    FaultKind.GAP,
                    f"operations {expected_seq}..{info.first_seq - 1} "
                    f"lost to damaged blocks",
                    info.byte_offset,
                    seq=info.first_seq,
                )
            expected_seq = info.first_seq + len(ops)
            for op in ops:
                yield op
                self.ops_delivered += 1
        if expected_seq < reader.total_ops:
            self._admit(
                FaultKind.GAP,
                f"operations {expected_seq}..{reader.total_ops - 1} "
                f"lost to damaged blocks",
                reader.file_bytes,
                seq=expected_seq,
            )

    def _iter_scanning(self) -> Iterator[Operation]:
        with open(self.path, "rb") as stream:
            header = stream.read(HEADER_SIZE)
            parse_header(header)  # garbage headers are unrecoverable
            data = stream.read()
        file_bytes = HEADER_SIZE + len(data)
        self._admit(
            FaultKind.TORN,
            "no trailing index (writer did not close the file); "
            "scanning blocks sequentially",
            file_bytes,
        )
        pos = 0
        expected_seq = 0
        while pos < len(data):
            frame_offset = HEADER_SIZE + pos
            if pos + FRAME_SIZE > len(data):
                self._admit(
                    FaultKind.TORN,
                    f"trailing {len(data) - pos} bytes are shorter "
                    f"than a block frame",
                    frame_offset,
                )
                return
            comp_len, crc = parse_frame(data, pos)
            if comp_len > MAX_BLOCK_BYTES:
                self._admit(
                    FaultKind.MALFORMED,
                    f"implausible block length {comp_len} at byte "
                    f"{frame_offset}; cannot resync past it",
                    frame_offset,
                )
                return
            start = pos + FRAME_SIZE
            end = start + comp_len
            if end > len(data):
                self._admit(
                    FaultKind.TORN,
                    f"final block truncated at byte {frame_offset} "
                    f"({len(data) - start} of {comp_len} payload bytes "
                    f"present)",
                    frame_offset,
                )
                return
            comp = data[start:end]
            pos = end
            if zlib.crc32(comp) != crc:
                self._admit(
                    FaultKind.MALFORMED,
                    f"block at byte {frame_offset} fails its CRC",
                    frame_offset,
                )
                continue
            try:
                first_seq, ops = decode_block(zlib.decompress(comp))
            except (zlib.error, StoreError) as exc:
                self._admit(
                    FaultKind.MALFORMED,
                    f"block at byte {frame_offset} undecodable: {exc}",
                    frame_offset,
                )
                continue
            if first_seq != expected_seq:
                self._admit(
                    FaultKind.GAP,
                    f"operations {expected_seq}..{first_seq - 1} lost "
                    f"to damaged blocks",
                    frame_offset,
                    seq=first_seq,
                )
            expected_seq = first_seq + len(ops)
            for op in ops:
                yield op
                self.ops_delivered += 1

    # ------------------------------------------------------------- surface
    def __iter__(self) -> Iterator[Operation]:
        try:
            reader = PackedTraceReader(self.path)
        except StoreFormatError:
            # No (or damaged) footer/index: fall back to a front-to-
            # back scan.  A garbage *header* still raises — there is
            # nothing recoverable behind an unknown magic.
            with open(self.path, "rb") as stream:
                parse_header(stream.read(HEADER_SIZE))
            yield from self._iter_scanning()
            return
        with reader:
            yield from self._iter_indexed(reader)

    def read(self) -> Trace:
        """All recoverable operations, faults quarantined."""
        return Trace(list(self))


def load_packed_tolerant(
    path: PathLike, policy: ResyncPolicy = LENIENT
) -> tuple[Trace, Quarantine]:
    """Read as much of a packed trace as survives, plus the faults."""
    reader = TolerantPackedReader(path, policy=policy)
    trace = reader.read()
    return trace, reader.quarantine
