"""The Empty analysis backend.

Does no work: it only counts events.  Running a benchmark through the
instrumentation pipeline with this backend measures pure
instrumentation overhead, exactly like the "Empty" column of the
paper's Table 1.
"""

from __future__ import annotations

from repro.core.backend import AnalysisBackend
from repro.events.operations import Operation


class EmptyAnalysis(AnalysisBackend):
    """Backend that observes events and does nothing else."""

    name = "EMPTY"

    def _process(self, op: Operation, position: int) -> None:
        pass
