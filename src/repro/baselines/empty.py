"""The Empty analysis backend.

Does no work: it only counts events.  Running a benchmark through the
instrumentation pipeline with this backend measures pure
instrumentation overhead, exactly like the "Empty" column of the
paper's Table 1.
"""

from __future__ import annotations

from repro.core.backend import AnalysisBackend
from repro.events.operations import Operation


class EmptyAnalysis(AnalysisBackend):
    """Backend that observes events and does nothing else."""

    name = "EMPTY"

    def process(self, op: Operation) -> None:
        # Overrides the base class so the do-nothing backend costs one
        # frame per event, not two — it exists to measure everything
        # *around* the analysis, so its own overhead should be minimal.
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        pass

    def apply_block_summary(self, summary) -> bool:
        # Counting events needs no decode: every block fast-forwards.
        self.events_processed += summary.op_count
        return True
