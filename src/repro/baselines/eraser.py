"""The Eraser LockSet race detector (Savage et al., TOCS 1997).

Eraser checks the *lock discipline*: every shared variable should be
protected by some fixed set of locks held on every access.  Per
variable it maintains a candidate lockset, refined by intersection with
the accessing thread's held locks, plus the ownership state machine
that suppresses warnings for variables still in their initialization or
read-shared phases:

    VIRGIN -> EXCLUSIVE -> SHARED            (second thread reads)
                        -> SHARED_MODIFIED   (second thread writes)

A race is reported when the candidate lockset becomes empty in the
SHARED_MODIFIED state.  Eraser is neither sound nor complete for
serializability — it is a baseline here (paper Table 1) and the race
oracle the Atomizer builds on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.reports import race_warning
from repro.events.operations import Operation, OpKind


class VarState(enum.Enum):
    """The Eraser ownership state machine."""

    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class VarInfo:
    """Per-variable Eraser state."""

    state: VarState = VarState.VIRGIN
    owner: Optional[int] = None
    lockset: Optional[frozenset[str]] = None  # None = still universal
    reported: bool = False


class EraserLockSet(AnalysisBackend):
    """Online LockSet race detection over the event stream.

    Exposes :meth:`is_protected`, used by the Atomizer to classify
    accesses as movers: an access is treated as race-free when Eraser
    has not (and would not, for this access) empty the candidate set.
    """

    name = "ERASER"

    def __init__(self, report_once_per_var: bool = True):
        super().__init__()
        self.report_once_per_var = report_once_per_var
        self._held: dict[int, set[str]] = {}
        self._vars: dict[str, VarInfo] = {}
        # Per-kind dispatch table; BEGIN/END are absent (ignored):
        # Eraser knows nothing of atomicity.
        self._handlers = {
            OpKind.ACQUIRE: self._acquire,
            OpKind.RELEASE: self._release,
            OpKind.READ: self._read,
            OpKind.WRITE: self._write,
        }

    # ------------------------------------------------------------- state
    def held(self, tid: int) -> set[str]:
        """Locks currently held by thread ``tid``."""
        return self._held.setdefault(tid, set())

    def var_state(self, var: str) -> VarState:
        """The ownership state of ``var``."""
        return self._vars.get(var, VarInfo()).state

    def lockset(self, var: str) -> Optional[frozenset[str]]:
        """Candidate lockset of ``var`` (``None`` while universal)."""
        return self._vars.get(var, VarInfo()).lockset

    # ----------------------------------------------------------- process
    def process(self, op: Operation) -> None:
        # Overrides the base class to fold the process -> _process call
        # into a single frame.
        handler = self._handlers.get(op.kind)
        if handler is not None:
            handler(op, self.events_processed)
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        handler = self._handlers.get(op.kind)
        if handler is not None:
            handler(op, position)

    def _acquire(self, op: Operation, position: int) -> None:
        self.held(op.tid).add(op.target)

    def _release(self, op: Operation, position: int) -> None:
        self.held(op.tid).discard(op.target)

    def _read(self, op: Operation, position: int) -> None:
        self._access(op, position, is_write=False)

    def _write(self, op: Operation, position: int) -> None:
        self._access(op, position, is_write=True)

    def _access(self, op: Operation, position: int, is_write: bool) -> None:
        info = self._vars.setdefault(op.target, VarInfo())
        tid = op.tid
        state = info.state
        if state is VarState.VIRGIN:
            info.state = VarState.EXCLUSIVE
            info.owner = tid
            return
        if state is VarState.EXCLUSIVE:
            if tid == info.owner:
                return
            # Second thread: initialize the candidate set and move to a
            # shared state.
            info.lockset = frozenset(self.held(tid))
            info.state = (
                VarState.SHARED_MODIFIED if is_write else VarState.SHARED
            )
            self._check(op, position, info)
            return
        # SHARED / SHARED_MODIFIED: refine by intersection.
        assert info.lockset is not None
        info.lockset = info.lockset & frozenset(self.held(tid))
        if is_write and state is VarState.SHARED:
            info.state = VarState.SHARED_MODIFIED
        self._check(op, position, info)

    def _check(self, op: Operation, position: int, info: VarInfo) -> None:
        if info.state is not VarState.SHARED_MODIFIED:
            return
        if info.lockset:
            return
        if info.reported and self.report_once_per_var:
            return
        info.reported = True
        self.report(
            race_warning(
                self.name,
                op.tid,
                position,
                op.target,
                f"possible data race on {op.target} "
                f"(candidate lockset empty at {op})",
            )
        )

    # ------------------------------------------------- Atomizer interface
    def is_protected(self, var: str, tid: int) -> bool:
        """Whether an access by ``tid`` to ``var`` looks race-free.

        True while the variable is thread-confined (VIRGIN/EXCLUSIVE by
        this thread) or its candidate lockset intersected with the
        thread's held locks stays non-empty.  Used by the Atomizer to
        classify accesses as both-movers vs. non-movers *before* the
        access is processed.
        """
        info = self._vars.get(var)
        if info is None or info.state is VarState.VIRGIN:
            return True
        if info.state is VarState.EXCLUSIVE:
            # An access by a second thread transfers ownership: Eraser
            # initializes the candidate set to that thread's held locks
            # and reports nothing, so the access is treated as
            # protected exactly when the set would be non-empty.
            return info.owner == tid or bool(self.held(tid))
        assert info.lockset is not None
        return bool(info.lockset & self.held(tid))
