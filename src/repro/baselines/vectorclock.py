"""A precise (sound and complete) happens-before race detector.

RoadRunner ships a vector-clock race detector alongside Eraser (paper
Section 5); we include the equivalent, in the DJIT+ style: per-thread
vector clocks, per-lock clocks joined on acquire, and per-variable
read/write clocks.  An access races when it is not ordered (by the
lock-induced happens-before relation) after every conflicting prior
access.

Data races and atomicity violations are complementary (paper Section
1): Velodrome assumes race-freedom gives meaning to traces, and this
detector can run concurrently with it when races are a concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.clocks import VectorClock
from repro.core.reports import race_warning
from repro.events.operations import Operation, OpKind

# ``VectorClock`` historically lived here; it moved to
# ``repro.core.clocks`` when the AeroDrome backend became a second
# consumer.  Re-exported for existing imports.
__all__ = ["HappensBeforeRaces", "VectorClock"]


@dataclass
class _VarClocks:
    """Per-variable access history."""

    reads: dict[int, int] = field(default_factory=dict)  # tid -> clock
    read_vcs: dict[int, VectorClock] = field(default_factory=dict)
    write: Optional[tuple[int, int]] = None  # (tid, clock) epoch
    write_vc: Optional[VectorClock] = None
    reported: bool = False


class HappensBeforeRaces(AnalysisBackend):
    """Vector-clock happens-before race detection."""

    name = "HB-RACES"

    def __init__(self, report_once_per_var: bool = True):
        super().__init__()
        self.report_once_per_var = report_once_per_var
        self._threads: dict[int, VectorClock] = {}
        self._locks: dict[str, VectorClock] = {}
        self._vars: dict[str, _VarClocks] = {}
        # Per-kind dispatch table; BEGIN/END are absent (they carry no
        # synchronization).
        self._handlers = {
            OpKind.ACQUIRE: self._acquire,
            OpKind.RELEASE: self._release,
            OpKind.READ: self._read,
            OpKind.WRITE: self._write,
        }

    def clock(self, tid: int) -> VectorClock:
        """The current vector clock of thread ``tid``."""
        vc = self._threads.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self._threads[tid] = vc
        return vc

    # ----------------------------------------------------------- process
    def process(self, op: Operation) -> None:
        # Overrides the base class to fold the process -> _process call
        # into a single frame.
        handler = self._handlers.get(op.kind)
        if handler is not None:
            handler(op, self.events_processed)
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        handler = self._handlers.get(op.kind)
        if handler is not None:
            handler(op, position)

    def _acquire(self, op: Operation, position: int) -> None:
        lock_vc = self._locks.get(op.target)
        if lock_vc is not None:
            self.clock(op.tid).join(lock_vc)

    def _release(self, op: Operation, position: int) -> None:
        vc = self.clock(op.tid)
        self._locks[op.target] = vc.copy()
        vc.tick(op.tid)

    def _read(self, op: Operation, position: int) -> None:
        tid = op.tid
        vc = self.clock(tid)
        info = self._vars.setdefault(op.target, _VarClocks())
        if info.write is not None:
            writer, clock = info.write
            if writer != tid and vc.get(writer) < clock:
                self._race(op, position, info, f"read unordered with write by t{writer}")
        info.reads[tid] = vc.get(tid)
        info.read_vcs[tid] = vc.copy()

    def _write(self, op: Operation, position: int) -> None:
        tid = op.tid
        vc = self.clock(tid)
        info = self._vars.setdefault(op.target, _VarClocks())
        if info.write is not None:
            writer, clock = info.write
            if writer != tid and vc.get(writer) < clock:
                self._race(op, position, info, f"write unordered with write by t{writer}")
        for reader, clock in info.reads.items():
            if reader != tid and vc.get(reader) < clock:
                self._race(op, position, info, f"write unordered with read by t{reader}")
        info.write = (tid, vc.get(tid))
        info.write_vc = vc.copy()
        info.reads.clear()
        info.read_vcs.clear()

    def _race(
        self, op: Operation, position: int, info: _VarClocks, why: str
    ) -> None:
        if info.reported and self.report_once_per_var:
            return
        info.reported = True
        self.report(
            race_warning(
                self.name, op.tid, position, op.target, f"data race: {why} ({op})"
            )
        )
