"""The Atomizer: reduction-based dynamic atomicity checking.

Reimplementation of Flanagan and Freund's Atomizer (POPL 2004), the
incomplete baseline the paper compares against.  The Atomizer checks
each atomic block against Lipton's reduction pattern

    (R | B)*  N?  (L | B)*

where lock acquires are right-movers (R), lock releases are
left-movers (L), race-free accesses are both-movers (B), and racy
accesses — as judged by an embedded Eraser LockSet oracle — are
non-movers (N), of which a reducible block may contain at most one.
A block matching the pattern is serializable by commuting movers; a
block that does not match draws a warning.

Because LockSet understands only lock-based synchronization, programs
using flag hand-offs, barriers, or synchronization hidden inside
uninstrumented libraries make accesses look racy and produce the
*false alarms* the paper's Table 2 quantifies.  Conversely, a
reduction failure can also occur on a perfectly serializable observed
trace — that is the design: the Atomizer generalizes beyond the
observed interleaving at the price of precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.eraser import EraserLockSet
from repro.core.backend import AnalysisBackend
from repro.core.reports import reduction_warning
from repro.events.operations import Operation, OpKind


@dataclass
class _BlockState:
    """Reduction state of one open outermost atomic block."""

    label: Optional[str]
    seen_left_mover: bool = False  # some release observed
    seen_non_mover: bool = False  # the single permitted N observed
    violated: bool = False

    @property
    def committed(self) -> bool:
        """True once only left/both-movers may still appear."""
        return self.seen_left_mover or self.seen_non_mover


class Atomizer(AnalysisBackend):
    """Online reduction checking with an embedded Eraser oracle.

    Args:
        report_once_per_block: report at most one warning per dynamic
            block instance (the paper counts distinct methods anyway).
        pause_callback: optional hook invoked with ``(op, position)``
            whenever this analysis flags a *commit point* (the block's
            single non-mover).  The adversarial scheduler of paper
            Sections 5-6 uses this to pause the thread at the point most
            likely to expose a violation.
    """

    name = "ATOMIZER"

    def __init__(
        self,
        report_once_per_block: bool = True,
        pause_callback=None,
    ):
        super().__init__()
        self.report_once_per_block = report_once_per_block
        self.pause_callback = pause_callback
        self.lockset = EraserLockSet()
        self._blocks: dict[int, list[_BlockState]] = {}
        # Per-kind dispatch table; every handler ends by forwarding the
        # operation to the lockset oracle.
        self._handlers = {
            OpKind.BEGIN: self._begin,
            OpKind.END: self._end,
            OpKind.ACQUIRE: self._acquire,
            OpKind.RELEASE: self._release,
            OpKind.READ: self._access,
            OpKind.WRITE: self._access,
        }

    # ----------------------------------------------------------- process
    def process(self, op: Operation) -> None:
        # Overrides the base class to fold the process -> _process call
        # into a single frame.
        self._handlers[op.kind](op, self.events_processed)
        self.lockset.process(op)
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        self._handlers[op.kind](op, position)
        self.lockset.process(op)

    def _begin(self, op: Operation, position: int) -> None:
        stack = self._blocks.setdefault(op.tid, [])
        if not stack:
            stack.append(_BlockState(op.label))
        else:
            # Nested blocks are folded into the outermost one, as in
            # the Velodrome transaction model.
            stack.append(stack[0])

    def _end(self, op: Operation, position: int) -> None:
        stack = self._blocks.get(op.tid)
        if stack:
            stack.pop()

    def _current_block(self, tid: int) -> Optional[_BlockState]:
        stack = self._blocks.get(tid)
        return stack[0] if stack else None

    def _acquire(self, op: Operation, position: int) -> None:
        # Acquires are right-movers: illegal after the commit point.
        block = self._current_block(op.tid)
        if block is not None and block.committed:
            self._violation(block, op, position, "lock acquire after commit point")

    def _release(self, op: Operation, position: int) -> None:
        # Releases are left-movers: mark the commit.
        block = self._current_block(op.tid)
        if block is not None:
            block.seen_left_mover = True

    def _access(self, op: Operation, position: int) -> None:
        # Classify the access using the lockset oracle *before*
        # the access refines it.
        block = self._current_block(op.tid)
        if block is None:
            return
        if self.lockset.is_protected(op.target, op.tid):
            return
        if block.committed:
            self._violation(
                block, op, position,
                f"racy access to {op.target} after commit point",
            )
        else:
            block.seen_non_mover = True
            if self.pause_callback is not None:
                self.pause_callback(op, position)

    def _violation(
        self, block: _BlockState, op: Operation, position: int, why: str
    ) -> None:
        if block.violated and self.report_once_per_block:
            return
        block.violated = True
        self.report(
            reduction_warning(
                self.name,
                block.label,
                op.tid,
                position,
                f"atomic block {block.label!r} not reducible: {why} ({op})",
            )
        )
