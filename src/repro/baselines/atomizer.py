"""The Atomizer: reduction-based dynamic atomicity checking.

Reimplementation of Flanagan and Freund's Atomizer (POPL 2004), the
incomplete baseline the paper compares against.  The Atomizer checks
each atomic block against Lipton's reduction pattern

    (R | B)*  N?  (L | B)*

where lock acquires are right-movers (R), lock releases are
left-movers (L), race-free accesses are both-movers (B), and racy
accesses — as judged by an embedded Eraser LockSet oracle — are
non-movers (N), of which a reducible block may contain at most one.
A block matching the pattern is serializable by commuting movers; a
block that does not match draws a warning.

Because LockSet understands only lock-based synchronization, programs
using flag hand-offs, barriers, or synchronization hidden inside
uninstrumented libraries make accesses look racy and produce the
*false alarms* the paper's Table 2 quantifies.  Conversely, a
reduction failure can also occur on a perfectly serializable observed
trace — that is the design: the Atomizer generalizes beyond the
observed interleaving at the price of precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.eraser import EraserLockSet
from repro.core.backend import AnalysisBackend
from repro.core.reports import reduction_warning
from repro.events.operations import Operation, OpKind


@dataclass
class _BlockState:
    """Reduction state of one open outermost atomic block."""

    label: Optional[str]
    seen_left_mover: bool = False  # some release observed
    seen_non_mover: bool = False  # the single permitted N observed
    violated: bool = False

    @property
    def committed(self) -> bool:
        """True once only left/both-movers may still appear."""
        return self.seen_left_mover or self.seen_non_mover


class Atomizer(AnalysisBackend):
    """Online reduction checking with an embedded Eraser oracle.

    Args:
        report_once_per_block: report at most one warning per dynamic
            block instance (the paper counts distinct methods anyway).
        pause_callback: optional hook invoked with ``(op, position)``
            whenever this analysis flags a *commit point* (the block's
            single non-mover).  The adversarial scheduler of paper
            Sections 5-6 uses this to pause the thread at the point most
            likely to expose a violation.
    """

    name = "ATOMIZER"

    def __init__(
        self,
        report_once_per_block: bool = True,
        pause_callback=None,
    ):
        super().__init__()
        self.report_once_per_block = report_once_per_block
        self.pause_callback = pause_callback
        self.lockset = EraserLockSet()
        self._blocks: dict[int, list[_BlockState]] = {}

    # ----------------------------------------------------------- process
    def _process(self, op: Operation, position: int) -> None:
        kind = op.kind
        tid = op.tid
        stack = self._blocks.setdefault(tid, [])
        if kind is OpKind.BEGIN:
            if not stack:
                stack.append(_BlockState(op.label))
            else:
                # Nested blocks are folded into the outermost one, as in
                # the Velodrome transaction model.
                stack.append(stack[0])
            self.lockset.process(op)
            return
        if kind is OpKind.END:
            if stack:
                stack.pop()
            self.lockset.process(op)
            return

        block = stack[0] if stack else None
        if kind is OpKind.ACQUIRE:
            # Acquires are right-movers: illegal after the commit point.
            if block is not None and block.committed:
                self._violation(block, op, position, "lock acquire after commit point")
        elif kind is OpKind.RELEASE:
            # Releases are left-movers: mark the commit.
            if block is not None:
                block.seen_left_mover = True
        else:
            # Classify the access using the lockset oracle *before*
            # the access refines it.
            protected = self.lockset.is_protected(op.target, tid)
            if block is not None and not protected:
                if block.committed:
                    self._violation(
                        block, op, position,
                        f"racy access to {op.target} after commit point",
                    )
                else:
                    block.seen_non_mover = True
                    if self.pause_callback is not None:
                        self.pause_callback(op, position)
        self.lockset.process(op)

    def _violation(
        self, block: _BlockState, op: Operation, position: int, why: str
    ) -> None:
        if block.violated and self.report_once_per_block:
            return
        block.violated = True
        self.report(
            reduction_warning(
                self.name,
                block.label,
                op.tid,
                position,
                f"atomic block {block.label!r} not reducible: {why} ({op})",
            )
        )
