"""Baseline analyses: Empty, Eraser, Atomizer, and vector-clock races."""

from repro.baselines.atomizer import Atomizer
from repro.baselines.blockbased import BlockBasedChecker
from repro.baselines.empty import EmptyAnalysis
from repro.baselines.eraser import EraserLockSet, VarState
from repro.baselines.lockorder import LockOrderGraph, LockOrderMonitor
from repro.baselines.twophase import TwoPhaseLocking
from repro.baselines.vectorclock import HappensBeforeRaces, VectorClock

__all__ = [
    "Atomizer",
    "BlockBasedChecker",
    "EmptyAnalysis",
    "EraserLockSet",
    "HappensBeforeRaces",
    "LockOrderGraph",
    "LockOrderMonitor",
    "TwoPhaseLocking",
    "VarState",
    "VectorClock",
]
