"""Lock-order (potential deadlock) detection — a Goodlock-style monitor.

The paper's introduction warns that "real bugs (e.g., deadlocks) could
be easily introduced while attempting to fix a spurious warning"; this
backend watches for the precondition: it builds the lock-order graph
(an edge ``a -> b`` whenever some thread acquires ``b`` while holding
``a``) and reports when an acquisition closes a cycle — two threads
take the same locks in opposite orders somewhere in the run, a
*potential* deadlock even if this execution got through.
"""

from __future__ import annotations

from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.reports import Warning, WarningKind
from repro.events.operations import Operation, OpKind


class LockOrderGraph:
    """The held-before relation between locks, with cycle detection."""

    def __init__(self) -> None:
        self._successors: dict[str, set[str]] = {}

    def add(self, held: str, acquired: str) -> Optional[list[str]]:
        """Record ``held`` ordered before ``acquired``.

        Returns a lock cycle (as a list, first == last) if this edge
        creates one, else ``None``.  The edge is recorded either way:
        the inversion itself is the finding.
        """
        path = self._path(acquired, held)
        self._successors.setdefault(held, set()).add(acquired)
        if path is not None:
            return path + [acquired]
        return None

    def _path(self, source: str, target: str) -> Optional[list[str]]:
        if source == target:
            return [source]
        stack = [(source, [source])]
        seen = {source}
        while stack:
            node, path = stack.pop()
            for succ in self._successors.get(node, ()):
                if succ == target:
                    return path + [target]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def edges(self) -> list[tuple[str, str]]:
        return [
            (held, acquired)
            for held, successors in self._successors.items()
            for acquired in successors
        ]


class LockOrderMonitor(AnalysisBackend):
    """Warn when lock acquisition orders are inconsistent across the run."""

    name = "LOCK-ORDER"

    def __init__(self, report_once_per_pair: bool = True):
        super().__init__()
        self.report_once_per_pair = report_once_per_pair
        self.graph = LockOrderGraph()
        self._held: dict[int, list[str]] = {}
        self._reported: set[frozenset[str]] = set()

    def held(self, tid: int) -> list[str]:
        """Locks held by ``tid``, in acquisition order."""
        return self._held.setdefault(tid, [])

    def _process(self, op: Operation, position: int) -> None:
        if op.kind is OpKind.ACQUIRE:
            held = self.held(op.tid)
            for lock in held:
                cycle = self.graph.add(lock, op.target)
                if cycle is not None:
                    self._report_cycle(op, position, cycle)
            held.append(op.target)
        elif op.kind is OpKind.RELEASE:
            held = self.held(op.tid)
            if op.target in held:
                held.remove(op.target)

    def _report_cycle(
        self, op: Operation, position: int, cycle: list[str]
    ) -> None:
        key = frozenset(cycle)
        if self.report_once_per_pair and key in self._reported:
            return
        self._reported.add(key)
        chain = " -> ".join(cycle)
        self.report(
            Warning(
                WarningKind.RACE,
                self.name,
                None,
                op.tid,
                position,
                f"inconsistent lock order (potential deadlock): {chain}",
                target=op.target,
            )
        )
