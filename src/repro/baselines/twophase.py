"""Strict two-phase-locking (2PL) violation detection.

Xu, Bodík, and Hill's serializability violation detector (PLDI 2005,
discussed in the paper's Section 7) enforces strict 2PL — a
*sufficient but not necessary* condition for serializability: every
transaction must consist of a lock-growing phase followed by a
lock-shrinking phase, with every accessed variable protected by a lock
held at access time and not released before the transaction ends
(strictness).

Violations flag suspicious code but do **not** imply the observed trace
is non-serializable, so this detector — like the Atomizer — produces
false alarms on correctly synchronized programs (any flag hand-off, any
early release that happens to be benign).  It completes the baseline
spectrum between Eraser (races only) and Velodrome (exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.reports import reduction_warning
from repro.events.operations import Operation, OpKind


@dataclass
class _TxState:
    """2PL state of one open outermost transaction."""

    label: Optional[str]
    shrinking: bool = False  # a release has happened
    released: set[str] = field(default_factory=set)
    violated: bool = False


class TwoPhaseLocking(AnalysisBackend):
    """Online strict-2PL conformance checking of atomic blocks.

    Args:
        require_protection: also flag accesses made while holding no
            lock at all (full strict 2PL).  When False, only the
            two-phase shape (no acquire after release, no access to
            data whose lock was already released) is enforced.
        report_once_per_block: one warning per dynamic block instance.
    """

    name = "2PL"

    def __init__(
        self,
        require_protection: bool = True,
        report_once_per_block: bool = True,
    ):
        super().__init__()
        self.require_protection = require_protection
        self.report_once_per_block = report_once_per_block
        self._held: dict[int, set[str]] = {}
        self._stacks: dict[int, list[_TxState]] = {}
        # Per-kind dispatch table, one lookup per event.
        self._handlers = {
            OpKind.BEGIN: self._begin,
            OpKind.END: self._end,
            OpKind.ACQUIRE: self._acquire,
            OpKind.RELEASE: self._release,
            OpKind.READ: self._access,
            OpKind.WRITE: self._access,
        }

    def held(self, tid: int) -> set[str]:
        """Locks currently held by thread ``tid``."""
        return self._held.setdefault(tid, set())

    # ----------------------------------------------------------- process
    def process(self, op: Operation) -> None:
        # Overrides the base class to fold the process -> _process call
        # into a single frame.
        self._handlers[op.kind](op, self.events_processed)
        self.events_processed += 1

    def _process(self, op: Operation, position: int) -> None:
        self._handlers[op.kind](op, position)

    def _begin(self, op: Operation, position: int) -> None:
        stack = self._stacks.setdefault(op.tid, [])
        if not stack:
            stack.append(_TxState(op.label))
        else:
            stack.append(stack[0])

    def _end(self, op: Operation, position: int) -> None:
        stack = self._stacks.get(op.tid)
        if stack:
            stack.pop()

    def _current_tx(self, tid: int) -> Optional[_TxState]:
        stack = self._stacks.get(tid)
        return stack[0] if stack else None

    def _acquire(self, op: Operation, position: int) -> None:
        tx = self._current_tx(op.tid)
        if tx is not None and tx.shrinking:
            self._violation(
                tx, op, position,
                f"acquire of {op.target} in the shrinking phase",
            )
        self.held(op.tid).add(op.target)

    def _release(self, op: Operation, position: int) -> None:
        self.held(op.tid).discard(op.target)
        tx = self._current_tx(op.tid)
        if tx is not None:
            tx.shrinking = True
            tx.released.add(op.target)

    def _access(self, op: Operation, position: int) -> None:
        # An access inside a transaction: strictness requires a
        # protecting lock that has not been released early.
        tx = self._current_tx(op.tid)
        if tx is not None and self.require_protection and not self.held(op.tid):
            self._violation(
                tx, op, position,
                f"unprotected access to {op.target}",
            )

    def _violation(
        self, tx: _TxState, op: Operation, position: int, why: str
    ) -> None:
        if tx.violated and self.report_once_per_block:
            return
        tx.violated = True
        self.report(
            reduction_warning(
                self.name,
                tx.label,
                op.tid,
                position,
                f"strict 2PL violated in {tx.label!r}: {why} ({op})",
            )
        )
