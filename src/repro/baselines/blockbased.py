"""Single-variable interleaving-pattern detection (block-based style).

Wang and Stoller's block-based algorithms (paper Section 7) check
pairs of accesses by one transaction against interleaved remote
accesses; the same classification underlies AVIO-style bug detectors.
For one variable, with a local access pair ``(first, second)`` and one
remote access ``r`` observed between them, four of the eight
read/write combinations are unserializable:

    rd .. wr(remote) .. rd    (the two reads disagree)
    wr .. rd(remote) .. wr    (remote sees a dirty intermediate)
    wr .. wr(remote) .. rd    (local read sees the remote value)
    rd .. wr(remote) .. wr    (remote update lost between rd and wr)

On the *observed* trace each pattern witnesses a genuine two-node
happens-before cycle, so this detector is precise for what it looks at
— but it looks only at single-variable, single-remote-access shapes.
Multi-variable cycles (the paper's introduction example, the D/E trace)
and lock-induced cycles escape it entirely: the precision gap between
pattern-based tools and Velodrome, made executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.core.reports import atomicity_warning
from repro.events.operations import Operation, OpKind

#: (first local kind, remote kind, second local kind) -> unserializable.
UNSERIALIZABLE_PATTERNS = frozenset(
    {
        (OpKind.READ, OpKind.WRITE, OpKind.READ),
        (OpKind.WRITE, OpKind.READ, OpKind.WRITE),
        (OpKind.WRITE, OpKind.WRITE, OpKind.READ),
        (OpKind.READ, OpKind.WRITE, OpKind.WRITE),
    }
)


@dataclass
class _VarHistory:
    """Per (transaction, variable): last local access and remote
    accesses observed since."""

    last_local: Optional[OpKind] = None
    remote_since: list[OpKind] = field(default_factory=list)


@dataclass
class _TxState:
    label: Optional[str]
    depth: int = 0
    history: dict[str, _VarHistory] = field(default_factory=dict)
    warned: bool = False


class BlockBasedChecker(AnalysisBackend):
    """Online single-variable pattern checking of atomic blocks."""

    name = "BLOCK-BASED"

    def __init__(self, report_once_per_block: bool = True):
        super().__init__()
        self.report_once_per_block = report_once_per_block
        self._open: dict[int, _TxState] = {}

    def _process(self, op: Operation, position: int) -> None:
        tid = op.tid
        kind = op.kind
        if kind is OpKind.BEGIN:
            state = self._open.get(tid)
            if state is None:
                self._open[tid] = _TxState(op.label, depth=1)
            else:
                state.depth += 1
            return
        if kind is OpKind.END:
            state = self._open.get(tid)
            if state is not None:
                state.depth -= 1
                if state.depth == 0:
                    del self._open[tid]
            return
        if not op.is_access:
            return
        var = op.target
        # Record this access as remote for every other open transaction
        # touching the variable.
        for other_tid, state in self._open.items():
            if other_tid == tid:
                continue
            history = state.history.get(var)
            if history is not None and history.last_local is not None:
                history.remote_since.append(kind)
        # Check this thread's own transaction for a completed pattern.
        state = self._open.get(tid)
        if state is None:
            return
        history = state.history.setdefault(var, _VarHistory())
        if history.last_local is not None:
            for remote in history.remote_since:
                if (history.last_local, remote, kind) in UNSERIALIZABLE_PATTERNS:
                    self._warn(state, op, position, history.last_local,
                               remote)
                    break
        history.last_local = kind
        history.remote_since = []

    def _warn(
        self,
        state: _TxState,
        op: Operation,
        position: int,
        first: OpKind,
        remote: OpKind,
    ) -> None:
        if state.warned and self.report_once_per_block:
            return
        state.warned = True
        self.report(
            atomicity_warning(
                self.name,
                state.label,
                op.tid,
                position,
                f"unserializable pattern "
                f"{first.value}-{remote.value}(remote)-{op.kind.value} "
                f"on {op.target} in block {state.label!r}",
                blamed=True,
            )
        )
