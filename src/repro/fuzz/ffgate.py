"""The fast-forward equivalence gate.

The block-summary fast path (:meth:`~repro.core.backend.
AnalysisBackend.apply_block_summary`) claims to be *invisible*: a
backend that accepts a block's summary must land in exactly the state
an op-by-op replay of that block would have produced.  This module
checks the claim the strong way — not just verdict equality but full
analysis-state equality — across the entire ablation grid:

for every configuration, every trace is checked twice,

* **op path**: the trace replayed operation by operation (fast-forward
  never consulted), and
* **block path**: the trace packed to VTRC v2 and streamed through
  :class:`~repro.pipeline.source.PackedTraceSource`, where summarized
  blocks may fold;

and the two runs must agree on the verdict, every warning string, the
warning label set, the processed-event count, *and* the complete
captured backend state (:func:`~repro.resilience.snapshot.
capture_backend`).  Configurations that always decline (basic, naive
merge) exercise the decode fallback plumbing instead — agreement is
required either way.

Run as a module::

    python -m repro.fuzz.ffgate --budget 200 [--seed S] [--corpus DIR]

replays the persisted corpus first (every shrunken divergence ever
found), then ``budget`` fresh random traces.  Exit status 1 signals a
divergence — the fast path must not ship.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.core.backend import AnalysisBackend
from repro.events.operations import Operation
from repro.fuzz.corpus import DEFAULT_CORPUS
from repro.fuzz.engine import iteration_seeds, trace_for_seed
from repro.fuzz.grid import GridConfig, ablation_grid
from repro.pipeline.core import Pipeline
from repro.pipeline.source import PackedTraceSource, TraceSource
from repro.resilience.snapshot import capture_backend, supports
from repro.store.writer import save_packed


@dataclass(frozen=True)
class FFDivergence:
    """One disagreement between the op path and the block path."""

    source: str  # corpus file or "seed:N"
    config: str
    field: str  # verdict | warnings | labels | events | state
    op_value: str
    block_value: str

    def __str__(self) -> str:
        return (
            f"[{self.source}] {self.config}: {self.field} diverged\n"
            f"  op   : {self.op_value}\n"
            f"  block: {self.block_value}"
        )


def _run_op_path(ops: Sequence[Operation], config: GridConfig):
    backend = config.build()
    Pipeline([backend]).run(TraceSource(ops))
    return backend


def _run_block_path(path, config: GridConfig):
    backend = config.build()
    pipeline = Pipeline([backend])
    pipeline.run(PackedTraceSource(path))
    return backend, pipeline


def _state_digest(backend: AnalysisBackend) -> Optional[str]:
    if not supports(backend):
        return None
    return json.dumps(capture_backend(backend), sort_keys=True)


def _labels(backend: AnalysisBackend) -> list:
    return sorted(
        {str(w.label) for w in backend.warnings}
    )


#: Block sizes the gate packs each trace with.  Fuzz traces are short
#: and thread-interleaved, so the production default (512 ops) would
#: rarely produce a single-tid — i.e. foldable — block; tiny blocks
#: turn nearly every single-tid run into one, and exercise block
#: boundaries (first/last op of a block) far more densely.
GATE_BLOCK_OPS = (4, 16)


def gate_trace(
    ops: Sequence[Operation],
    source: str,
    configs: Optional[Sequence[GridConfig]] = None,
    block_ops: int = GATE_BLOCK_OPS[0],
) -> tuple[list[FFDivergence], int]:
    """Check op-path vs block-path agreement on one trace.

    Returns the divergences plus the number of blocks the grid
    fast-forwarded in total (so callers can report how much of the
    fast path the run actually exercised).
    """
    if configs is None:
        configs = ablation_grid()
    ops = list(ops)
    divergences: list[FFDivergence] = []
    fast_forwarded = 0
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gate.vtrc"
        save_packed(ops, path, block_ops=block_ops)
        for config in configs:
            op_backend = _run_op_path(ops, config)
            block_backend, pipeline = _run_block_path(path, config)
            fast_forwarded += pipeline.metrics().blocks_fast_forwarded

            def diverge(field: str, op_value, block_value) -> None:
                divergences.append(FFDivergence(
                    source=source, config=config.name, field=field,
                    op_value=str(op_value), block_value=str(block_value),
                ))

            if op_backend.error_detected != block_backend.error_detected:
                diverge("verdict", op_backend.error_detected,
                        block_backend.error_detected)
            op_warnings = [str(w) for w in op_backend.warnings]
            block_warnings = [str(w) for w in block_backend.warnings]
            if op_warnings != block_warnings:
                diverge("warnings", op_warnings, block_warnings)
            if _labels(op_backend) != _labels(block_backend):
                diverge("labels", _labels(op_backend),
                        _labels(block_backend))
            if (
                op_backend.events_processed
                != block_backend.events_processed
            ):
                diverge("events", op_backend.events_processed,
                        block_backend.events_processed)
            op_state = _state_digest(op_backend)
            block_state = _state_digest(block_backend)
            if op_state != block_state:
                diverge("state", "<captured state A>",
                        "<captured state B — see snapshots>")
    return divergences, fast_forwarded


def _corpus_traces(corpus: Path):
    from repro.events.serialize import load_trace

    if not corpus.is_dir():
        return
    for path in sorted(corpus.glob("*.jsonl")):
        yield path.name, list(load_trace(path))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.ffgate",
        description="fast-forward vs op-by-op equivalence gate",
    )
    parser.add_argument("--budget", type=int, default=100, metavar="N",
                        help="fresh random traces to gate (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the random traces")
    parser.add_argument("--corpus", default=str(DEFAULT_CORPUS),
                        metavar="DIR",
                        help="replay this corpus directory first")
    parser.add_argument("--quick", action="store_true",
                        help="gate only the four-config smoke grid")
    args = parser.parse_args(argv)

    if args.quick:
        from repro.fuzz.grid import default_grid

        configs = default_grid()
    else:
        configs = ablation_grid()

    failures: list[FFDivergence] = []
    checked = 0
    folded = 0
    for name, ops in _corpus_traces(Path(args.corpus)):
        for block_ops in GATE_BLOCK_OPS:
            divergences, fast = gate_trace(
                ops, f"{name}@b{block_ops}", configs, block_ops
            )
            failures.extend(divergences)
            folded += fast
        checked += 1
    for index, seed in enumerate(
        iteration_seeds(args.seed, args.budget)
    ):
        ops = list(trace_for_seed(seed))
        for block_ops in GATE_BLOCK_OPS:
            divergences, fast = gate_trace(
                ops, f"seed:{seed}@b{block_ops}", configs, block_ops
            )
            failures.extend(divergences)
            folded += fast
        checked += 1
        if (index + 1) % 25 == 0:
            print(f"  ... {index + 1}/{args.budget} fresh traces, "
                  f"{folded} blocks fast-forwarded, "
                  f"{len(failures)} divergences")
    for failure in failures:
        print(failure)
    verdict = "FAIL" if failures else "OK"
    print(f"ffgate: {verdict} — {checked} traces x {len(configs)} "
          f"configs, {folded} blocks fast-forwarded, "
          f"{len(failures)} divergences")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
