"""The region-memoization equivalence gate.

Region memoization (:mod:`repro.core.memo`) claims to be *invisible*:
a backend that accepts a memoized region summary
(:meth:`~repro.core.backend.AnalysisBackend.apply_region_summary`)
must land in exactly the state an op-by-op replay of that region would
have produced.  This module checks the claim the strong way — not just
verdict equality but full analysis-state equality — across the entire
ablation grid.  Every trace is checked three times per configuration:

* **plain path**: the trace replayed operation by operation, no memo
  attached;
* **cold path**: a fresh memo table — every region shape misses, is
  certified by replay, and populates the table (exercising the
  assembler's buffering/flush plumbing and the Nth-occurrence hits
  within the trace);
* **warm path**: a fresh backend driven through the *already
  populated* memo table from the cold run — the very first occurrence
  of each shape is now a hit, exercising the apply path against
  pristine backend state.

All three runs must agree on the verdict, every warning string, the
warning label set, the processed-event count, *and* the complete
captured backend state (:func:`~repro.resilience.snapshot.
capture_backend`) where the backend has a snapshot codec.
Configurations whose backends always decline the summary offer (the
baselines, ``aerodrome`` under clock movement) exercise the decliner
replay plumbing instead — agreement is required either way.

Run as a module::

    python -m repro.fuzz.memogate --budget 200 [--seed S] [--corpus DIR]

replays the persisted corpus first (every shrunken divergence ever
found), then gates the deterministic ``request_loop`` workload trace
(the high-repetition shape memoization exists for), then ``budget``
fresh random traces.  Exit status 1 signals a divergence — the memo
layer must not ship.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.core.backend import AnalysisBackend
from repro.core.memo import RegionMemo
from repro.events.operations import Operation
from repro.fuzz.corpus import DEFAULT_CORPUS
from repro.fuzz.engine import iteration_seeds, trace_for_seed
from repro.fuzz.grid import GridConfig, ablation_grid
from repro.pipeline.core import Pipeline
from repro.pipeline.source import TraceSource
from repro.resilience.snapshot import capture_backend, supports


@dataclass(frozen=True)
class MemoDivergence:
    """One disagreement between the plain path and a memoized path."""

    source: str  # corpus file, workload name, or "seed:N"
    config: str
    path: str  # cold | warm
    field: str  # verdict | warnings | labels | events | state
    plain_value: str
    memo_value: str

    def __str__(self) -> str:
        return (
            f"[{self.source}] {self.config} ({self.path} memo): "
            f"{self.field} diverged\n"
            f"  plain: {self.plain_value}\n"
            f"  memo : {self.memo_value}"
        )


def _run(
    ops: Sequence[Operation],
    config: GridConfig,
    memo: Optional[RegionMemo],
) -> AnalysisBackend:
    backend = config.build()
    Pipeline([backend], memo=memo).run(TraceSource(ops))
    return backend


def _state_digest(backend: AnalysisBackend) -> Optional[str]:
    if not supports(backend):
        return None
    return json.dumps(capture_backend(backend), sort_keys=True)


def _labels(backend: AnalysisBackend) -> list:
    return sorted({str(w.label) for w in backend.warnings})


def _compare(
    source: str,
    config: GridConfig,
    path: str,
    plain: AnalysisBackend,
    memoized: AnalysisBackend,
) -> list[MemoDivergence]:
    divergences: list[MemoDivergence] = []

    def diverge(field: str, plain_value, memo_value) -> None:
        divergences.append(MemoDivergence(
            source=source, config=config.name, path=path, field=field,
            plain_value=str(plain_value), memo_value=str(memo_value),
        ))

    if plain.error_detected != memoized.error_detected:
        diverge("verdict", plain.error_detected, memoized.error_detected)
    plain_warnings = [str(w) for w in plain.warnings]
    memo_warnings = [str(w) for w in memoized.warnings]
    if plain_warnings != memo_warnings:
        diverge("warnings", plain_warnings, memo_warnings)
    if _labels(plain) != _labels(memoized):
        diverge("labels", _labels(plain), _labels(memoized))
    if plain.events_processed != memoized.events_processed:
        diverge("events", plain.events_processed,
                memoized.events_processed)
    plain_state = _state_digest(plain)
    memo_state = _state_digest(memoized)
    if plain_state != memo_state:
        diverge("state", "<captured state A>",
                "<captured state B — see snapshots>")
    return divergences


def gate_trace(
    ops: Sequence[Operation],
    source: str,
    configs: Optional[Sequence[GridConfig]] = None,
) -> tuple[list[MemoDivergence], int]:
    """Check plain vs cold-memo vs warm-memo agreement on one trace.

    Returns the divergences plus the total memo hits across the grid
    (so callers can report how much of the apply path the run actually
    exercised).
    """
    if configs is None:
        configs = ablation_grid()
    ops = list(ops)
    divergences: list[MemoDivergence] = []
    hits = 0
    for config in configs:
        plain = _run(ops, config, memo=None)
        # min_ops=0: the production threshold skips tiny regions for
        # speed, but the gate wants the apply path exercised on every
        # shape the fuzzer produces, small ones included.
        cold_memo = RegionMemo(min_ops=0)
        cold = _run(ops, config, memo=cold_memo)
        divergences.extend(_compare(source, config, "cold", plain, cold))
        cold_hits = cold_memo.hits
        warm_memo = RegionMemo(min_ops=0)
        # Pre-warm with the cold run's certified summaries: the first
        # occurrence of every shape is now a hit against fresh state.
        for key in cold_memo.keys():
            entry = cold_memo.lookup(key)
            if entry is not None and entry is not RegionMemo.PENDING:
                warm_memo.insert(key, entry)
        warm = _run(ops, config, memo=warm_memo)
        divergences.extend(_compare(source, config, "warm", plain, warm))
        hits += cold_hits + warm_memo.hits
    return divergences, hits


def _corpus_traces(corpus: Path):
    from repro.events.serialize import load_trace

    if not corpus.is_dir():
        return
    for path in sorted(corpus.glob("*.jsonl")):
        yield path.name, list(load_trace(path))


def _request_loop_trace() -> list[Operation]:
    """The deterministic high-repetition workload trace."""
    from repro.runtime.tool import run_velodrome
    from repro.workloads import get

    program = get("request_loop").program(1.0)
    result = run_velodrome(program, seed=0, record_trace=True)
    return list(result.trace)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.memogate",
        description="region-memoization vs op-by-op equivalence gate",
    )
    parser.add_argument("--budget", type=int, default=100, metavar="N",
                        help="fresh random traces to gate (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the random traces")
    parser.add_argument("--corpus", default=str(DEFAULT_CORPUS),
                        metavar="DIR",
                        help="replay this corpus directory first")
    parser.add_argument("--quick", action="store_true",
                        help="gate only the four-config smoke grid")
    args = parser.parse_args(argv)

    if args.quick:
        from repro.fuzz.grid import default_grid

        configs = default_grid()
    else:
        configs = ablation_grid()

    failures: list[MemoDivergence] = []
    checked = 0
    applied = 0
    for name, ops in _corpus_traces(Path(args.corpus)):
        divergences, hits = gate_trace(ops, name, configs)
        failures.extend(divergences)
        applied += hits
        checked += 1
    divergences, hits = gate_trace(
        _request_loop_trace(), "request_loop", configs
    )
    failures.extend(divergences)
    applied += hits
    checked += 1
    for index, seed in enumerate(
        iteration_seeds(args.seed, args.budget)
    ):
        ops = list(trace_for_seed(seed))
        divergences, hits = gate_trace(ops, f"seed:{seed}", configs)
        failures.extend(divergences)
        applied += hits
        checked += 1
        if (index + 1) % 25 == 0:
            print(f"  ... {index + 1}/{args.budget} fresh traces, "
                  f"{applied} memo hits, {len(failures)} divergences")
    for failure in failures:
        print(failure)
    verdict = "FAIL" if failures else "OK"
    print(f"memogate: {verdict} — {checked} traces x {len(configs)} "
          f"configs, {applied} memo hits, {len(failures)} divergences")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
