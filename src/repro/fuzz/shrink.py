"""Delta-debugging trace reduction.

When the fuzzer finds a diverging trace, hundreds of events obscure a
core that is usually a handful of operations.  The shrinker reduces the
trace while re-validating after every step that the reduced trace
*still diverges* (the caller supplies the predicate), using four
reductions, cheapest first:

* **thread projection** — drop every operation of one thread;
* **transaction removal** — drop a whole transaction (keeps the trace
  structurally well-formed by construction);
* **event subsequence** — classic ddmin: remove contiguous chunks of
  operations at successively finer granularity;
* **block flattening** — delete a matching ``begin``/``end`` pair,
  turning the block's operations into unary transactions.

Candidates that are structurally malformed (an ``end`` without its
``begin`` after a removal) or make the predicate raise are rejected.
The passes repeat until a full round makes no progress or the
evaluation budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.events.operations import Operation, OpKind
from repro.events.trace import Trace, TraceError

#: Decides whether a candidate trace still exhibits the divergence.
Predicate = Callable[[Trace], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    trace: Trace
    original_events: int
    evaluations: int
    rounds: int

    @property
    def events(self) -> int:
        return len(self.trace)

    @property
    def reduction(self) -> float:
        """Fraction of the original events removed."""
        if not self.original_events:
            return 0.0
        return 1.0 - len(self.trace) / self.original_events


class _Budget:
    """Caps predicate evaluations so shrinking terminates promptly."""

    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def charge(self) -> None:
        self.spent += 1


def _well_formed(ops: Sequence[Operation]) -> Optional[Trace]:
    """The candidate as a trace, or ``None`` if structurally invalid."""
    trace = Trace(ops)
    try:
        trace.transactions()
    except TraceError:
        return None
    return trace


def _try(
    ops: Sequence[Operation], diverges: Predicate, budget: _Budget
) -> Optional[Trace]:
    """The candidate trace if it is well-formed and still diverges."""
    if budget.exhausted:
        return None
    trace = _well_formed(ops)
    if trace is None:
        return None
    budget.charge()
    try:
        if diverges(trace):
            return trace
    except Exception:  # noqa: BLE001 - crashing candidates are rejected
        return None
    return None


def _project_threads(
    trace: Trace, diverges: Predicate, budget: _Budget
) -> Optional[Trace]:
    """Try removing all operations of one thread (largest first)."""
    tids = sorted(
        trace.tids, key=lambda tid: -sum(1 for op in trace if op.tid == tid)
    )
    for tid in tids:
        kept = [op for op in trace if op.tid != tid]
        if not kept or len(kept) == len(trace):
            continue
        candidate = _try(kept, diverges, budget)
        if candidate is not None:
            return candidate
    return None


def _remove_transactions(
    trace: Trace, diverges: Predicate, budget: _Budget
) -> Optional[Trace]:
    """Try dropping one whole transaction (largest first)."""
    transactions = sorted(
        trace.transactions(), key=lambda tx: -len(tx.positions)
    )
    for tx in transactions:
        doomed = set(tx.positions)
        if len(doomed) == len(trace):
            continue
        kept = [op for pos, op in enumerate(trace) if pos not in doomed]
        candidate = _try(kept, diverges, budget)
        if candidate is not None:
            return candidate
    return None


def _ddmin_chunks(
    trace: Trace, diverges: Predicate, budget: _Budget
) -> Optional[Trace]:
    """One ddmin sweep: remove a contiguous chunk, coarsest first."""
    n = len(trace)
    granularity = 2
    while granularity <= n:
        chunk = max(1, n // granularity)
        for start in range(0, n, chunk):
            kept = list(trace[:start]) + list(trace[start + chunk:])
            if not kept or len(kept) == n:
                continue
            candidate = _try(kept, diverges, budget)
            if candidate is not None:
                return candidate
        if chunk == 1 or budget.exhausted:
            break
        granularity *= 2
    return None


def _block_pairs(trace: Trace) -> Iterator[tuple[int, int]]:
    """Positions of matching (begin, end) pairs, innermost last."""
    stacks: dict[int, list[int]] = {}
    for pos, op in enumerate(trace):
        if op.kind is OpKind.BEGIN:
            stacks.setdefault(op.tid, []).append(pos)
        elif op.kind is OpKind.END:
            stack = stacks.get(op.tid)
            if stack:
                yield stack.pop(), pos


def _flatten_blocks(
    trace: Trace, diverges: Predicate, budget: _Budget
) -> Optional[Trace]:
    """Try deleting one begin/end marker pair (contents survive)."""
    for begin_pos, end_pos in sorted(_block_pairs(trace)):
        doomed = {begin_pos, end_pos}
        kept = [op for pos, op in enumerate(trace) if pos not in doomed]
        if not kept:
            continue
        candidate = _try(kept, diverges, budget)
        if candidate is not None:
            return candidate
    return None


_PASSES = (
    _project_threads,
    _remove_transactions,
    _ddmin_chunks,
    _flatten_blocks,
)


def shrink_trace(
    trace: Trace,
    diverges: Predicate,
    max_evaluations: int = 5000,
) -> ShrinkResult:
    """Reduce ``trace`` to a smaller trace on which ``diverges`` holds.

    The original trace must satisfy the predicate; the result always
    does (re-validated after every accepted reduction).  Termination:
    every accepted step strictly shrinks the trace, and rejected
    sweeps end the run, bounded additionally by ``max_evaluations``
    predicate calls.
    """
    if not diverges(trace):
        raise ValueError("original trace does not satisfy the predicate")
    budget = _Budget(max_evaluations)
    original = len(trace)
    rounds = 0
    progressed = True
    while progressed and not budget.exhausted:
        progressed = False
        rounds += 1
        for reduction in _PASSES:
            while True:
                candidate = reduction(trace, diverges, budget)
                if candidate is None:
                    break
                trace = candidate
                progressed = True
    return ShrinkResult(
        trace=trace,
        original_events=original,
        evaluations=budget.spent,
        rounds=rounds,
    )
