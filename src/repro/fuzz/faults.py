"""Crash and fault injection for the differential fuzzer.

Two extra differential probes, layered on the same grid and oracle the
verdict sweep uses:

* **crash recovery** (:func:`crash_recovery_divergences`) — run each
  configuration to a random event ``k``, write a checkpoint file, throw
  the live backend away (the "kill"), restore from the file, and replay
  the remainder.  The recovered run must match the uninterrupted run
  *exactly*: verdict, every warning (label, position, message), in
  order.  Any difference is a ``"crash-recovery"`` divergence.

* **fault-laced streams** (:func:`fault_injection_divergences`) — dump
  the trace as sequenced JSONL, lace it with *recoverable* stream
  faults (duplicated records, interleaved garbage, unknown-operation
  records, blank lines, a torn garbage tail), and feed it through the
  hardened reader of :mod:`repro.resilience.quarantine`.  Because every
  injected fault is one the reader can fully repair — no original
  record is lost — the analysis of the laced stream must again match
  the clean run exactly; mismatches are ``"fault-injection"``
  divergences.

Both probes derive all randomness from the iteration seed, so a
finding reproduces from its seed alone, like every other fuzzer
divergence.
"""

from __future__ import annotations

import io
import json
import random
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.events.serialize import dump_jsonl
from repro.events.trace import Trace
from repro.fuzz.grid import GridConfig, ablation_grid
from repro.fuzz.verdicts import Divergence
from repro.resilience.quarantine import LENIENT, HardenedJsonlSource
from repro.resilience.snapshot import read_snapshot, write_snapshot


def _warning_fingerprint(backend) -> list[tuple]:
    """Everything observable about a backend's warnings, in order."""
    return [
        (w.kind.value, w.label, w.tid, w.position, w.message, w.blamed,
         w.target)
        for w in backend.warnings
    ]


def _run_clean(config: GridConfig, ops: Sequence) -> Optional[object]:
    """The uninterrupted reference run, or ``None`` if it crashes.

    A crashing configuration is the verdict sweep's ``"crash"``
    divergence, not a recovery finding — skip it here.
    """
    backend = config.build()
    try:
        for op in ops:
            backend.process(op)
        backend.finish()
    except Exception:  # noqa: BLE001 - attributed by check_trace
        return None
    return backend


def crash_recovery_divergences(
    trace: Trace,
    configs: Optional[Sequence[GridConfig]] = None,
    seed: int = 0,
    snapshot_dir: Optional[Path] = None,
) -> list[Divergence]:
    """Kill-at-``k`` + restore-from-checkpoint vs the straight run.

    One random kill point is drawn per call (from ``seed``) and applied
    to every configuration, exercising the full snapshot path — capture,
    atomic file write, parse, restore — not just in-memory cloning.
    """
    from repro.resilience.snapshot import supports

    configs = list(ablation_grid() if configs is None else configs)
    ops = list(trace)
    divergences: list[Divergence] = []
    if not ops:
        return divergences
    rng = random.Random(seed)
    kill_at = rng.randrange(len(ops) + 1)
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(snapshot_dir) if snapshot_dir is not None else Path(tmp)
        for index, config in enumerate(configs):
            reference = _run_clean(config, ops)
            if reference is None or not supports(reference):
                continue
            interrupted = config.build()
            try:
                for op in ops[:kill_at]:
                    interrupted.process(op)
            except Exception:  # noqa: BLE001 - crash divergence elsewhere
                continue
            path = directory / f"crash-{index}.json"
            write_snapshot(path, [interrupted], kill_at)
            del interrupted  # the kill: only the file survives
            snapshot = read_snapshot(path)
            [resumed] = snapshot.restore()
            resumed.name = config.name
            try:
                for op in ops[snapshot.position:]:
                    resumed.process(op)
                resumed.finish()
            except Exception as exc:  # noqa: BLE001 - recovery must not crash
                divergences.append(
                    Divergence(
                        kind="crash-recovery",
                        config=config.name,
                        expected=f"clean resume from event {kill_at}",
                        observed=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            expected = _warning_fingerprint(reference)
            observed = _warning_fingerprint(resumed)
            if expected != observed:
                position = next(
                    (
                        i
                        for i, (a, b) in enumerate(zip(expected, observed))
                        if a != b
                    ),
                    min(len(expected), len(observed)),
                )
                divergences.append(
                    Divergence(
                        kind="crash-recovery",
                        config=config.name,
                        expected=(
                            f"{len(expected)} warning(s), identical "
                            f"after resume at event {kill_at}"
                        ),
                        observed=(
                            f"{len(observed)} warning(s); first "
                            f"difference at warning {position}"
                        ),
                    )
                )
    return divergences


def lace_stream(trace: Trace, seed: int, faults: int = 4) -> str:
    """A sequenced JSONL dump of ``trace`` laced with recoverable faults.

    Every injected fault is repairable by the hardened reader without
    losing an original record: duplicated lines (dropped again via
    their ``seq``), inserted garbage / unknown-op / blank lines
    (quarantined), and a torn garbage tail (quarantined).  The repaired
    stream therefore replays to the exact original trace.
    """
    buffer = io.StringIO()
    dump_jsonl(trace, buffer, with_seq=True)
    lines = buffer.getvalue().splitlines(keepends=True)
    rng = random.Random(seed)
    for _ in range(faults):
        kind = rng.choice(("duplicate", "garbage", "unknown-op", "blank"))
        at = rng.randrange(len(lines) + 1)
        if kind == "duplicate" and lines:
            # The copy must land at or after its original: a copy seen
            # first would be delivered and demote the *original* to an
            # out-of-order fault, losing a record — not recoverable.
            source = rng.randrange(len(lines))
            lines.insert(
                rng.randrange(source + 1, len(lines) + 1), lines[source]
            )
        elif kind == "garbage":
            lines.insert(at, '{"kind": "wr", "tid": \n')
        elif kind == "unknown-op":
            record = {"kind": "fence", "tid": rng.randrange(4)}
            lines.insert(at, json.dumps(record) + "\n")
        else:
            lines.insert(at, "\n")
    if rng.random() < 0.5:
        lines.append('{"kind": "rd", "tid": 0, "tar')  # torn tail
    return "".join(lines)


def fault_injection_divergences(
    trace: Trace,
    configs: Optional[Sequence[GridConfig]] = None,
    seed: int = 0,
) -> list[Divergence]:
    """Analysis of a fault-laced stream vs the clean recording."""
    configs = list(ablation_grid() if configs is None else configs)
    ops = list(trace)
    laced = lace_stream(trace, seed)
    divergences: list[Divergence] = []
    for config in configs:
        reference = _run_clean(config, ops)
        if reference is None:
            continue
        hardened = config.build()
        source = HardenedJsonlSource(io.StringIO(laced), policy=LENIENT)
        try:
            delivered = source.run(hardened.process).events
            hardened.finish()
        except Exception as exc:  # noqa: BLE001 - hardening must not crash
            divergences.append(
                Divergence(
                    kind="fault-injection",
                    config=config.name,
                    expected="hardened reader absorbs laced faults",
                    observed=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        if delivered != len(ops):
            divergences.append(
                Divergence(
                    kind="fault-injection",
                    config=config.name,
                    expected=f"{len(ops)} operations delivered",
                    observed=(
                        f"{delivered} delivered "
                        f"({source.quarantine.summary()})"
                    ),
                )
            )
            continue
        if _warning_fingerprint(reference) != _warning_fingerprint(hardened):
            divergences.append(
                Divergence(
                    kind="fault-injection",
                    config=config.name,
                    expected="identical warnings on the laced stream",
                    observed=(
                        f"warnings differ "
                        f"({source.quarantine.summary()})"
                    ),
                )
            )
    return divergences


# --------------------------------------------------------------- serve daemon
def _spool_for_seed(spool: Path, seed: int) -> None:
    """A mixed three-stream spool derived entirely from ``seed``:
    one sequenced JSONL trace, one packed trace, one garbage file."""
    from repro.fuzz.engine import trace_for_seed
    from repro.store.writer import save_packed

    spool.mkdir(parents=True, exist_ok=True)
    jsonl = trace_for_seed(seed)
    packed = trace_for_seed(seed ^ 0x5EED or 1)
    with open(spool / "a.jsonl", "w", encoding="utf-8") as stream:
        dump_jsonl(jsonl, stream, with_seq=True)
    save_packed(packed, spool / "b.vtrc", block_ops=32)
    garbage = random.Random(seed).randbytes(64)
    (spool / "noise.bin").write_bytes(b"\x00\x00" + garbage)


def _serve_outcomes(state_dir: Path) -> dict[str, dict]:
    """Registry verdicts by content digest, from a finished daemon."""
    outcomes: dict[str, dict] = {}
    for path in sorted((state_dir / "streams").glob("*.json")):
        record = json.loads(path.read_text(encoding="utf-8"))
        outcomes[record["digest"]] = {
            "status": record["status"],
            "backends": [
                {
                    "backend": backend["backend"],
                    "verdict": backend["verdict"],
                    "warnings": backend["warnings"],
                    "first_warning": backend["first_warning"],
                    "fingerprint": backend["fingerprint"],
                }
                for backend in (record.get("result") or {}).get(
                    "backends", []
                )
            ],
        }
    return outcomes


def _serve_subprocess(spool: Path, backends: Sequence[str],
                      kill_after: Optional[float]) -> None:
    """Run ``repro serve --oneshot`` over ``spool``; optionally
    ``kill -9`` it after ``kill_after`` seconds instead of waiting."""
    import os
    import signal
    import subprocess
    import sys

    argv = [sys.executable, "-m", "repro", "serve", str(spool),
            "--oneshot", "--checkpoint-every", "16",
            "--settle-seconds", "0", "--poll-interval", "0.01",
            "--retry-attempts", "1"]
    for name in backends:
        argv += ["--backend", name]
    process = subprocess.Popen(
        argv, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    if kill_after is None:
        process.wait(timeout=120)
        return
    try:
        process.wait(timeout=kill_after)
    except subprocess.TimeoutExpired:
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)


def serve_crash_divergences(
    seed: int,
    backends: Sequence[str] = ("velodrome",),
    crash: bool = True,
    tmp_root: Optional[Path] = None,
) -> list[str]:
    """The daemon-level crash-equivalence probe.

    Builds two identical spools from ``seed``.  The *reference* spool
    is drained by an in-process oneshot daemon.  The *subject* spool
    is drained by a subprocess daemon that (with ``crash``) is
    ``kill -9``'d after a seeded delay and then restarted against the
    same spool and state directory.  Every stream must end with an
    identical verdict, warning count, first warning, and full warning
    fingerprint — including snapshot-less backend selections
    (``aerodrome``), which the daemon declares replay-from-origin
    rather than resuming lossily.

    Returns human-readable divergence strings (empty = equivalent).
    """
    from repro.serve import ServeConfig, ServeDaemon

    root = Path(tempfile.mkdtemp(
        prefix=f"serve-fuzz-{seed}-",
        dir=str(tmp_root) if tmp_root else None,
    ))
    reference_spool = root / "reference"
    subject_spool = root / "subject"
    _spool_for_seed(reference_spool, seed)
    _spool_for_seed(subject_spool, seed)

    reference = ServeDaemon(ServeConfig(
        spool_dir=reference_spool, backends=tuple(backends),
        checkpoint_every=16, settle_seconds=0.0, poll_interval=0.01,
    ))
    reference.run(oneshot=True)
    expected = _serve_outcomes(reference_spool / ".serve")

    # Seeded kill point: equivalence must hold wherever the kill
    # lands, including before registration or after completion.
    kill_after = (
        random.Random(seed ^ 0xC4A5).uniform(0.2, 1.5) if crash else None
    )
    _serve_subprocess(subject_spool, backends, kill_after)
    if crash:   # the restart that must pick everything back up
        _serve_subprocess(subject_spool, backends, None)
    observed = _serve_outcomes(subject_spool / ".serve")

    divergences: list[str] = []
    for digest, want in sorted(expected.items()):
        got = observed.get(digest)
        if got is None:
            divergences.append(
                f"serve-crash: stream {digest} missing after restart"
            )
            continue
        if got["status"] != want["status"]:
            divergences.append(
                f"serve-crash: stream {digest} status "
                f"{got['status']!r} != {want['status']!r}"
            )
            continue
        for mine, theirs in zip(want["backends"], got["backends"]):
            for key in ("verdict", "warnings", "first_warning",
                        "fingerprint"):
                if mine[key] != theirs[key]:
                    divergences.append(
                        f"serve-crash: stream {digest} backend "
                        f"{mine['backend']} {key} {theirs[key]!r} != "
                        f"{mine[key]!r}"
                    )
    for digest in sorted(set(observed) - set(expected)):
        divergences.append(
            f"serve-crash: unexpected stream {digest} after restart"
        )
    if not divergences:
        import shutil

        shutil.rmtree(root, ignore_errors=True)
    return divergences
