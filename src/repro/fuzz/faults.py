"""Crash and fault injection for the differential fuzzer.

Two extra differential probes, layered on the same grid and oracle the
verdict sweep uses:

* **crash recovery** (:func:`crash_recovery_divergences`) — run each
  configuration to a random event ``k``, write a checkpoint file, throw
  the live backend away (the "kill"), restore from the file, and replay
  the remainder.  The recovered run must match the uninterrupted run
  *exactly*: verdict, every warning (label, position, message), in
  order.  Any difference is a ``"crash-recovery"`` divergence.

* **fault-laced streams** (:func:`fault_injection_divergences`) — dump
  the trace as sequenced JSONL, lace it with *recoverable* stream
  faults (duplicated records, interleaved garbage, unknown-operation
  records, blank lines, a torn garbage tail), and feed it through the
  hardened reader of :mod:`repro.resilience.quarantine`.  Because every
  injected fault is one the reader can fully repair — no original
  record is lost — the analysis of the laced stream must again match
  the clean run exactly; mismatches are ``"fault-injection"``
  divergences.

Both probes derive all randomness from the iteration seed, so a
finding reproduces from its seed alone, like every other fuzzer
divergence.
"""

from __future__ import annotations

import io
import json
import random
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.events.serialize import dump_jsonl
from repro.events.trace import Trace
from repro.fuzz.grid import GridConfig, ablation_grid
from repro.fuzz.verdicts import Divergence
from repro.resilience.quarantine import LENIENT, HardenedJsonlSource
from repro.resilience.snapshot import read_snapshot, write_snapshot


def _warning_fingerprint(backend) -> list[tuple]:
    """Everything observable about a backend's warnings, in order."""
    return [
        (w.kind.value, w.label, w.tid, w.position, w.message, w.blamed,
         w.target)
        for w in backend.warnings
    ]


def _run_clean(config: GridConfig, ops: Sequence) -> Optional[object]:
    """The uninterrupted reference run, or ``None`` if it crashes.

    A crashing configuration is the verdict sweep's ``"crash"``
    divergence, not a recovery finding — skip it here.
    """
    backend = config.build()
    try:
        for op in ops:
            backend.process(op)
        backend.finish()
    except Exception:  # noqa: BLE001 - attributed by check_trace
        return None
    return backend


def crash_recovery_divergences(
    trace: Trace,
    configs: Optional[Sequence[GridConfig]] = None,
    seed: int = 0,
    snapshot_dir: Optional[Path] = None,
) -> list[Divergence]:
    """Kill-at-``k`` + restore-from-checkpoint vs the straight run.

    One random kill point is drawn per call (from ``seed``) and applied
    to every configuration, exercising the full snapshot path — capture,
    atomic file write, parse, restore — not just in-memory cloning.
    """
    from repro.resilience.snapshot import supports

    configs = list(ablation_grid() if configs is None else configs)
    ops = list(trace)
    divergences: list[Divergence] = []
    if not ops:
        return divergences
    rng = random.Random(seed)
    kill_at = rng.randrange(len(ops) + 1)
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(snapshot_dir) if snapshot_dir is not None else Path(tmp)
        for index, config in enumerate(configs):
            reference = _run_clean(config, ops)
            if reference is None or not supports(reference):
                continue
            interrupted = config.build()
            try:
                for op in ops[:kill_at]:
                    interrupted.process(op)
            except Exception:  # noqa: BLE001 - crash divergence elsewhere
                continue
            path = directory / f"crash-{index}.json"
            write_snapshot(path, [interrupted], kill_at)
            del interrupted  # the kill: only the file survives
            snapshot = read_snapshot(path)
            [resumed] = snapshot.restore()
            resumed.name = config.name
            try:
                for op in ops[snapshot.position:]:
                    resumed.process(op)
                resumed.finish()
            except Exception as exc:  # noqa: BLE001 - recovery must not crash
                divergences.append(
                    Divergence(
                        kind="crash-recovery",
                        config=config.name,
                        expected=f"clean resume from event {kill_at}",
                        observed=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            expected = _warning_fingerprint(reference)
            observed = _warning_fingerprint(resumed)
            if expected != observed:
                position = next(
                    (
                        i
                        for i, (a, b) in enumerate(zip(expected, observed))
                        if a != b
                    ),
                    min(len(expected), len(observed)),
                )
                divergences.append(
                    Divergence(
                        kind="crash-recovery",
                        config=config.name,
                        expected=(
                            f"{len(expected)} warning(s), identical "
                            f"after resume at event {kill_at}"
                        ),
                        observed=(
                            f"{len(observed)} warning(s); first "
                            f"difference at warning {position}"
                        ),
                    )
                )
    return divergences


def lace_stream(trace: Trace, seed: int, faults: int = 4) -> str:
    """A sequenced JSONL dump of ``trace`` laced with recoverable faults.

    Every injected fault is repairable by the hardened reader without
    losing an original record: duplicated lines (dropped again via
    their ``seq``), inserted garbage / unknown-op / blank lines
    (quarantined), and a torn garbage tail (quarantined).  The repaired
    stream therefore replays to the exact original trace.
    """
    buffer = io.StringIO()
    dump_jsonl(trace, buffer, with_seq=True)
    lines = buffer.getvalue().splitlines(keepends=True)
    rng = random.Random(seed)
    for _ in range(faults):
        kind = rng.choice(("duplicate", "garbage", "unknown-op", "blank"))
        at = rng.randrange(len(lines) + 1)
        if kind == "duplicate" and lines:
            # The copy must land at or after its original: a copy seen
            # first would be delivered and demote the *original* to an
            # out-of-order fault, losing a record — not recoverable.
            source = rng.randrange(len(lines))
            lines.insert(
                rng.randrange(source + 1, len(lines) + 1), lines[source]
            )
        elif kind == "garbage":
            lines.insert(at, '{"kind": "wr", "tid": \n')
        elif kind == "unknown-op":
            record = {"kind": "fence", "tid": rng.randrange(4)}
            lines.insert(at, json.dumps(record) + "\n")
        else:
            lines.insert(at, "\n")
    if rng.random() < 0.5:
        lines.append('{"kind": "rd", "tid": 0, "tar')  # torn tail
    return "".join(lines)


def fault_injection_divergences(
    trace: Trace,
    configs: Optional[Sequence[GridConfig]] = None,
    seed: int = 0,
) -> list[Divergence]:
    """Analysis of a fault-laced stream vs the clean recording."""
    configs = list(ablation_grid() if configs is None else configs)
    ops = list(trace)
    laced = lace_stream(trace, seed)
    divergences: list[Divergence] = []
    for config in configs:
        reference = _run_clean(config, ops)
        if reference is None:
            continue
        hardened = config.build()
        source = HardenedJsonlSource(io.StringIO(laced), policy=LENIENT)
        try:
            delivered = source.run(hardened.process).events
            hardened.finish()
        except Exception as exc:  # noqa: BLE001 - hardening must not crash
            divergences.append(
                Divergence(
                    kind="fault-injection",
                    config=config.name,
                    expected="hardened reader absorbs laced faults",
                    observed=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        if delivered != len(ops):
            divergences.append(
                Divergence(
                    kind="fault-injection",
                    config=config.name,
                    expected=f"{len(ops)} operations delivered",
                    observed=(
                        f"{delivered} delivered "
                        f"({source.quarantine.summary()})"
                    ),
                )
            )
            continue
        if _warning_fingerprint(reference) != _warning_fingerprint(hardened):
            divergences.append(
                Divergence(
                    kind="fault-injection",
                    config=config.name,
                    expected="identical warnings on the laced stream",
                    observed=(
                        f"warnings differ "
                        f"({source.quarantine.summary()})"
                    ),
                )
            )
    return divergences
