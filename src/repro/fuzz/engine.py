"""The differential fuzzing loop.

Each iteration draws a seed, generates a random concurrent program
(:mod:`repro.workloads.randomgen`), executes it once under a seeded
scheduler to record a trace, round-trips the recording through the
JSONL serializer (a recording that does not survive ``load(dump(t))``
is itself a divergence), and replays the trace through every ablation
configuration in a single fan-out pass, comparing verdicts, first
warning positions, and label sets against the serialization-graph
oracle (:mod:`repro.fuzz.verdicts`).

On any divergence the trace is delta-debugged down to a minimal
diverging core (:mod:`repro.fuzz.shrink`) and persisted into the
regression corpus (:mod:`repro.fuzz.corpus`).

Seed discipline: iteration ``i`` of ``FuzzEngine(seed=S)`` derives its
seed from ``random.Random(S)`` once, up front, and both the program
*and* the scheduler are seeded from that per-iteration value — so any
repro can be regenerated outside the fuzzer with
``repro random --seed <iteration seed> --record FILE`` followed by
``repro check FILE``.
"""

from __future__ import annotations

import io
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.events.serialize import dump_jsonl, load_jsonl
from repro.events.trace import Trace
from repro.fuzz.corpus import persist_repro
from repro.fuzz.faults import (
    crash_recovery_divergences,
    fault_injection_divergences,
)
from repro.fuzz.grid import GridConfig, ablation_grid
from repro.fuzz.shrink import ShrinkResult, shrink_trace
from repro.fuzz.verdicts import Divergence, TraceCheck, check_trace
from repro.pipeline import PipelineMetrics
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tool import run_with_backends
from repro.workloads.randomgen import GeneratorConfig, random_program


def iteration_seeds(seed: int, budget: int) -> list[int]:
    """The per-iteration seeds of a fuzz run, derived once up front.

    Deriving every seed from one generator before the loop starts means
    no amount of work done *inside* an iteration (shrinking, corpus
    writes) can perturb the seeds of later iterations.
    """
    rng = random.Random(seed)
    return [rng.randrange(1 << 30) for _ in range(budget)]


def trace_for_seed(
    seed: int, generator: Optional[GeneratorConfig] = None
) -> Trace:
    """The recorded trace of random program ``seed``.

    This is *the* seed-to-trace mapping: program and scheduler are both
    seeded with ``seed``, exactly as ``repro random --seed N`` runs it,
    so fuzzer iterations and CLI repros are byte-identical recordings.
    """
    program = random_program(seed, generator)
    result = run_with_backends(
        program, [], scheduler=RandomScheduler(seed), record_trace=True
    )
    return result.trace


def round_trip_divergences(trace: Trace) -> list[Divergence]:
    """Check that the recording survives a JSONL dump/load cycle."""
    buffer = io.StringIO()
    dump_jsonl(trace, buffer)
    buffer.seek(0)
    try:
        reloaded = load_jsonl(buffer)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return [
            Divergence(
                kind="round-trip",
                config="events.serialize",
                expected="load(dump(t)) == t",
                observed=f"{type(exc).__name__}: {exc}",
            )
        ]
    if reloaded != trace:
        position = next(
            (
                i
                for i, (a, b) in enumerate(zip(trace, reloaded))
                if a != b
            ),
            min(len(trace), len(reloaded)),
        )
        return [
            Divergence(
                kind="round-trip",
                config="events.serialize",
                expected="load(dump(t)) == t",
                observed=f"first difference at position {position}",
            )
        ]
    return []


@dataclass(frozen=True)
class FuzzConfig:
    """Tunable shape of one fuzz run.

    ``crash`` adds the crash/fault-injection probes of
    :mod:`repro.fuzz.faults` to every iteration: each configuration is
    additionally killed at a random event and resumed from a
    checkpoint file, and fed a fault-laced copy of the recording
    through the hardened reader — both must reproduce the
    uninterrupted run's warnings exactly.
    """

    budget: int = 100
    seed: int = 0
    shrink: bool = False
    stats: bool = False
    crash: bool = False
    corpus_dir: Optional[Path] = None
    generator: Optional[GeneratorConfig] = None
    configs: Optional[tuple[GridConfig, ...]] = None
    max_shrink_evaluations: int = 5000


@dataclass
class Finding:
    """One diverging iteration, with its (optionally shrunken) repro."""

    index: int
    seed: int
    divergences: tuple[Divergence, ...]
    trace: Trace
    shrunk: Optional[ShrinkResult] = None
    corpus_path: Optional[Path] = None

    @property
    def repro(self) -> Trace:
        """The smallest trace known to exhibit the divergence."""
        return self.shrunk.trace if self.shrunk is not None else self.trace


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    config: FuzzConfig
    iterations: int = 0
    events: int = 0
    serializable: int = 0
    findings: list[Finding] = field(default_factory=list)
    elapsed: float = 0.0
    metrics: Optional[PipelineMetrics] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        verdicts = (
            f"{self.serializable} serializable / "
            f"{self.iterations - self.serializable} not"
        )
        return (
            f"fuzz: {self.iterations} traces, {self.events} events "
            f"({verdicts}), {len(self.findings)} divergence(s) "
            f"in {self.elapsed:.2f}s"
        )


class FuzzEngine:
    """Runs the differential loop described in the module docstring."""

    def __init__(self, config: FuzzConfig):
        self.config = config
        self.grid: tuple[GridConfig, ...] = (
            config.configs if config.configs is not None else ablation_grid()
        )

    def _divergence_predicate(
        self, kinds: frozenset[str], seed: int
    ) -> Callable[[Trace], bool]:
        """True when a candidate still shows a divergence of any
        originally-observed kind (round-trip and crash/fault-injection
        included; the probes reuse the iteration seed so the kill point
        and lacing pattern stay fixed while the trace shrinks)."""

        def still_diverges(candidate: Trace) -> bool:
            observed: list[Divergence] = []
            if "round-trip" in kinds:
                observed.extend(round_trip_divergences(candidate))
            if "crash-recovery" in kinds:
                observed.extend(
                    crash_recovery_divergences(
                        candidate, configs=self.grid, seed=seed
                    )
                )
            if "fault-injection" in kinds:
                observed.extend(
                    fault_injection_divergences(
                        candidate, configs=self.grid, seed=seed
                    )
                )
            check = check_trace(candidate, configs=self.grid)
            observed.extend(check.divergences)
            return any(d.kind in kinds for d in observed)

        return still_diverges

    def _handle_divergence(
        self,
        index: int,
        seed: int,
        trace: Trace,
        divergences: Sequence[Divergence],
    ) -> Finding:
        finding = Finding(
            index=index,
            seed=seed,
            divergences=tuple(divergences),
            trace=trace,
        )
        if self.config.shrink:
            kinds = frozenset(d.kind for d in divergences)
            finding.shrunk = shrink_trace(
                trace,
                self._divergence_predicate(kinds, seed),
                max_evaluations=self.config.max_shrink_evaluations,
            )
        if self.config.corpus_dir is not None:
            finding.corpus_path = persist_repro(
                finding.repro,
                self.config.corpus_dir,
                divergences=finding.divergences,
                seed=seed,
                original_events=len(trace),
            )
        return finding

    def run(
        self, on_finding: Optional[Callable[[Finding], None]] = None
    ) -> FuzzReport:
        """Execute the configured number of iterations."""
        config = self.config
        report = FuzzReport(config=config)
        snapshots: list[PipelineMetrics] = []
        started = time.perf_counter()
        for index, seed in enumerate(
            iteration_seeds(config.seed, config.budget)
        ):
            trace = trace_for_seed(seed, config.generator)
            report.iterations += 1
            report.events += len(trace)
            divergences = list(round_trip_divergences(trace))
            check: TraceCheck = check_trace(
                trace, configs=self.grid, stats=config.stats
            )
            if check.serializable:
                report.serializable += 1
            if config.stats and check.metrics is not None:
                snapshots.append(check.metrics)
            divergences.extend(check.divergences)
            if config.crash:
                divergences.extend(
                    crash_recovery_divergences(
                        trace, configs=self.grid, seed=seed
                    )
                )
                divergences.extend(
                    fault_injection_divergences(
                        trace, configs=self.grid, seed=seed
                    )
                )
            if divergences:
                finding = self._handle_divergence(
                    index, seed, trace, divergences
                )
                report.findings.append(finding)
                if on_finding is not None:
                    on_finding(finding)
        report.elapsed = time.perf_counter() - started
        if snapshots:
            report.metrics = PipelineMetrics.aggregate(snapshots)
        return report


def fuzz(
    budget: int = 100,
    seed: int = 0,
    **options,
) -> FuzzReport:
    """One-call entry point: ``fuzz(budget, seed).clean`` is the claim
    Theorem 1 makes about this codebase."""
    return FuzzEngine(FuzzConfig(budget=budget, seed=seed, **options)).run()
