"""The differential fuzzing loop.

Each iteration draws a seed, generates a random concurrent program
(:mod:`repro.workloads.randomgen`), executes it once under a seeded
scheduler to record a trace, round-trips the recording through the
JSONL serializer (a recording that does not survive ``load(dump(t))``
is itself a divergence), and replays the trace through every ablation
configuration in a single fan-out pass, comparing verdicts, first
warning positions, and label sets against the serialization-graph
oracle (:mod:`repro.fuzz.verdicts`).

On any divergence the trace is delta-debugged down to a minimal
diverging core (:mod:`repro.fuzz.shrink`) and persisted into the
regression corpus (:mod:`repro.fuzz.corpus`).

Seed discipline: iteration ``i`` of ``FuzzEngine(seed=S)`` derives its
seed from ``random.Random(S)`` once, up front, and both the program
*and* the scheduler are seeded from that per-iteration value — so any
repro can be regenerated outside the fuzzer with
``repro random --seed <iteration seed> --record FILE`` followed by
``repro check FILE``.
"""

from __future__ import annotations

import io
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.events.serialize import dump_jsonl, load_jsonl
from repro.events.trace import Trace
from repro.fuzz.corpus import persist_repro
from repro.fuzz.faults import (
    crash_recovery_divergences,
    fault_injection_divergences,
)
from repro.fuzz.grid import (
    GridConfig,
    ablation_grid,
    ship_grid,
)
from repro.fuzz.shrink import ShrinkResult, shrink_trace
from repro.fuzz.verdicts import Divergence, TraceCheck, check_trace
from repro.pipeline import PipelineMetrics
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tool import run_with_backends
from repro.workloads.randomgen import GeneratorConfig, random_program


def iteration_seed(seed: int, index: int) -> int:
    """The seed of fuzz iteration ``index`` under base seed ``seed``.

    Derived from ``(seed, index)`` alone — no shared generator state —
    so iteration ``i`` draws the same seed whether the run is serial,
    sharded across 4 workers, or resumed mid-budget: the generated
    trace corpus depends only on the base seed, never on worker count
    or scheduling.  String seeding hashes through SHA-512 inside
    ``random.Random``, so the value is stable across processes and
    independent of ``PYTHONHASHSEED``.
    """
    return random.Random(f"{seed}/{index}").randrange(1 << 30)


def iteration_seeds(seed: int, budget: int) -> list[int]:
    """The per-iteration seeds of a fuzz run, derived once up front.

    Deriving every seed independently of the loop means no amount of
    work done *inside* an iteration (shrinking, corpus writes) can
    perturb the seeds of later iterations, and any prefix of a longer
    run is seed-identical to a shorter one.
    """
    return [iteration_seed(seed, index) for index in range(budget)]


#: Roughly one in this many fuzz seeds draws a server-shaped workload
#: (at its family's small fuzz scale) instead of a random program, so
#: the differential grid also chews on realistic sharing patterns.
SERVER_POOL_PERIOD = 8


def server_pool_family(seed: int):
    """The server family ``seed`` draws, or ``None`` for most seeds.

    The draw hangs off ``seed`` alone (string seeding, so stable
    across processes): the same seed always maps to the same family —
    or to none, in which case the seed generates a random program as
    before.  Returns a :class:`~repro.workloads.server.ServerFamily`.
    """
    from repro.workloads.server import server_families

    rng = random.Random(f"{seed}/server")
    if rng.randrange(SERVER_POOL_PERIOD) != 0:
        return None
    families = server_families()
    return families[rng.randrange(len(families))]


def program_for_seed(seed: int, generator: Optional[GeneratorConfig] = None):
    """The program fuzz seed ``seed`` executes.

    Most seeds build a random program; about one in
    :data:`SERVER_POOL_PERIOD` builds a server workload from the
    seed-trace pool at its family's fuzz scale, with the seed feeding
    the workload's internal mix generator.  An explicit ``generator``
    config opts out of the pool: the caller asked for a specific
    random-program shape, and a server workload would ignore it.
    """
    if generator is None:
        family = server_pool_family(seed)
        if family is not None:
            return family.workload.build(family.fuzz_scale, seed=seed)
    return random_program(seed, generator)


def trace_for_seed(
    seed: int, generator: Optional[GeneratorConfig] = None
) -> Trace:
    """The recorded trace of fuzz seed ``seed``.

    This is *the* seed-to-trace mapping: the program (random, or a
    server workload for pool seeds — see :func:`program_for_seed`) and
    the scheduler are both seeded with ``seed``, exactly as ``repro
    random --seed N`` runs it, so fuzzer iterations and CLI repros are
    byte-identical recordings.
    """
    program = program_for_seed(seed, generator)
    result = run_with_backends(
        program, [], scheduler=RandomScheduler(seed), record_trace=True
    )
    return result.trace


def _compare_round_trip(
    trace: Trace, reloaded: Trace, config: str
) -> list[Divergence]:
    if reloaded == trace:
        return []
    position = next(
        (
            i
            for i, (a, b) in enumerate(zip(trace, reloaded))
            if a != b
        ),
        min(len(trace), len(reloaded)),
    )
    return [
        Divergence(
            kind="round-trip",
            config=config,
            expected="load(dump(t)) == t",
            observed=f"first difference at position {position}",
        )
    ]


def round_trip_divergences(trace: Trace) -> list[Divergence]:
    """Check that the recording survives both lossless codecs.

    Every iteration's trace is round-tripped through the JSONL
    serializer *and* the packed binary store (:mod:`repro.store`,
    encoded to an in-memory buffer) — an encoding that loses or
    reorders a single operation is itself a divergence, caught with
    the same seed discipline as an analysis bug.
    """
    from repro.store.reader import PackedTraceReader
    from repro.store.writer import PackedTraceWriter

    divergences: list[Divergence] = []
    buffer = io.StringIO()
    dump_jsonl(trace, buffer)
    buffer.seek(0)
    try:
        reloaded = load_jsonl(buffer)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        divergences.append(
            Divergence(
                kind="round-trip",
                config="events.serialize",
                expected="load(dump(t)) == t",
                observed=f"{type(exc).__name__}: {exc}",
            )
        )
    else:
        divergences.extend(
            _compare_round_trip(trace, reloaded, "events.serialize")
        )
    packed = io.BytesIO()
    try:
        with PackedTraceWriter(packed) as writer:
            writer.write_all(trace)
        repacked = PackedTraceReader(packed).read()
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        divergences.append(
            Divergence(
                kind="round-trip",
                config="store.packed",
                expected="load(dump(t)) == t",
                observed=f"{type(exc).__name__}: {exc}",
            )
        )
    else:
        divergences.extend(
            _compare_round_trip(trace, repacked, "store.packed")
        )
    return divergences


@dataclass(frozen=True)
class FuzzConfig:
    """Tunable shape of one fuzz run.

    ``crash`` adds the crash/fault-injection probes of
    :mod:`repro.fuzz.faults` to every iteration: each configuration is
    additionally killed at a random event and resumed from a
    checkpoint file, and fed a fault-laced copy of the recording
    through the hardened reader — both must reproduce the
    uninterrupted run's warnings exactly.

    ``corpus_format`` selects how repros are persisted (``"jsonl"``
    or the packed ``"vtrc"`` store); either loads back identically
    and dedupes against the other by content hash.

    ``jobs`` > 1 shards iterations across worker processes
    (:mod:`repro.parallel`); seeds derive per-iteration from
    ``(seed, index)``, results merge in iteration order, and corpus
    writes stay in the parent, so the report, console output, and
    corpus are byte-identical to a serial run (elapsed time aside).
    """

    budget: int = 100
    seed: int = 0
    shrink: bool = False
    stats: bool = False
    crash: bool = False
    corpus_dir: Optional[Path] = None
    corpus_format: str = "jsonl"
    generator: Optional[GeneratorConfig] = None
    configs: Optional[tuple[GridConfig, ...]] = None
    max_shrink_evaluations: int = 5000
    jobs: int = 1


@dataclass
class Finding:
    """One diverging iteration, with its (optionally shrunken) repro."""

    index: int
    seed: int
    divergences: tuple[Divergence, ...]
    trace: Trace
    shrunk: Optional[ShrinkResult] = None
    corpus_path: Optional[Path] = None

    @property
    def repro(self) -> Trace:
        """The smallest trace known to exhibit the divergence."""
        return self.shrunk.trace if self.shrunk is not None else self.trace


@dataclass
class IterationOutcome:
    """Everything one fuzz iteration established, in picklable form.

    This is the unit of work the ``--jobs`` sharding ships between
    processes: the worker generates, checks, and (optionally) shrinks;
    the parent merges outcomes in iteration order and performs every
    side effect (corpus writes, callbacks).  ``trace`` is carried only
    for diverging iterations, so clean iterations cross the process
    boundary as a few dozen bytes.
    """

    index: int
    seed: int
    events: int
    serializable: bool
    divergences: tuple[Divergence, ...]
    trace: Optional[Trace] = None
    shrunk: Optional[ShrinkResult] = None
    metrics: Optional[PipelineMetrics] = None


@dataclass
class FuzzReport:
    """Outcome of one fuzz run.

    ``shard_failures`` is non-empty only for parallel runs in which a
    worker process died or timed out: each entry describes one failed
    shard (its iterations were not checked).  Failed shards make the
    run not :attr:`clean`.
    """

    config: FuzzConfig
    iterations: int = 0
    events: int = 0
    serializable: int = 0
    findings: list[Finding] = field(default_factory=list)
    elapsed: float = 0.0
    metrics: Optional[PipelineMetrics] = None
    shard_failures: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.shard_failures

    def summary(self) -> str:
        verdicts = (
            f"{self.serializable} serializable / "
            f"{self.iterations - self.serializable} not"
        )
        failed = (
            f", {len(self.shard_failures)} failed shard(s)"
            if self.shard_failures
            else ""
        )
        return (
            f"fuzz: {self.iterations} traces, {self.events} events "
            f"({verdicts}), {len(self.findings)} divergence(s) "
            f"in {self.elapsed:.2f}s{failed}"
        )


class FuzzEngine:
    """Runs the differential loop described in the module docstring."""

    def __init__(self, config: FuzzConfig):
        self.config = config
        self.grid: tuple[GridConfig, ...] = (
            config.configs if config.configs is not None else ablation_grid()
        )

    def _divergence_predicate(
        self, kinds: frozenset[str], seed: int
    ) -> Callable[[Trace], bool]:
        """True when a candidate still shows a divergence of any
        originally-observed kind (round-trip and crash/fault-injection
        included; the probes reuse the iteration seed so the kill point
        and lacing pattern stay fixed while the trace shrinks)."""

        def still_diverges(candidate: Trace) -> bool:
            observed: list[Divergence] = []
            if "round-trip" in kinds:
                observed.extend(round_trip_divergences(candidate))
            if "crash-recovery" in kinds:
                observed.extend(
                    crash_recovery_divergences(
                        candidate, configs=self.grid, seed=seed
                    )
                )
            if "fault-injection" in kinds:
                observed.extend(
                    fault_injection_divergences(
                        candidate, configs=self.grid, seed=seed
                    )
                )
            check = check_trace(candidate, configs=self.grid)
            observed.extend(check.divergences)
            return any(d.kind in kinds for d in observed)

        return still_diverges

    def check_iteration(self, index: int, seed: int) -> IterationOutcome:
        """Generate, check, and (optionally) shrink one iteration.

        Pure with respect to the engine: no corpus writes, no report
        mutation — exactly the work a ``--jobs`` shard performs in its
        worker process.  The parent applies side effects while merging.
        """
        config = self.config
        trace = trace_for_seed(seed, config.generator)
        divergences = list(round_trip_divergences(trace))
        check: TraceCheck = check_trace(
            trace, configs=self.grid, stats=config.stats
        )
        divergences.extend(check.divergences)
        if config.crash:
            divergences.extend(
                crash_recovery_divergences(trace, configs=self.grid, seed=seed)
            )
            divergences.extend(
                fault_injection_divergences(
                    trace, configs=self.grid, seed=seed
                )
            )
        shrunk: Optional[ShrinkResult] = None
        if divergences and config.shrink:
            kinds = frozenset(d.kind for d in divergences)
            shrunk = shrink_trace(
                trace,
                self._divergence_predicate(kinds, seed),
                max_evaluations=config.max_shrink_evaluations,
            )
        return IterationOutcome(
            index=index,
            seed=seed,
            events=len(trace),
            serializable=check.serializable,
            divergences=tuple(divergences),
            trace=trace if divergences else None,
            shrunk=shrunk,
            metrics=check.metrics if config.stats else None,
        )

    def _merge_outcome(
        self,
        report: FuzzReport,
        snapshots: list[PipelineMetrics],
        outcome: IterationOutcome,
        on_finding: Optional[Callable[[Finding], None]],
    ) -> None:
        """Fold one iteration's outcome into the report, side effects
        included — called in iteration order for serial and parallel
        runs alike, which is what makes their output identical."""
        report.iterations += 1
        report.events += outcome.events
        if outcome.serializable:
            report.serializable += 1
        if outcome.metrics is not None:
            snapshots.append(outcome.metrics)
        if not outcome.divergences:
            return
        finding = Finding(
            index=outcome.index,
            seed=outcome.seed,
            divergences=outcome.divergences,
            trace=outcome.trace,
            shrunk=outcome.shrunk,
        )
        if self.config.corpus_dir is not None:
            finding.corpus_path = persist_repro(
                finding.repro,
                self.config.corpus_dir,
                divergences=finding.divergences,
                seed=outcome.seed,
                original_events=len(outcome.trace),
                fmt=self.config.corpus_format,
            )
        report.findings.append(finding)
        if on_finding is not None:
            on_finding(finding)

    def _parallel_outcomes(
        self, seeds: Sequence[int], report: FuzzReport
    ) -> list[IterationOutcome]:
        """Fan iterations out across worker processes (``jobs > 1``).

        Shards come back in iteration order whatever order workers
        finished in; a shard whose worker crashed or hung is recorded
        in ``report.shard_failures`` instead of aborting the batch.
        """
        # Deferred import: repro.parallel.tasks imports this module.
        from repro.parallel.executor import run_shards
        from repro.parallel.tasks import FuzzIterationTask, run_fuzz_iteration

        config = self.config
        names, shipped = ship_grid(self.grid)  # raises before forking
        tasks = [
            FuzzIterationTask(
                index=index,
                seed=seed,
                shrink=config.shrink,
                stats=config.stats,
                crash=config.crash,
                max_shrink_evaluations=config.max_shrink_evaluations,
                generator=config.generator,
                config_names=names,
                configs=shipped,
            )
            for index, seed in enumerate(seeds)
        ]
        outcomes: list[IterationOutcome] = []
        for shard in run_shards(run_fuzz_iteration, tasks, jobs=config.jobs):
            if shard.ok:
                outcomes.append(shard.value)
            else:
                report.shard_failures.append(
                    f"iteration {shard.index} (seed {seeds[shard.index]}): "
                    f"{shard.error.strip().splitlines()[-1]}"
                )
        return outcomes

    def run(
        self,
        on_finding: Optional[Callable[[Finding], None]] = None,
        stop_check: Optional[Callable[[], None]] = None,
    ) -> FuzzReport:
        """Execute the configured number of iterations.

        ``stop_check`` is called between iterations and may raise
        :class:`~repro.resilience.shutdown.ShutdownRequested`; the run
        then stops cleanly with the iterations merged so far (the
        report stays internally consistent — a fuzz campaign has no
        cross-iteration state to checkpoint).
        """
        from repro.resilience.shutdown import ShutdownRequested

        config = self.config
        report = FuzzReport(config=config)
        snapshots: list[PipelineMetrics] = []
        started = time.perf_counter()
        seeds = iteration_seeds(config.seed, config.budget)
        if config.jobs > 1 and config.budget > 1:
            outcomes = self._parallel_outcomes(seeds, report)
        else:
            outcomes = (
                self.check_iteration(index, seed)
                for index, seed in enumerate(seeds)
            )
        try:
            for outcome in outcomes:
                if stop_check is not None:
                    stop_check()
                self._merge_outcome(report, snapshots, outcome, on_finding)
        except ShutdownRequested:
            pass   # partial campaign; caller reports the interruption
        report.elapsed = time.perf_counter() - started
        if snapshots:
            report.metrics = PipelineMetrics.aggregate(snapshots)
        return report


def fuzz(
    budget: int = 100,
    seed: int = 0,
    **options,
) -> FuzzReport:
    """One-call entry point: ``fuzz(budget, seed).clean`` is the claim
    Theorem 1 makes about this codebase."""
    return FuzzEngine(FuzzConfig(budget=budget, seed=seed, **options)).run()
