"""The regression corpus: shrunken repro traces the suite replays.

Every divergence the fuzzer finds is minimized and persisted here as a
plain JSONL recording (loadable by ``repro check`` like any other
trace) plus a ``.meta.json`` sidecar recording provenance: the seed,
the diverging configurations, and the oracle's verdict at capture
time.  ``tests/test_corpus.py`` replays every corpus trace through the
full ablation grid on each run, so a reintroduced bug in any backend
fails the build even after the original fix's unit test has rotted.

Corpus entries need not be divergent *today* — after the bug they
captured is fixed, they are agreement regressions: traces on which all
configurations and the oracle must keep agreeing forever.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.events.serialize import dump_jsonl, load_trace
from repro.events.trace import Trace
from repro.fuzz.grid import GridConfig
from repro.fuzz.verdicts import Divergence, TraceCheck, check_trace

PathLike = Union[str, Path]

#: The default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path("tests") / "corpus"


def trace_digest(trace: Trace) -> str:
    """A short content hash naming a corpus entry."""
    buffer = io.StringIO()
    dump_jsonl(trace, buffer)
    return hashlib.sha256(buffer.getvalue().encode("utf-8")).hexdigest()[:12]


def _portable(value: object) -> object:
    """``value`` as JSON-friendly data (repr for non-primitives)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def persist_repro(
    trace: Trace,
    directory: PathLike,
    divergences: Sequence[Divergence] = (),
    seed: Optional[int] = None,
    original_events: Optional[int] = None,
) -> Path:
    """Write ``trace`` (and its provenance sidecar) into the corpus.

    Returns the path of the ``.jsonl`` recording.  Writing the same
    trace twice is idempotent — the name is a content hash.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = f"div-{trace_digest(trace)}"
    path = directory / f"{name}.jsonl"
    with path.open("w", encoding="utf-8") as stream:
        dump_jsonl(trace, stream)
    meta = {
        "events": len(trace),
        "divergences": [
            {
                "kind": d.kind,
                "config": d.config,
                "expected": _portable(d.expected),
                "observed": _portable(d.observed),
            }
            for d in divergences
        ],
    }
    if seed is not None:
        meta["seed"] = seed
    if original_events is not None:
        meta["original_events"] = original_events
    meta_path = directory / f"{name}.meta.json"
    meta_path.write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def corpus_traces(directory: PathLike) -> list[tuple[Path, Trace]]:
    """All corpus recordings, sorted by name for stable replay order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_trace(path))
        for path in sorted(directory.glob("*.jsonl"))
    ]


def replay_corpus(
    directory: PathLike,
    configs: Optional[Sequence[GridConfig]] = None,
    crash: bool = False,
    seed: int = 0,
    jobs: int = 1,
) -> dict[Path, TraceCheck]:
    """Re-check every corpus trace across the grid.

    Returns the per-file :class:`~repro.fuzz.verdicts.TraceCheck`; a
    clean corpus has ``check.clean`` true for every entry.  With
    ``crash``, each trace additionally runs the kill/resume and
    fault-laced-stream probes of :mod:`repro.fuzz.faults` — corpus
    traces are exactly the ones that found bugs before, so they make
    the sharpest recovery regressions.

    ``jobs`` > 1 replays files in worker processes (one shard per
    recording, merged in name order, so the result dict is identical
    to a serial replay).  A shard whose worker died is reported as a
    synthetic ``shard`` divergence on its file rather than aborting
    the batch.
    """
    checks: dict[Path, TraceCheck] = {}
    if jobs <= 1:
        # Direct serial path: works with *any* GridConfig objects,
        # including ad-hoc ones that have no ablation-grid name.
        from dataclasses import replace

        from repro.fuzz.faults import (
            crash_recovery_divergences,
            fault_injection_divergences,
        )

        for path, trace in corpus_traces(directory):
            check = check_trace(trace, configs=configs)
            if crash:
                extra = [
                    *crash_recovery_divergences(
                        trace, configs=configs, seed=seed
                    ),
                    *fault_injection_divergences(
                        trace, configs=configs, seed=seed
                    ),
                ]
                if extra:
                    check = replace(
                        check, divergences=(*check.divergences, *extra)
                    )
            checks[path] = check
        return checks

    from repro.fuzz.grid import ship_grid
    from repro.parallel.executor import run_shards
    from repro.parallel.tasks import CorpusReplayTask, run_corpus_replay

    path_root = Path(directory)
    paths = (
        sorted(path_root.glob("*.jsonl")) if path_root.is_dir() else []
    )
    names, shipped = ship_grid(configs)  # raises before forking
    tasks = [
        CorpusReplayTask(
            path=str(path), config_names=names, crash=crash, seed=seed,
            configs=shipped,
        )
        for path in paths
    ]
    for shard in run_shards(run_corpus_replay, tasks, jobs=jobs):
        path = paths[shard.index]
        if shard.ok:
            checks[path] = shard.value
        else:
            checks[path] = TraceCheck(
                serializable=False,
                violation_position=None,
                divergences=(
                    Divergence(
                        kind="shard",
                        config="parallel",
                        expected="replay shard completes",
                        observed=shard.error.strip().splitlines()[-1]
                        if shard.error.strip()
                        else "worker died",
                    ),
                ),
            )
    return checks
