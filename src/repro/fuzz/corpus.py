"""The regression corpus: shrunken repro traces the suite replays.

Every divergence the fuzzer finds is minimized and persisted here as a
plain JSONL recording (loadable by ``repro check`` like any other
trace) plus a ``.meta.json`` sidecar recording provenance: the seed,
the diverging configurations, and the oracle's verdict at capture
time.  ``tests/test_corpus.py`` replays every corpus trace through the
full ablation grid on each run, so a reintroduced bug in any backend
fails the build even after the original fix's unit test has rotted.

Corpus entries need not be divergent *today* — after the bug they
captured is fixed, they are agreement regressions: traces on which all
configurations and the oracle must keep agreeing forever.

Entries may be stored as JSONL or as the packed binary format of
:mod:`repro.store` (``persist_repro(..., fmt="vtrc")``); identity is
the *content* hash of the trace's canonical operation tuples, not of
its file bytes, so a packed and a JSONL recording of the same trace
dedupe to one corpus entry.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.events.operations import Operation
from repro.events.serialize import dump_jsonl, load_trace
from repro.events.trace import Trace
from repro.fuzz.grid import GridConfig
from repro.fuzz.verdicts import Divergence, TraceCheck, check_trace

PathLike = Union[str, Path]

#: The default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path("tests") / "corpus"

#: Recording formats a corpus entry may be stored in.  When the same
#: digest exists in several formats, the earliest listed wins during
#: enumeration (they decode to the same trace by construction).
CORPUS_SUFFIXES = (".jsonl", ".vtrc")


def canonical_operation(op: Operation) -> list:
    """One operation as its canonical identity tuple.

    Mirrors :class:`~repro.events.operations.Operation` equality:
    kind, tid, target, value, and label participate; ``loc`` does not
    (it is ``compare=False`` — diagnostics, not behavior).  Values are
    type-tagged so ``1``, ``1.0``, and ``True`` stay distinct.
    """
    value = op.value
    return [
        op.kind.value,
        op.tid,
        op.target,
        [type(value).__name__, value],
        op.label,
    ]


def trace_digest(trace: Trace) -> str:
    """A short content hash naming a corpus entry.

    Hashes the canonical operation tuples, not serialized file bytes:
    every lossless encoding of the same trace — JSONL, packed, with or
    without ``seq`` fields — digests identically.
    """
    canonical = json.dumps(
        [canonical_operation(op) for op in trace],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _portable(value: object) -> object:
    """``value`` as JSON-friendly data (repr for non-primitives)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def persist_repro(
    trace: Trace,
    directory: PathLike,
    divergences: Sequence[Divergence] = (),
    seed: Optional[int] = None,
    original_events: Optional[int] = None,
    fmt: str = "jsonl",
) -> Path:
    """Write ``trace`` (and its provenance sidecar) into the corpus.

    Returns the path of the recording (``fmt`` is ``"jsonl"`` or
    ``"vtrc"``).  Writing the same trace twice is idempotent — the
    name is a *content* hash over canonical operation tuples, so a
    trace already present in any format is never duplicated: the
    existing recording's path is returned unchanged.
    """
    if fmt not in ("jsonl", "vtrc"):
        raise ValueError(f"unknown corpus format {fmt!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = f"div-{trace_digest(trace)}"
    for suffix in CORPUS_SUFFIXES:
        existing = directory / f"{name}{suffix}"
        if existing.exists():
            return existing
    path = directory / f"{name}.{fmt}"
    if fmt == "vtrc":
        from repro.store.writer import save_packed

        save_packed(trace, path)
    else:
        with path.open("w", encoding="utf-8") as stream:
            dump_jsonl(trace, stream)
    meta = {
        "digest": name.removeprefix("div-"),
        "events": len(trace),
        "divergences": [
            {
                "kind": d.kind,
                "config": d.config,
                "expected": _portable(d.expected),
                "observed": _portable(d.observed),
            }
            for d in divergences
        ],
    }
    if seed is not None:
        meta["seed"] = seed
    if original_events is not None:
        meta["original_events"] = original_events
    meta_path = directory / f"{name}.meta.json"
    meta_path.write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def corpus_paths(directory: PathLike) -> list[Path]:
    """Corpus recording paths, deduplicated and in stable replay order.

    Enumerates both storage formats; when one digest is present as
    JSONL *and* packed, only the preferred format's file is listed
    (the two decode to the same trace — content hashing guarantees
    it), so replays see each trace exactly once.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    by_stem: dict[str, Path] = {}
    for suffix in CORPUS_SUFFIXES:
        for path in directory.glob(f"*{suffix}"):
            by_stem.setdefault(path.stem, path)
    return [by_stem[stem] for stem in sorted(by_stem)]


def corpus_traces(directory: PathLike) -> list[tuple[Path, Trace]]:
    """All corpus recordings, sorted by name for stable replay order."""
    return [
        (path, load_trace(path)) for path in corpus_paths(directory)
    ]


def replay_corpus(
    directory: PathLike,
    configs: Optional[Sequence[GridConfig]] = None,
    crash: bool = False,
    seed: int = 0,
    jobs: int = 1,
) -> dict[Path, TraceCheck]:
    """Re-check every corpus trace across the grid.

    Returns the per-file :class:`~repro.fuzz.verdicts.TraceCheck`; a
    clean corpus has ``check.clean`` true for every entry.  With
    ``crash``, each trace additionally runs the kill/resume and
    fault-laced-stream probes of :mod:`repro.fuzz.faults` — corpus
    traces are exactly the ones that found bugs before, so they make
    the sharpest recovery regressions.

    ``jobs`` > 1 replays files in worker processes (one shard per
    recording, merged in name order, so the result dict is identical
    to a serial replay).  A shard whose worker died is reported as a
    synthetic ``shard`` divergence on its file rather than aborting
    the batch.
    """
    checks: dict[Path, TraceCheck] = {}
    if jobs <= 1:
        # Direct serial path: works with *any* GridConfig objects,
        # including ad-hoc ones that have no ablation-grid name.
        from dataclasses import replace

        from repro.fuzz.faults import (
            crash_recovery_divergences,
            fault_injection_divergences,
        )

        for path, trace in corpus_traces(directory):
            check = check_trace(trace, configs=configs)
            if crash:
                extra = [
                    *crash_recovery_divergences(
                        trace, configs=configs, seed=seed
                    ),
                    *fault_injection_divergences(
                        trace, configs=configs, seed=seed
                    ),
                ]
                if extra:
                    check = replace(
                        check, divergences=(*check.divergences, *extra)
                    )
            checks[path] = check
        return checks

    from repro.fuzz.grid import ship_grid
    from repro.parallel.executor import run_shards
    from repro.parallel.tasks import CorpusReplayTask, run_corpus_replay

    paths = corpus_paths(directory)
    names, shipped = ship_grid(configs)  # raises before forking
    tasks = [
        CorpusReplayTask(
            path=str(path), config_names=names, crash=crash, seed=seed,
            configs=shipped,
        )
        for path in paths
    ]
    for shard in run_shards(run_corpus_replay, tasks, jobs=jobs):
        path = paths[shard.index]
        if shard.ok:
            checks[path] = shard.value
        else:
            checks[path] = TraceCheck(
                serializable=False,
                violation_position=None,
                divergences=(
                    Divergence(
                        kind="shard",
                        config="parallel",
                        expected="replay shard completes",
                        observed=shard.error.strip().splitlines()[-1]
                        if shard.error.strip()
                        else "worker died",
                    ),
                ),
            )
    return checks
