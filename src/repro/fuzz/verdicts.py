"""Differential verdict comparison: grid configurations vs the oracle.

One trace goes through every grid configuration in a single pass (the
pipeline fan-out of PR 1) and the results are compared against the
reference serialization-graph checker on three levels:

* **verdict** — Theorem 1: each configuration must report an error iff
  the trace is not conflict-serializable;
* **first-warning position** — soundness and completeness together pin
  the *operation* at which the first warning fires: the earliest
  operation whose prefix is non-serializable
  (:func:`repro.core.serializability.earliest_violation`);
* **label sets** — configurations in the same
  :attr:`~repro.fuzz.grid.GridConfig.label_family` must name the same
  atomic-block labels in their warnings.

Any mismatch is a :class:`Divergence` — by Theorem 1 a bug by
definition, either in a backend or in the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.serializability import earliest_violation, is_serializable
from repro.events.trace import Trace
from repro.fuzz.grid import GridConfig, ablation_grid
from repro.pipeline import Pipeline, PipelineMetrics, TraceSource


@dataclass(frozen=True)
class Divergence:
    """One disagreement between a configuration and the ground truth.

    Attributes:
        kind: ``"verdict"``, ``"first-warning"``, ``"labels"``,
            ``"crash"``, or ``"round-trip"`` (the last raised by the
            engine's recording check, not by :func:`check_trace`).
        config: name of the diverging grid configuration.
        expected: the oracle's (or reference configuration's) value.
        observed: what the diverging configuration produced.
    """

    kind: str
    config: str
    expected: object
    observed: object

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.config}: "
            f"expected {self.expected!r}, observed {self.observed!r}"
        )


@dataclass(frozen=True)
class TraceCheck:
    """Everything one differential pass over a trace established."""

    serializable: bool
    violation_position: Optional[int]
    divergences: tuple[Divergence, ...]
    metrics: Optional[PipelineMetrics] = None

    @property
    def clean(self) -> bool:
        return not self.divergences


def first_warning_position(backend) -> Optional[int]:
    """Trace position of the backend's earliest warning, if any."""
    return min((w.position for w in backend.warnings), default=None)


def warned_label_set(backend) -> frozenset[str]:
    """The non-None labels named by the backend's warnings."""
    return frozenset(
        w.label for w in backend.warnings if w.label is not None
    )


def check_trace(
    trace: Trace,
    configs: Optional[Sequence[GridConfig]] = None,
    stats: bool = False,
) -> TraceCheck:
    """Replay ``trace`` through every configuration and compare.

    The trace is traversed once: fresh backends for all ``configs``
    (default: the full :func:`~repro.fuzz.grid.ablation_grid`) hang off
    one pipeline fan-out.  A backend that raises is reported as a
    ``"crash"`` divergence rather than aborting the sweep of the
    remaining configurations.
    """
    configs = list(ablation_grid() if configs is None else configs)
    serializable = is_serializable(trace)
    violation = None if serializable else earliest_violation(trace)
    divergences: list[Divergence] = []

    # One fan-out pass over the trace feeds every configuration — the
    # production dispatch path real runs use.  If any backend raises,
    # the sweep is re-done backend-by-backend to attribute the crash
    # and still collect verdicts from the survivors.
    backends: list = [config.build() for config in configs]
    pipeline = Pipeline(backends, stats=stats)
    metrics = None
    try:
        pipeline.run(TraceSource(trace))
        if stats:
            metrics = pipeline.metrics()
    except Exception:  # noqa: BLE001 - attribute the crash below
        backends = []
        for config in configs:
            backend = config.build()
            try:
                backend.process_trace(trace)
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                divergences.append(
                    Divergence(
                        kind="crash",
                        config=config.name,
                        expected="no exception",
                        observed=f"{type(exc).__name__}: {exc}",
                    )
                )
                backend = None
            backends.append(backend)

    label_reference: dict[str, tuple[str, frozenset[str]]] = {}
    for config, backend in zip(configs, backends):
        if backend is None:
            continue
        observed_error = backend.error_detected
        if observed_error != (not serializable):
            divergences.append(
                Divergence(
                    kind="verdict",
                    config=config.name,
                    expected=not serializable,
                    observed=observed_error,
                )
            )
            continue
        position = first_warning_position(backend)
        if position != violation:
            divergences.append(
                Divergence(
                    kind="first-warning",
                    config=config.name,
                    expected=violation,
                    observed=position,
                )
            )
        if config.label_family is not None:
            labels = warned_label_set(backend)
            reference = label_reference.setdefault(
                config.label_family, (config.name, labels)
            )
            if labels != reference[1]:
                divergences.append(
                    Divergence(
                        kind="labels",
                        config=config.name,
                        expected=f"{sorted(reference[1])} ({reference[0]})",
                        observed=sorted(labels),
                    )
                )
    return TraceCheck(
        serializable=serializable,
        violation_position=violation,
        divergences=tuple(divergences),
        metrics=metrics,
    )
