"""The ablation grid: every backend configuration the fuzzer checks.

Theorem 1 makes Velodrome sound *and* complete, so every configuration
of the analysis — basic or optimized, with or without merging, with or
without garbage collection, under either cycle-detection strategy —
must agree with the serialization-graph oracle on every trace.  The
optimizations are exactly where soundness/completeness bugs hide, so
the differential fuzzer sweeps the full grid rather than just the
defaults.

Blame assignment is a different matter: *which* atomic block a warning
names depends on where the first cycle closes, and the Section 4.2
merge rules legitimately move that point (merged unary operations close
cycles at different operations than per-operation nodes do).  Grid
configurations therefore carry a ``label_family``: configurations in
the same family must report identical blamed-label sets, while
configurations in different families are only required to agree on the
verdict and on the position of the first warning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.backend import AnalysisBackend
from repro.core.basic import VelodromeBasic
from repro.core.compact import VelodromeCompact
from repro.core.optimized import VelodromeOptimized


@dataclass(frozen=True)
class GridConfig:
    """One backend configuration participating in the differential run.

    Attributes:
        name: unique human-readable identifier (appears in divergence
            reports and ``--stats`` output).
        factory: zero-argument callable building a fresh backend.
        label_family: configurations sharing a family must produce the
            same set of warning labels on every trace; ``None`` opts
            out of label comparison (verdict and first-warning position
            are still checked).
    """

    name: str
    factory: Callable[[], AnalysisBackend]
    label_family: Optional[str] = None

    def build(self) -> AnalysisBackend:
        """A fresh backend, renamed so reports identify the config."""
        backend = self.factory()
        backend.name = self.name
        return backend


def _basic_configs() -> list[GridConfig]:
    configs = []
    for gc, strategy in itertools.product((True, False), ("ancestors", "dfs")):
        configs.append(
            GridConfig(
                name=f"basic/gc={int(gc)}/{strategy}",
                factory=lambda gc=gc, strategy=strategy: VelodromeBasic(
                    collect_garbage=gc, cycle_strategy=strategy
                ),
                label_family="basic",
            )
        )
    return configs


def _optimized_configs() -> list[GridConfig]:
    configs = []
    for merge, gc, strategy, first in itertools.product(
        (True, False), (True, False), ("ancestors", "dfs"), (False, True)
    ):
        configs.append(
            GridConfig(
                name=(
                    f"opt/merge={int(merge)}/gc={int(gc)}/{strategy}"
                    f"/fw={int(first)}"
                ),
                factory=lambda merge=merge, gc=gc, strategy=strategy,
                first=first: VelodromeOptimized(
                    merge_unary=merge,
                    collect_garbage=gc,
                    cycle_strategy=strategy,
                    first_warning_per_label=first,
                ),
                label_family=f"optimized/merge={int(merge)}",
            )
        )
    return configs


def ablation_grid() -> tuple[GridConfig, ...]:
    """The full configuration sweep.

    21 configurations: VelodromeBasic over (GC on/off x ancestors/dfs),
    VelodromeOptimized over (merge on/off x GC on/off x ancestors/dfs x
    first-warning-per-label on/off), and VelodromeCompact (the packed
    64-bit state representation, semantically the merged default).
    """
    compact = GridConfig(
        name="compact",
        factory=VelodromeCompact,
        label_family="optimized/merge=1",
    )
    return tuple(_basic_configs() + _optimized_configs() + [compact])


def default_grid() -> tuple[GridConfig, ...]:
    """A four-configuration smoke grid (one per family) for quick runs."""
    return tuple(
        config
        for config in ablation_grid()
        if config.name
        in (
            "basic/gc=1/ancestors",
            "opt/merge=1/gc=1/ancestors/fw=0",
            "opt/merge=0/gc=1/ancestors/fw=0",
            "compact",
        )
    )
