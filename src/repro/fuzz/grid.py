"""The ablation grid: every backend configuration the fuzzer checks.

Theorem 1 makes Velodrome sound *and* complete, so every configuration
of the analysis — basic or optimized, with or without merging, with or
without garbage collection, under either cycle-detection strategy —
must agree with the serialization-graph oracle on every trace.  The
optimizations are exactly where soundness/completeness bugs hide, so
the differential fuzzer sweeps the full grid rather than just the
defaults.

Blame assignment is a different matter: *which* atomic block a warning
names depends on where the first cycle closes, and the Section 4.2
merge rules legitimately move that point (merged unary operations close
cycles at different operations than per-operation nodes do).  Grid
configurations therefore carry a ``label_family``: configurations in
the same family must report identical blamed-label sets, while
configurations in different families are only required to agree on the
verdict and on the position of the first warning.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.backend import AnalysisBackend
from repro.core.basic import VelodromeBasic
from repro.core.compact import VelodromeCompact
from repro.core.optimized import VelodromeOptimized


@dataclass(frozen=True)
class GridConfig:
    """One backend configuration participating in the differential run.

    Attributes:
        name: unique human-readable identifier (appears in divergence
            reports and ``--stats`` output).
        factory: zero-argument callable building a fresh backend.
        label_family: configurations sharing a family must produce the
            same set of warning labels on every trace; ``None`` opts
            out of label comparison (verdict and first-warning position
            are still checked).
    """

    name: str
    factory: Callable[[], AnalysisBackend]
    label_family: Optional[str] = None

    def build(self) -> AnalysisBackend:
        """A fresh backend, renamed so reports identify the config."""
        backend = self.factory()
        backend.name = self.name
        return backend


def _basic_configs() -> list[GridConfig]:
    configs = []
    for gc, strategy in itertools.product((True, False), ("ancestors", "dfs")):
        configs.append(
            GridConfig(
                name=f"basic/gc={int(gc)}/{strategy}",
                factory=lambda gc=gc, strategy=strategy: VelodromeBasic(
                    collect_garbage=gc, cycle_strategy=strategy
                ),
                label_family="basic",
            )
        )
    return configs


def _optimized_configs() -> list[GridConfig]:
    configs = []
    for merge, gc, strategy, first in itertools.product(
        (True, False), (True, False), ("ancestors", "dfs"), (False, True)
    ):
        configs.append(
            GridConfig(
                name=(
                    f"opt/merge={int(merge)}/gc={int(gc)}/{strategy}"
                    f"/fw={int(first)}"
                ),
                factory=lambda merge=merge, gc=gc, strategy=strategy,
                first=first: VelodromeOptimized(
                    merge_unary=merge,
                    collect_garbage=gc,
                    cycle_strategy=strategy,
                    first_warning_per_label=first,
                ),
                label_family=f"optimized/merge={int(merge)}",
            )
        )
    return configs


def _aerodrome_factory() -> AnalysisBackend:
    """Build the vector-clock backend through the CLI registry.

    Resolving by name (rather than importing the class) exercises
    :func:`repro.cli.resolve_backend` — the same lookup programmatic
    callers use — and the deferred import avoids a module cycle with
    :mod:`repro.cli`, which imports this module's grid helpers.
    """
    from repro.cli import resolve_backend

    return resolve_backend("aerodrome")()


def ablation_grid() -> tuple[GridConfig, ...]:
    """The full configuration sweep.

    22 configurations: VelodromeBasic over (GC on/off x ancestors/dfs),
    VelodromeOptimized over (merge on/off x GC on/off x ancestors/dfs x
    first-warning-per-label on/off), VelodromeCompact (the packed
    64-bit state representation, semantically the merged default), and
    AeroDrome (the linear-time vector-clock algorithm — no graph, so
    no label comparison: it blames the transaction whose operation
    closes the cycle, where the graph family blames via edge walks).
    """
    compact = GridConfig(
        name="compact",
        factory=VelodromeCompact,
        label_family="optimized/merge=1",
    )
    aerodrome = GridConfig(
        name="aerodrome",
        factory=_aerodrome_factory,
        label_family=None,
    )
    return tuple(
        _basic_configs() + _optimized_configs() + [compact, aerodrome]
    )


def default_grid() -> tuple[GridConfig, ...]:
    """A five-configuration smoke grid (one per family) for quick runs."""
    return tuple(
        config
        for config in ablation_grid()
        if config.name
        in (
            "basic/gc=1/ancestors",
            "opt/merge=1/gc=1/ancestors/fw=0",
            "opt/merge=0/gc=1/ancestors/fw=0",
            "compact",
            "aerodrome",
        )
    )


def grid_names(configs: Optional[Sequence[GridConfig]]) -> Optional[tuple[str, ...]]:
    """The configuration names of ``configs`` (``None`` passes through).

    This is the picklable form of a grid selection: a
    :class:`GridConfig` carries closures, so parallel shard tasks ship
    names and the worker rebuilds the configurations with
    :func:`grid_by_names`.
    """
    if configs is None:
        return None
    return tuple(config.name for config in configs)


def grid_by_names(
    names: Optional[Sequence[str]],
) -> Optional[tuple[GridConfig, ...]]:
    """Resolve configuration names against the full ablation grid.

    Preserves the requested order.  ``None`` passes through (meaning
    "the caller's default grid").  Unknown names raise ``KeyError`` —
    a grid selection that is not made of named ablation-grid members
    cannot cross a process boundary.
    """
    if names is None:
        return None
    by_name = {config.name: config for config in ablation_grid()}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise KeyError(
            f"unknown grid configuration(s): {', '.join(sorted(missing))}"
        )
    return tuple(by_name[name] for name in names)


def ship_grid(
    configs: Optional[Sequence[GridConfig]],
) -> tuple[Optional[tuple[str, ...]], Optional[tuple[GridConfig, ...]]]:
    """The picklable form of a grid selection, as ``(names, configs)``.

    Exactly one of the pair is populated (both ``None`` means "the
    worker's default grid").  Grids whose configurations pickle — class
    factories, no closures — ship directly, which is exact for ad-hoc
    grids.  The standard ablation grid's factories are closures, so it
    ships by name and the worker rebuilds it with
    :func:`grid_by_names`.  A grid that neither pickles nor resolves by
    name cannot cross a process boundary: ``ValueError``.
    """
    if configs is None:
        return None, None
    configs = tuple(configs)
    try:
        pickle.dumps(configs)
    except Exception:
        pass
    else:
        return None, configs
    names = grid_names(configs)
    try:
        grid_by_names(names)
    except KeyError as exc:
        raise ValueError(
            "grid cannot cross a process boundary: its factories do not "
            "pickle and its names are not ablation-grid members "
            f"({', '.join(names)}); run with jobs=1"
        ) from exc
    return names, None


def unship_grid(
    names: Optional[Sequence[str]],
    configs: Optional[tuple[GridConfig, ...]] = None,
) -> Optional[tuple[GridConfig, ...]]:
    """Rebuild a grid shipped by :func:`ship_grid` inside a worker."""
    if configs is not None:
        return configs
    return grid_by_names(names)
