"""Differential fuzzing and trace shrinking.

Velodrome's headline claim — soundness *and* completeness (Theorem 1)
— means every disagreement between any analysis configuration and the
serialization-graph oracle is a bug by definition.  This package hunts
for such disagreements at scale and reduces what it finds to minimal,
human-debuggable repro traces:

* :mod:`repro.fuzz.grid` — the ablation grid of configurations swept;
* :mod:`repro.fuzz.verdicts` — one-pass differential comparison of a
  trace across the grid and the oracle;
* :mod:`repro.fuzz.engine` — the seeded generate/replay/compare loop;
* :mod:`repro.fuzz.faults` — crash (kill + resume-from-checkpoint) and
  stream-fault injection probes;
* :mod:`repro.fuzz.shrink` — delta-debugging reduction of diverging
  traces;
* :mod:`repro.fuzz.corpus` — the persisted regression corpus the test
  suite replays.

CLI: ``repro fuzz --budget N --seed S [--shrink] [--stats] [--crash]``.
"""

from repro.fuzz.corpus import (
    DEFAULT_CORPUS,
    corpus_paths,
    corpus_traces,
    persist_repro,
    replay_corpus,
    trace_digest,
)
from repro.fuzz.faults import (
    crash_recovery_divergences,
    fault_injection_divergences,
    lace_stream,
)
from repro.fuzz.engine import (
    Finding,
    FuzzConfig,
    FuzzEngine,
    FuzzReport,
    fuzz,
    iteration_seeds,
    program_for_seed,
    round_trip_divergences,
    server_pool_family,
    trace_for_seed,
)
from repro.fuzz.grid import GridConfig, ablation_grid, default_grid
from repro.fuzz.shrink import ShrinkResult, shrink_trace
from repro.fuzz.verdicts import Divergence, TraceCheck, check_trace

__all__ = [
    "DEFAULT_CORPUS",
    "Divergence",
    "Finding",
    "FuzzConfig",
    "FuzzEngine",
    "FuzzReport",
    "GridConfig",
    "ShrinkResult",
    "TraceCheck",
    "ablation_grid",
    "check_trace",
    "corpus_paths",
    "corpus_traces",
    "crash_recovery_divergences",
    "default_grid",
    "fault_injection_divergences",
    "fuzz",
    "lace_stream",
    "iteration_seeds",
    "persist_repro",
    "replay_corpus",
    "round_trip_divergences",
    "shrink_trace",
    "trace_digest",
    "program_for_seed",
    "server_pool_family",
    "trace_for_seed",
]
