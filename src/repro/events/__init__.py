"""Event model: operations, traces, transactions, and trace semantics."""

from repro.events.operations import (
    ACCESS_KINDS,
    LOCK_KINDS,
    MARKER_KINDS,
    Operation,
    OpKind,
    acquire,
    begin,
    commutes,
    conflicts,
    end,
    read,
    release,
    write,
)
from repro.events.render import render_columns, render_with_transactions
from repro.events.serialize import load_trace, save_trace, trace_to_text
from repro.events.semantics import (
    GlobalStore,
    SemanticsError,
    is_well_formed,
    replay,
)
from repro.events.trace import Trace, TraceError, Transaction

__all__ = [
    "ACCESS_KINDS",
    "LOCK_KINDS",
    "MARKER_KINDS",
    "GlobalStore",
    "Operation",
    "OpKind",
    "SemanticsError",
    "Trace",
    "TraceError",
    "Transaction",
    "acquire",
    "begin",
    "commutes",
    "conflicts",
    "end",
    "is_well_formed",
    "load_trace",
    "render_columns",
    "render_with_transactions",
    "save_trace",
    "trace_to_text",
    "read",
    "release",
    "replay",
    "write",
]
