"""Trace equivalence by commutation, and brute-force serializability.

Two traces are *equivalent* when one can be obtained from the other by
repeatedly swapping adjacent non-conflicting operations (paper Section
2).  A trace is *serializable* when it is equivalent to some serial
trace.  This module decides serializability by exhaustive search over
the commutation-reachable equivalence class — exponential, and intended
only as an independent ground truth for small traces in the test suite.
The scalable reference checker (the serialization-graph test) lives in
:mod:`repro.core.serializability`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.events.operations import Operation, commutes
from repro.events.trace import Trace

#: Safety cap on the number of distinct traces explored by the
#: brute-force search before giving up.
DEFAULT_STATE_LIMIT = 200_000


class SearchBudgetExceeded(RuntimeError):
    """Raised when brute-force search exceeds its state limit."""


def adjacent_swaps(ops: tuple[Operation, ...]) -> Iterator[tuple[Operation, ...]]:
    """Yield every trace obtained by one legal adjacent swap.

    A swap of positions ``i`` and ``i+1`` is legal when the two
    operations commute (do not conflict).  Same-thread operations always
    conflict, so per-thread program order — and hence the transactional
    structure — is preserved by construction.
    """
    for i in range(len(ops) - 1):
        a, b = ops[i], ops[i + 1]
        if commutes(a, b):
            yield ops[:i] + (b, a) + ops[i + 2 :]


def equivalent_traces(
    trace: Trace, state_limit: int = DEFAULT_STATE_LIMIT
) -> Iterator[Trace]:
    """Enumerate the equivalence class of ``trace`` (including itself).

    Breadth-first over single adjacent swaps.  Raises
    :class:`SearchBudgetExceeded` if more than ``state_limit`` distinct
    traces are generated.
    """
    start = trace.operations
    seen: set[tuple[Operation, ...]] = {start}
    queue: deque[tuple[Operation, ...]] = deque([start])
    while queue:
        current = queue.popleft()
        yield Trace(current)
        for neighbour in adjacent_swaps(current):
            if neighbour not in seen:
                if len(seen) >= state_limit:
                    raise SearchBudgetExceeded(
                        f"more than {state_limit} traces in equivalence class"
                    )
                seen.add(neighbour)
                queue.append(neighbour)


def find_serial_equivalent(
    trace: Trace, state_limit: int = DEFAULT_STATE_LIMIT
) -> Optional[Trace]:
    """A serial trace equivalent to ``trace``, or ``None`` if none exists.

    Exhaustive; use only on small traces.
    """
    for candidate in equivalent_traces(trace, state_limit=state_limit):
        if candidate.is_serial():
            return candidate
    return None


def is_serializable_bruteforce(
    trace: Trace, state_limit: int = DEFAULT_STATE_LIMIT
) -> bool:
    """Decide conflict-serializability by exhaustive commutation search."""
    return find_serial_equivalent(trace, state_limit=state_limit) is not None


def find_serial_equivalent_for(
    trace: Trace, tx_index: int, state_limit: int = DEFAULT_STATE_LIMIT
) -> Optional[Trace]:
    """A trace equivalent to ``trace`` in which transaction ``tx_index``
    (an index into ``trace.transactions()``) executes serially
    (contiguously), or ``None``.

    This decides *self-serializability* of a single transaction (paper
    Section 4.3): other transactions need not be contiguous in the
    witness.  Exhaustive; small traces only.
    """
    # Transaction *indices* shift under commutation, but the
    # ``(tid, ordinal)`` key is stable because swaps preserve each
    # thread's program order and hence its transaction decomposition.
    target_key = trace.transactions()[tx_index].key

    def tx_contiguous(candidate: Trace) -> bool:
        positions = [
            pos
            for pos in range(len(candidate))
            if candidate.transaction_of(pos).key == target_key
        ]
        return positions == list(range(positions[0], positions[-1] + 1))

    for candidate in equivalent_traces(trace, state_limit=state_limit):
        if tx_contiguous(candidate):
            return candidate
    return None


def is_self_serializable(
    trace: Trace, tx_index: int, state_limit: int = DEFAULT_STATE_LIMIT
) -> bool:
    """Decide self-serializability of transaction ``tx_index``."""
    return find_serial_equivalent_for(trace, tx_index, state_limit) is not None
