"""Operational semantics of multithreaded traces (paper Figure 1).

The paper models a multithreaded program as threads acting on a global
store mapping variables to values and locks to owning threads.  This
module replays a trace against that semantics, checking that every
operation is enabled in the state where it executes:

* ``acq(t, m)`` requires lock ``m`` to be free,
* ``rel(t, m)`` requires lock ``m`` to be held by ``t``,
* ``rd(t, x, v)`` with a recorded value requires ``s(x) == v``,
* BEGIN/END markers must nest properly per thread.

Well-formed traces are exactly those the instrumented runtime can emit,
so replaying is both a sanity check for hand-written test traces and a
validation layer for the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.events.operations import Operation, OpKind
from repro.events.trace import Trace


class SemanticsError(ValueError):
    """Raised when a trace is not well-formed under Figure 1 semantics."""

    def __init__(self, position: int, op: Operation, reason: str):
        self.position = position
        self.op = op
        self.reason = reason
        super().__init__(f"at position {position}, {op}: {reason}")


@dataclass
class GlobalStore:
    """The shared state ``s`` of Figure 1.

    Maps variables to values and locks to their owning thread (``None``
    when free).  Variables read before any write observe
    ``initial_value``.
    """

    variables: dict[str, object] = field(default_factory=dict)
    lock_owner: dict[str, Optional[int]] = field(default_factory=dict)
    initial_value: object = 0

    def read(self, var: str) -> object:
        """The current value of ``var`` ([ACT READ])."""
        return self.variables.get(var, self.initial_value)

    def write(self, var: str, value: object) -> None:
        """Update ``var`` to ``value`` ([ACT WRITE])."""
        self.variables[var] = value

    def holder(self, lock: str) -> Optional[int]:
        """The thread holding ``lock``, or ``None`` if free."""
        return self.lock_owner.get(lock)

    def acquire(self, tid: int, lock: str) -> None:
        """Take ``lock`` for ``tid`` ([ACT ACQUIRE]); must be free."""
        owner = self.lock_owner.get(lock)
        if owner is not None:
            raise ValueError(f"lock {lock} already held by thread {owner}")
        self.lock_owner[lock] = tid

    def release(self, tid: int, lock: str) -> None:
        """Release ``lock`` ([ACT RELEASE]); must be held by ``tid``."""
        owner = self.lock_owner.get(lock)
        if owner != tid:
            raise ValueError(f"lock {lock} not held by thread {tid}")
        self.lock_owner[lock] = None


def step(store: GlobalStore, op: Operation) -> None:
    """Apply one operation to ``store``, mutating it in place.

    Raises ``ValueError`` when the operation is not enabled.  Reads with
    a recorded value assert that the store agrees; reads without one are
    unconstrained (the common case for analysis-only traces).
    """
    if op.kind is OpKind.READ:
        if op.value is not None and store.read(op.target) != op.value:
            raise ValueError(
                f"read of {op.target} observed {op.value!r} "
                f"but store holds {store.read(op.target)!r}"
            )
    elif op.kind is OpKind.WRITE:
        store.write(op.target, op.value)
    elif op.kind is OpKind.ACQUIRE:
        store.acquire(op.tid, op.target)
    elif op.kind is OpKind.RELEASE:
        store.release(op.tid, op.target)
    # BEGIN/END do not touch the global store ([ACT OTHER]).


def replay(trace: Trace, check_values: bool = False) -> GlobalStore:
    """Replay ``trace`` from the initial state, returning the final store.

    Checks lock discipline and per-thread BEGIN/END nesting; when
    ``check_values`` is False (the default), recorded read values are
    ignored so that value-free analysis traces replay cleanly.

    Raises :class:`SemanticsError` with the offending position on the
    first ill-formed operation.
    """
    store = GlobalStore()
    depth: dict[int, int] = {}
    for position, op in enumerate(trace):
        try:
            if op.kind is OpKind.READ and not check_values:
                pass
            else:
                step(store, op)
        except ValueError as exc:
            raise SemanticsError(position, op, str(exc)) from exc
        if op.kind is OpKind.BEGIN:
            depth[op.tid] = depth.get(op.tid, 0) + 1
        elif op.kind is OpKind.END:
            if depth.get(op.tid, 0) == 0:
                raise SemanticsError(position, op, "end without matching begin")
            depth[op.tid] -= 1
    return store


def is_well_formed(trace: Trace) -> bool:
    """True iff ``trace`` replays without semantic errors."""
    try:
        replay(trace)
    except SemanticsError:
        return False
    return True
