"""Render traces as the paper's thread-column diagrams.

The paper illustrates interleavings with one column per thread and time
flowing downward, transactions bracketed by begin/end.  This module
produces the ASCII equivalent::

    Thread 1        Thread 2
    --------        --------
    begin(inc)
    rd(x)
                    wr(x)
    wr(x)
    end

Used by the examples and handy when staring at a warning's trace.
"""

from __future__ import annotations

from typing import Optional

from repro.events.operations import Operation, OpKind
from repro.events.trace import Trace


def _cell(op: Operation, indent: int) -> str:
    pad = "  " * indent
    if op.kind is OpKind.BEGIN:
        label = f"({op.label})" if op.label else ""
        return f"{pad}begin{label}"
    if op.kind is OpKind.END:
        return f"{pad}end"
    if op.value is not None:
        return f"{pad}{op.kind.value}({op.target}={op.value})"
    return f"{pad}{op.kind.value}({op.target})"


def render_columns(
    trace: Trace,
    column_width: int = 18,
    mark: Optional[set[int]] = None,
) -> str:
    """One line per operation, one column per thread.

    Nested atomic blocks indent their contents.  Positions listed in
    ``mark`` get a ``*`` in the left margin (e.g. a cycle's endpoints).
    """
    tids = trace.tids
    column_of = {tid: index for index, tid in enumerate(tids)}
    mark = mark or set()

    lines = []
    header = ["" for _ in tids]
    for tid, index in column_of.items():
        header[index] = f"Thread {tid}"
    lines.append("  " + "".join(h.ljust(column_width) for h in header).rstrip())
    lines.append(
        "  "
        + "".join(("-" * len(h)).ljust(column_width) for h in header).rstrip()
    )

    depth = {tid: 0 for tid in tids}
    for position, op in enumerate(trace):
        indent = depth[op.tid]
        if op.kind is OpKind.END:
            indent = max(0, indent - 1)
            depth[op.tid] = indent
        cell = _cell(op, indent)
        if op.kind is OpKind.BEGIN:
            depth[op.tid] += 1
        row = ["" for _ in tids]
        row[column_of[op.tid]] = cell
        margin = "* " if position in mark else "  "
        lines.append(
            margin + "".join(c.ljust(column_width) for c in row).rstrip()
        )
    return "\n".join(lines)


def render_with_transactions(trace: Trace, column_width: int = 18) -> str:
    """Column rendering followed by the transaction inventory."""
    body = render_columns(trace, column_width=column_width)
    inventory = "\n".join(
        f"  {tx}" for tx in trace.transactions()
    )
    return f"{body}\n\nTransactions:\n{inventory}"
