"""Trace serialization: JSON lines and the textual DSL.

Recorded event streams can be saved and re-analyzed offline — the
workflow RoadRunner users follow when a run is expensive to reproduce.
Two formats:

* **JSONL** — one JSON object per operation; lossless (values, labels,
  source locations).
* **DSL text** — the compact ``tid:kind(arg)`` format of
  :meth:`repro.events.trace.Trace.parse`; human-editable, drops
  non-string values and locations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO, Union

from repro.events.operations import Operation, OpKind
from repro.events.trace import Trace

PathLike = Union[str, Path]

_KINDS = {kind.value: kind for kind in OpKind}


def operation_to_json(op: Operation) -> dict:
    """One operation as a JSON-serializable dict (sparse: no nulls)."""
    record: dict = {"kind": op.kind.value, "tid": op.tid}
    if op.target is not None:
        record["target"] = op.target
    if op.value is not None:
        record["value"] = op.value
    if op.label is not None:
        record["label"] = op.label
    if op.loc is not None:
        record["loc"] = op.loc
    return record


def operation_from_json(record: dict) -> Operation:
    """Rebuild an operation from its JSON dict."""
    if not isinstance(record, dict):
        raise ValueError(f"operation record must be an object, "
                         f"got {type(record).__name__}")
    try:
        kind = _KINDS[record["kind"]]
    except KeyError:
        raise ValueError(f"unknown operation kind: {record.get('kind')!r}")
    tid = record.get("tid")
    if not isinstance(tid, int) or isinstance(tid, bool):
        raise ValueError(f"operation record needs an integer tid, "
                         f"got {tid!r}")
    return Operation(
        kind,
        tid,
        target=record.get("target"),
        value=record.get("value"),
        label=record.get("label"),
        loc=record.get("loc"),
    )


def dump_jsonl(trace: Iterable[Operation], stream: TextIO) -> int:
    """Write operations to ``stream`` as JSON lines; returns the count."""
    count = 0
    for op in trace:
        stream.write(json.dumps(operation_to_json(op), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def load_jsonl(stream: TextIO) -> Trace:
    """Read a JSONL event stream back into a trace."""
    ops = []
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_number}: invalid JSON") from exc
        ops.append(operation_from_json(record))
    return Trace(ops)


def save_trace(trace: Iterable[Operation], path: PathLike) -> int:
    """Save to ``path``; `.jsonl` uses JSONL, anything else the DSL.

    Recordings are always UTF-8, independent of the locale: a trace
    with non-ASCII lock or variable names must load back identically
    on any machine (and must not crash the save under a C locale).
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        if path.suffix == ".jsonl":
            return dump_jsonl(trace, stream)
        ops = list(trace)
        stream.write(trace_to_text(Trace(ops)))
        stream.write("\n")
        return len(ops)


def load_trace(path: PathLike) -> Trace:
    """Load from ``path``; `.jsonl` uses JSONL, anything else the DSL."""
    path = Path(path)
    with path.open(encoding="utf-8") as stream:
        if path.suffix == ".jsonl":
            return load_jsonl(stream)
        return Trace.parse(stream.read())


def trace_to_text(trace: Trace) -> str:
    """The trace in DSL form, one operation per line.

    Reads and writes keep their value only when it round-trips through
    the DSL (strings without parentheses or ``=``).
    """
    lines = []
    for op in trace:
        if op.kind is OpKind.BEGIN:
            lines.append(f"{op.tid}:begin({op.label})" if op.label
                         else f"{op.tid}:begin")
        elif op.kind is OpKind.END:
            lines.append(f"{op.tid}:end")
        else:
            value = op.value
            if (
                op.is_access
                and isinstance(value, str)
                and value
                and not set("()=; \t\n") & set(value)
            ):
                lines.append(f"{op.tid}:{op.kind.value}({op.target}={value})")
            else:
                lines.append(f"{op.tid}:{op.kind.value}({op.target})")
    return "\n".join(lines)
