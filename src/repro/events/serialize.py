"""Trace serialization: JSON lines and the textual DSL.

Recorded event streams can be saved and re-analyzed offline — the
workflow RoadRunner users follow when a run is expensive to reproduce.
Three formats:

* **JSONL** — one JSON object per operation; lossless (values, labels,
  source locations).
* **VTRC** — the packed binary store of :mod:`repro.store`: lossless
  like JSONL, several times smaller, faster to decode, and seekable
  (see ``docs/traces.md``).  :func:`save_trace` writes it for
  ``.vtrc`` paths; :func:`load_trace` detects it by magic bytes.
* **DSL text** — the compact ``tid:kind(arg)`` format of
  :meth:`repro.events.trace.Trace.parse`; human-editable, drops
  non-string values and locations.

JSONL recordings may carry an optional ``seq`` field (``dump_jsonl``
with ``with_seq=True``): a monotonically increasing stream position
that the hardened reader of :mod:`repro.resilience.quarantine` uses to
detect duplicated and reordered records.  ``load_jsonl`` ignores it,
so sequenced and plain recordings load identically.

A recording written by a process that crashed mid-write usually ends
in a *torn* final record.  :func:`iter_jsonl` / :func:`load_jsonl_tolerant`
stream all complete records and report the byte offset of the torn
tail instead of refusing the whole file — the resume path of the
supervised runtime (see ``docs/resilience.md``) depends on this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO, Union

from repro.events.operations import Operation, OpKind
from repro.events.trace import Trace

PathLike = Union[str, Path]

_KINDS = {kind.value: kind for kind in OpKind}


def operation_to_json(op: Operation) -> dict:
    """One operation as a JSON-serializable dict (sparse: no nulls)."""
    record: dict = {"kind": op.kind.value, "tid": op.tid}
    if op.target is not None:
        record["target"] = op.target
    if op.value is not None:
        record["value"] = op.value
    if op.label is not None:
        record["label"] = op.label
    if op.loc is not None:
        record["loc"] = op.loc
    return record


def operation_from_json(record: dict) -> Operation:
    """Rebuild an operation from its JSON dict."""
    if not isinstance(record, dict):
        raise ValueError(f"operation record must be an object, "
                         f"got {type(record).__name__}")
    try:
        kind = _KINDS[record["kind"]]
    except KeyError:
        raise ValueError(f"unknown operation kind: {record.get('kind')!r}")
    tid = record.get("tid")
    if not isinstance(tid, int) or isinstance(tid, bool):
        raise ValueError(f"operation record needs an integer tid, "
                         f"got {tid!r}")
    return Operation(
        kind,
        tid,
        target=record.get("target"),
        value=record.get("value"),
        label=record.get("label"),
        loc=record.get("loc"),
    )


def dump_jsonl(
    trace: Iterable[Operation], stream: TextIO, with_seq: bool = False
) -> int:
    """Write operations to ``stream`` as JSON lines; returns the count.

    With ``with_seq``, each record carries its 0-based stream position
    as a ``seq`` field, letting the hardened reader detect duplicated,
    dropped, and reordered records (the field is otherwise ignored on
    load, so the recording stays round-trip-equal to the plain form).
    """
    count = 0
    for op in trace:
        record = operation_to_json(op)
        if with_seq:
            record["seq"] = count
        stream.write(json.dumps(record, sort_keys=True))
        stream.write("\n")
        count += 1
    return count


#: Batched-decode read size: large enough to amortize the per-read
#: call overhead, small enough to keep peak memory flat on huge
#: recordings (the decoded operation list dominates either way).
_DECODE_CHUNK = 1 << 20


def load_jsonl(stream: TextIO) -> Trace:
    """Read a JSONL event stream back into a trace.

    The stream is consumed in :data:`_DECODE_CHUNK`-sized reads and
    split into lines in bulk, rather than iterated line-at-a-time —
    one ``read`` plus one ``str.split`` per megabyte replaces a Python
    iterator step per record, which is measurable on large recordings
    (see ``BENCH_parallel.json``'s decode stage).  Error reporting is
    unchanged: malformed JSON still raises ``ValueError`` with the
    1-based line number.
    """
    ops: list = []
    append = ops.append
    loads = json.loads
    decode_error = json.JSONDecodeError
    from_json = operation_from_json
    read = stream.read
    line_number = 0
    pending = ""
    while True:
        chunk = read(_DECODE_CHUNK)
        if not chunk:
            break
        lines = (pending + chunk).split("\n")
        pending = lines.pop()
        for line in lines:
            line_number += 1
            if not line:
                continue
            try:
                record = loads(line)
            except decode_error as exc:
                # json.loads tolerates surrounding whitespace, so only
                # whitespace-only lines (rare) reach this path benignly.
                if line.isspace():
                    continue
                raise ValueError(
                    f"line {line_number}: invalid JSON"
                ) from exc
            append(from_json(record))
    tail = pending.strip()
    if tail:
        line_number += 1
        try:
            record = loads(tail)
        except decode_error as exc:
            raise ValueError(f"line {line_number}: invalid JSON") from exc
        append(from_json(record))
    return Trace(ops)


def stream_jsonl(path: PathLike) -> Iterator[Operation]:
    """Lazily yield the operations of a JSONL recording at ``path``.

    Same strict semantics as :func:`load_jsonl` — malformed JSON
    raises ``ValueError`` with the 1-based line number — but one
    operation at a time with O(1) peak memory, so a consumer that
    skips a prefix (``itertools.islice``) never materializes the
    whole trace.  Reads are chunked exactly like :func:`load_jsonl`.
    """
    loads = json.loads
    decode_error = json.JSONDecodeError
    from_json = operation_from_json
    with Path(path).open(encoding="utf-8") as stream:
        read = stream.read
        line_number = 0
        pending = ""
        while True:
            chunk = read(_DECODE_CHUNK)
            if not chunk:
                break
            lines = (pending + chunk).split("\n")
            pending = lines.pop()
            for line in lines:
                line_number += 1
                if not line:
                    continue
                try:
                    record = loads(line)
                except decode_error as exc:
                    if line.isspace():
                        continue
                    raise ValueError(
                        f"line {line_number}: invalid JSON"
                    ) from exc
                yield from_json(record)
        tail = pending.strip()
        if tail:
            line_number += 1
            try:
                record = loads(tail)
            except decode_error as exc:
                raise ValueError(
                    f"line {line_number}: invalid JSON"
                ) from exc
            yield from_json(record)


@dataclass(frozen=True)
class JsonlRecord:
    """One complete record streamed from a JSONL recording."""

    line_number: int
    byte_offset: int
    op: Operation
    seq: Optional[int] = None


@dataclass(frozen=True)
class JsonlFault:
    """One line of a JSONL recording that did not yield an operation.

    Attributes:
        line_number: 1-based line of the offending record.
        byte_offset: offset of the record's first byte (UTF-8), i.e.
            where a recovery tool should truncate or resume writing.
        error: what went wrong, human-readable.
        content: the raw line (newline stripped, bounded).
        torn: True for the stream's final record when it was cut
            mid-write (no terminating newline) — the expected state of
            a recording whose writer crashed.  Torn records are never
            yielded as operations even when their prefix happens to
            parse: a cut like ``"tid": 12`` → ``"tid": 1`` is valid
            JSON with wrong data.
    """

    line_number: int
    byte_offset: int
    error: str
    content: str
    torn: bool = False


def iter_jsonl(stream: TextIO) -> Iterator[Union[JsonlRecord, JsonlFault]]:
    """Stream a JSONL recording as :class:`JsonlRecord`/:class:`JsonlFault`.

    Yields every line in order, classified; never raises on content.
    Blank lines are skipped.  Byte offsets assume the UTF-8 encoding
    :func:`save_trace` pins.
    """
    offset = 0
    line_number = 0
    for line in stream:
        line_number += 1
        line_offset = offset
        offset += len(line.encode("utf-8"))
        terminated = line.endswith("\n")
        content = line.rstrip("\r\n")
        if not content.strip():
            continue
        if not terminated:
            yield JsonlFault(
                line_number,
                line_offset,
                "torn final record (no terminating newline)",
                content[:200],
                torn=True,
            )
            return
        seq: Optional[int] = None
        try:
            record = json.loads(content)
            if isinstance(record, dict):
                raw_seq = record.get("seq")
                if isinstance(raw_seq, int) and not isinstance(raw_seq, bool):
                    seq = raw_seq
            op = operation_from_json(record)
        except (ValueError, TypeError) as exc:
            yield JsonlFault(
                line_number, line_offset, str(exc) or type(exc).__name__,
                content[:200],
            )
            continue
        yield JsonlRecord(line_number, line_offset, op, seq=seq)


def load_jsonl_tolerant(
    stream: TextIO,
) -> tuple[Trace, Optional[JsonlFault]]:
    """Read a JSONL stream, tolerating a torn final record.

    Returns the trace of all complete records plus the torn tail (or
    ``None`` for a cleanly terminated stream).  Interior corruption —
    a malformed record *with* a terminating newline — still raises
    ``ValueError``; route through the hardened reader of
    :mod:`repro.resilience.quarantine` to quarantine those instead.
    """
    ops = []
    tail: Optional[JsonlFault] = None
    for item in iter_jsonl(stream):
        if isinstance(item, JsonlFault):
            if item.torn:
                tail = item
                break
            raise ValueError(f"line {item.line_number}: {item.error}")
        ops.append(item.op)
    return Trace(ops), tail


def save_trace(trace: Iterable[Operation], path: PathLike) -> int:
    """Save to ``path``; the extension picks the format.

    ``.jsonl`` writes JSON lines, ``.vtrc`` the packed binary store
    (:mod:`repro.store`), anything else the textual DSL.  Writing is
    the one place extensions matter — a writer must pick *some*
    format; readers sniff content instead (:func:`load_trace`).

    Text recordings are always UTF-8, independent of the locale: a
    trace with non-ASCII lock or variable names must load back
    identically on any machine (and must not crash the save under a
    C locale).
    """
    path = Path(path)
    if path.suffix == ".vtrc":
        # Deferred: repro.store imports this module.
        from repro.store.writer import save_packed

        return save_packed(trace, path)
    with path.open("w", encoding="utf-8") as stream:
        if path.suffix == ".jsonl":
            return dump_jsonl(trace, stream)
        ops = list(trace)
        stream.write(trace_to_text(Trace(ops)))
        stream.write("\n")
        return len(ops)


def load_trace(path: PathLike) -> Trace:
    """Load a recording, whatever its format, by sniffing content.

    The leading bytes decide: the ``VTRC`` magic selects the packed
    binary reader, a ``{`` selects JSONL, a ``tid:kind`` token the
    DSL — file extensions are never consulted, so renamed or
    extensionless recordings load correctly and genuinely unknown
    content fails with a clear
    :class:`~repro.store.sniff.UnknownTraceFormat` instead of a
    misleading parse error.
    """
    path = Path(path)
    # Deferred: repro.store imports this module.
    from repro.store.reader import load_packed
    from repro.store.sniff import FORMAT_JSONL, FORMAT_PACKED, sniff_path

    detected = sniff_path(path)
    if detected == FORMAT_PACKED:
        return load_packed(path)
    with path.open(encoding="utf-8") as stream:
        if detected == FORMAT_JSONL:
            return load_jsonl(stream)
        return Trace.parse(stream.read())


def trace_to_text(trace: Trace) -> str:
    """The trace in DSL form, one operation per line.

    Reads and writes keep their value only when it round-trips through
    the DSL (strings without parentheses or ``=``).
    """
    lines = []
    for op in trace:
        if op.kind is OpKind.BEGIN:
            lines.append(f"{op.tid}:begin({op.label})" if op.label
                         else f"{op.tid}:begin")
        elif op.kind is OpKind.END:
            lines.append(f"{op.tid}:end")
        else:
            value = op.value
            if (
                op.is_access
                and isinstance(value, str)
                and value
                and not set("()=; \t\n") & set(value)
            ):
                lines.append(f"{op.tid}:{op.kind.value}({op.target}={value})")
            else:
                lines.append(f"{op.tid}:{op.kind.value}({op.target})")
    return "\n".join(lines)
