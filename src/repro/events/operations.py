"""Operations performed by threads on the global store.

This module defines the operation language of the paper's Section 2
(Figure 1): reads and writes of shared variables, lock acquires and
releases, and the ``begin``/``end`` markers that delimit atomic blocks.
It also defines the *conflict* relation between operations, which is the
foundation of conflict-serializability:

    Two operations in a trace conflict if (1) they access the same
    variable and at least one access is a write, (2) they operate on the
    same lock, or (3) they are performed by the same thread.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class OpKind(enum.Enum):
    """The kinds of operation a thread can perform on the global store."""

    READ = "rd"
    WRITE = "wr"
    ACQUIRE = "acq"
    RELEASE = "rel"
    BEGIN = "begin"
    END = "end"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Kinds that touch a shared variable.
ACCESS_KINDS = frozenset({OpKind.READ, OpKind.WRITE})
# Kinds that touch a lock.
LOCK_KINDS = frozenset({OpKind.ACQUIRE, OpKind.RELEASE})
# Kinds that delimit atomic blocks.
MARKER_KINDS = frozenset({OpKind.BEGIN, OpKind.END})


@dataclass(frozen=True, slots=True)
class Operation:
    """A single operation in a trace.

    Attributes:
        kind: what the operation does (read, write, acquire, ...).
        tid: the identifier of the thread performing the operation.
        target: the variable (for READ/WRITE) or lock (for
            ACQUIRE/RELEASE) operated on; ``None`` for BEGIN/END.
        value: the value read or written, when the trace records values;
            ``None`` when values are irrelevant to the analysis.
        label: the atomic-block label ``l`` of a BEGIN operation, used
            for error reporting; ``None`` for all other kinds.
        loc: an optional source-location string for diagnostics.
    """

    kind: OpKind
    tid: int
    target: Optional[str] = None
    value: object = None
    label: Optional[str] = None
    loc: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind in ACCESS_KINDS or self.kind in LOCK_KINDS:
            if self.target is None:
                raise ValueError(f"{self.kind} operation requires a target")
        elif self.target is not None:
            raise ValueError(f"{self.kind} operation takes no target")
        if self.label is not None and self.kind is not OpKind.BEGIN:
            raise ValueError("only BEGIN operations carry a label")

    @property
    def is_access(self) -> bool:
        """True for variable reads and writes."""
        return self.kind in ACCESS_KINDS

    @property
    def is_lock_op(self) -> bool:
        """True for lock acquires and releases."""
        return self.kind in LOCK_KINDS

    @property
    def is_marker(self) -> bool:
        """True for atomic-block begin/end markers."""
        return self.kind in MARKER_KINDS

    def __str__(self) -> str:
        if self.kind is OpKind.BEGIN:
            suffix = f"({self.label})" if self.label else ""
            return f"{self.tid}:begin{suffix}"
        if self.kind is OpKind.END:
            return f"{self.tid}:end"
        if self.value is not None:
            return f"{self.tid}:{self.kind.value}({self.target}={self.value})"
        return f"{self.tid}:{self.kind.value}({self.target})"


def read(tid: int, var: str, value: object = None, loc: str | None = None) -> Operation:
    """Construct a read of shared variable ``var`` by thread ``tid``."""
    return Operation(OpKind.READ, tid, var, value=value, loc=loc)


def write(tid: int, var: str, value: object = None, loc: str | None = None) -> Operation:
    """Construct a write of shared variable ``var`` by thread ``tid``."""
    return Operation(OpKind.WRITE, tid, var, value=value, loc=loc)


def acquire(tid: int, lock: str, loc: str | None = None) -> Operation:
    """Construct an acquire of lock ``lock`` by thread ``tid``."""
    return Operation(OpKind.ACQUIRE, tid, lock, loc=loc)


def release(tid: int, lock: str, loc: str | None = None) -> Operation:
    """Construct a release of lock ``lock`` by thread ``tid``."""
    return Operation(OpKind.RELEASE, tid, lock, loc=loc)


def begin(tid: int, label: str | None = None, loc: str | None = None) -> Operation:
    """Construct an atomic-block entry marker for thread ``tid``."""
    return Operation(OpKind.BEGIN, tid, label=label, loc=loc)


def end(tid: int, loc: str | None = None) -> Operation:
    """Construct an atomic-block exit marker for thread ``tid``."""
    return Operation(OpKind.END, tid, loc=loc)


def conflicts(a: Operation, b: Operation) -> bool:
    """Return True iff operations ``a`` and ``b`` conflict.

    The conflict relation of paper Section 2: same thread, same lock, or
    same variable with at least one write.  BEGIN/END markers conflict
    only through the same-thread clause (they neither access variables
    nor locks).
    """
    if a.tid == b.tid:
        return True
    if a.is_lock_op and b.is_lock_op and a.target == b.target:
        return True
    if a.is_access and b.is_access and a.target == b.target:
        return a.kind is OpKind.WRITE or b.kind is OpKind.WRITE
    return False


def commutes(a: Operation, b: Operation) -> bool:
    """Return True iff ``a`` and ``b`` commute (do not conflict)."""
    return not conflicts(a, b)
