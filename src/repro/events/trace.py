"""Traces and their transactional structure.

A trace is a finite sequence of operations recording one interleaved
execution of a multithreaded program (paper Section 2).  This module
provides the :class:`Trace` container, extraction of the trace's
*transactions* (outermost atomic blocks, plus unary transactions for
operations outside any block), and a compact textual DSL used heavily by
the test suite.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.events.operations import (
    Operation,
    OpKind,
    acquire,
    begin,
    end,
    read,
    release,
    write,
)


@dataclass(frozen=True, slots=True)
class Transaction:
    """A transaction of a trace.

    A transaction is either the operation sequence of an *outermost*
    atomic block (all operations of the executing thread from ``begin``
    through the matching ``end``, or through the end of the trace when
    unterminated), or a single operation executed outside any atomic
    block (a *unary* transaction).

    Attributes:
        index: position of this transaction in the trace's transaction
            list; also a stable identifier.
        tid: the executing thread.
        positions: positions (into the trace) of this transaction's
            operations, in order.
        label: the label of the outermost atomic block, or ``None`` for
            a unary transaction.
        unary: True if this transaction wraps a single operation that
            was executed outside any atomic block.
        ordinal: position of this transaction among the transactions of
            the same thread.  ``(tid, ordinal)`` is stable across
            equivalent traces (commutation preserves per-thread order),
            unlike ``index``.
    """

    index: int
    tid: int
    positions: tuple[int, ...]
    label: Optional[str] = None
    unary: bool = False
    ordinal: int = 0

    @property
    def key(self) -> tuple[int, int]:
        """The commutation-stable identity ``(tid, ordinal)``."""
        return (self.tid, self.ordinal)

    @property
    def first(self) -> int:
        """Position of the transaction's first operation."""
        return self.positions[0]

    @property
    def last(self) -> int:
        """Position of the transaction's last operation."""
        return self.positions[-1]

    def __str__(self) -> str:
        kind = "unary" if self.unary else (self.label or "tx")
        return f"T{self.index}[{kind} t{self.tid} ops={len(self.positions)}]"


class TraceError(ValueError):
    """Raised for structurally malformed traces."""


class Trace(Sequence[Operation]):
    """An immutable sequence of operations with transactional structure.

    The transactional decomposition is computed lazily and cached.  The
    class supports the full :class:`collections.abc.Sequence` protocol,
    so a trace can be iterated, indexed, and sliced (slicing yields a
    plain list of operations).
    """

    __slots__ = ("_ops", "_transactions", "_tx_of")

    def __init__(self, ops: Iterable[Operation]):
        self._ops: tuple[Operation, ...] = tuple(ops)
        self._transactions: Optional[tuple[Transaction, ...]] = None
        self._tx_of: Optional[tuple[int, ...]] = None

    # ---------------------------------------------------------------- Sequence
    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index):
        result = self._ops[index]
        return list(result) if isinstance(index, slice) else result

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Trace):
            return self._ops == other._ops
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._ops)

    def __repr__(self) -> str:
        return f"Trace({' '.join(str(op) for op in self._ops)})"

    # ------------------------------------------------------------- properties
    @property
    def operations(self) -> tuple[Operation, ...]:
        """The underlying operation tuple."""
        return self._ops

    @property
    def tids(self) -> list[int]:
        """Thread identifiers appearing in the trace, in first-use order."""
        seen: dict[int, None] = {}
        for op in self._ops:
            seen.setdefault(op.tid, None)
        return list(seen)

    @property
    def variables(self) -> set[str]:
        """Shared variables accessed anywhere in the trace."""
        return {op.target for op in self._ops if op.is_access}

    @property
    def locks(self) -> set[str]:
        """Locks operated on anywhere in the trace."""
        return {op.target for op in self._ops if op.is_lock_op}

    # ----------------------------------------------------------- transactions
    def transactions(self) -> tuple[Transaction, ...]:
        """The transactional decomposition of this trace.

        Every operation belongs to exactly one transaction.  BEGIN and
        END markers belong to the transaction they delimit.  Nested
        atomic blocks are folded into the outermost one.
        """
        if self._transactions is None:
            self._compute_transactions()
        return self._transactions

    def transaction_of(self, position: int) -> Transaction:
        """The transaction containing the operation at ``position``."""
        if self._tx_of is None:
            self._compute_transactions()
        return self._transactions[self._tx_of[position]]

    def _compute_transactions(self) -> None:
        txs: list[Transaction] = []
        tx_of = [-1] * len(self._ops)
        ordinals: dict[int, int] = {}
        # Per-thread state: (depth, positions, label) of the open
        # outermost block, if any.
        open_blocks: dict[int, tuple[int, list[int], Optional[str]]] = {}

        def close(
            tid: int, positions: list[int], label: Optional[str], unary: bool = False
        ) -> None:
            ordinal = ordinals.get(tid, 0)
            ordinals[tid] = ordinal + 1
            tx = Transaction(
                len(txs), tid, tuple(positions), label=label, unary=unary,
                ordinal=ordinal,
            )
            for pos in positions:
                tx_of[pos] = tx.index
            txs.append(tx)

        for pos, op in enumerate(self._ops):
            tid = op.tid
            state = open_blocks.get(tid)
            if op.kind is OpKind.BEGIN:
                if state is None:
                    open_blocks[tid] = (1, [pos], op.label)
                else:
                    depth, positions, label = state
                    positions.append(pos)
                    open_blocks[tid] = (depth + 1, positions, label)
            elif op.kind is OpKind.END:
                if state is None:
                    raise TraceError(f"end without begin at position {pos}")
                depth, positions, label = state
                positions.append(pos)
                if depth == 1:
                    del open_blocks[tid]
                    close(tid, positions, label)
                else:
                    open_blocks[tid] = (depth - 1, positions, label)
            else:
                if state is None:
                    close(tid, [pos], None, unary=True)
                else:
                    state[1].append(pos)
        # Unterminated blocks extend to the end of the trace.
        for tid, (_depth, positions, label) in sorted(open_blocks.items()):
            close(tid, positions, label)
        self._transactions = tuple(txs)
        self._tx_of = tuple(tx_of)

    # ------------------------------------------------------------ convenience
    def project(self, tid: int) -> list[Operation]:
        """The subsequence of operations performed by thread ``tid``."""
        return [op for op in self._ops if op.tid == tid]

    def without_markers(self) -> list[Operation]:
        """All non-BEGIN/END operations, in trace order."""
        return [op for op in self._ops if not op.is_marker]

    def is_serial(self) -> bool:
        """True iff every transaction's operations are contiguous."""
        current: Optional[int] = None
        finished: set[int] = set()
        for pos in range(len(self._ops)):
            tx = self.transaction_of(pos)
            if tx.index != current:
                if tx.index in finished:
                    return False
                if current is not None:
                    finished.add(current)
                current = tx.index
        return True

    def extended(self, ops: Iterable[Operation]) -> "Trace":
        """A new trace with ``ops`` appended."""
        return Trace(self._ops + tuple(ops))

    # -------------------------------------------------------------------- DSL
    _TOKEN = re.compile(
        r"^(?P<tid>\d+):(?P<kind>rd|wr|acq|rel|begin|end)"
        r"(?:\((?P<arg>[^)=]*)(?:=(?P<val>[^)]*))?\))?$"
    )

    @classmethod
    def parse(cls, text: str) -> "Trace":
        """Parse the compact trace DSL.

        Each whitespace- or semicolon-separated token has the form
        ``tid:kind(arg)``, e.g.::

            Trace.parse("1:begin(add) 1:rd(x) 2:wr(x=3) 1:wr(x) 1:end")

        Kinds are ``rd``, ``wr``, ``acq``, ``rel``, ``begin``, ``end``.
        ``begin`` takes an optional label; ``rd``/``wr`` take a variable
        and an optional ``=value``; ``acq``/``rel`` take a lock name.
        """
        ops: list[Operation] = []
        for token in re.split(r"[\s;]+", text.strip()):
            if not token:
                continue
            match = cls._TOKEN.match(token)
            if not match:
                raise TraceError(f"bad trace token: {token!r}")
            tid = int(match.group("tid"))
            kind = match.group("kind")
            arg = match.group("arg")
            val = match.group("val")
            if kind == "rd":
                ops.append(read(tid, _require(arg, token), value=val))
            elif kind == "wr":
                ops.append(write(tid, _require(arg, token), value=val))
            elif kind == "acq":
                ops.append(acquire(tid, _require(arg, token)))
            elif kind == "rel":
                ops.append(release(tid, _require(arg, token)))
            elif kind == "begin":
                ops.append(begin(tid, label=arg or None))
            else:
                ops.append(end(tid))
        return cls(ops)


def _require(arg: Optional[str], token: str) -> str:
    if not arg:
        raise TraceError(f"missing argument in trace token: {token!r}")
    return arg
