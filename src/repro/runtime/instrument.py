"""Backward-compatible facade over :mod:`repro.pipeline`.

The instrumentation plumbing — filter stages and backend fan-out —
now lives in the :mod:`repro.pipeline` package, where sources, stages,
fan-out, and metrics are first-class and composable.  This module
keeps the original import surface alive: the filter classes are
re-exported unchanged, and :class:`EventPipeline` remains as a thin
alias of :class:`repro.pipeline.Pipeline` accepting the historical
``filters=`` keyword.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.backend import AnalysisBackend
from repro.pipeline.core import Pipeline
from repro.pipeline.stages import (
    AtomicSpecFilter,
    BlockFilter,
    EventFilter,
    ReentrantLockFilter,
    Stage,
    ThreadLocalFilter,
    UninstrumentedLockFilter,
)

__all__ = [
    "AtomicSpecFilter",
    "BlockFilter",
    "EventFilter",
    "EventPipeline",
    "ReentrantLockFilter",
    "Stage",
    "ThreadLocalFilter",
    "UninstrumentedLockFilter",
]


class EventPipeline(Pipeline):
    """Filter chain plus backend fan-out; callable as an event sink.

    Historical name for :class:`repro.pipeline.Pipeline`; the filter
    chain is passed as ``filters=`` and exposed under that name too.
    """

    def __init__(
        self,
        backends: Sequence[AnalysisBackend],
        filters: Sequence[Stage] = (),
        stats: bool = False,
    ):
        super().__init__(backends, stages=filters, stats=stats)

    @property
    def filters(self) -> list[Stage]:
        return self.stages
