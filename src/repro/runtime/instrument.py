"""The instrumentation pipeline: event filters and backend fan-out.

Mirrors RoadRunner's event plumbing (paper Section 5): the interpreter
produces one event per operation; a chain of filters may drop events
(re-entrant lock operations, thread-local data, excluded atomic
blocks); the surviving stream is fanned out to one or more analysis
backends, which can run concurrently over the same stream (e.g.
Velodrome plus a race detector, or Velodrome plus the Atomizer for
adversarial scheduling).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.backend import AnalysisBackend
from repro.events.operations import Operation, OpKind


class EventFilter:
    """Base class: transform or drop events before analysis."""

    def process(self, op: Operation) -> Optional[Operation]:
        """Return the operation to forward, or ``None`` to drop it."""
        return op


class ReentrantLockFilter(EventFilter):
    """Drop re-entrant (and hence redundant) lock acquires/releases.

    RoadRunner performs this filtering so back-ends see each lock held
    at most once (paper Section 5).  The interpreter already filters
    its own events; this filter makes hand-written traces safe too.
    """

    def __init__(self) -> None:
        self._depth: dict[tuple[int, str], int] = {}

    def process(self, op: Operation) -> Optional[Operation]:
        if op.kind is OpKind.ACQUIRE:
            key = (op.tid, op.target)
            depth = self._depth.get(key, 0)
            self._depth[key] = depth + 1
            return op if depth == 0 else None
        if op.kind is OpKind.RELEASE:
            key = (op.tid, op.target)
            depth = self._depth.get(key, 1)
            self._depth[key] = depth - 1
            return op if depth == 1 else None
        return op


class ThreadLocalFilter(EventFilter):
    """Drop accesses to data observed by only one thread so far.

    Dramatically reduces event volume, at the cost of being *slightly
    unsound* (paper Section 5, citing Eraser): the accesses performed
    before a variable first becomes shared are lost to the analysis.
    Enabled for the performance experiments, disabled by default.
    """

    def __init__(self) -> None:
        self._owner: dict[str, int] = {}
        self._shared: set[str] = set()

    def process(self, op: Operation) -> Optional[Operation]:
        if not op.is_access:
            return op
        var = op.target
        if var in self._shared:
            return op
        owner = self._owner.get(var)
        if owner is None:
            self._owner[var] = op.tid
            return None
        if owner == op.tid:
            return None
        self._shared.add(var)
        return op


class AtomicSpecFilter(EventFilter):
    """Keep only the atomic blocks of a specification.

    The Velodrome tool "takes as input a compiled Java program and a
    specification of which methods in that program should be atomic"
    (paper Section 5).  This filter implements the specification side:
    blocks whose label is *not* in the spec have their begin/end
    markers stripped, so only the specified methods are checked for
    atomicity (their operations still flow to the analyses, as data
    other transactions may conflict with).
    """

    def __init__(self, atomic_labels: Iterable[str]):
        self.atomic_labels = frozenset(atomic_labels)
        self._stacks: dict[int, list[bool]] = {}

    def process(self, op: Operation) -> Optional[Operation]:
        if op.kind is OpKind.BEGIN:
            keep = op.label in self.atomic_labels
            self._stacks.setdefault(op.tid, []).append(keep)
            return op if keep else None
        if op.kind is OpKind.END:
            stack = self._stacks.get(op.tid)
            if not stack:
                return op
            return op if stack.pop() else None
        return op


class UninstrumentedLockFilter(EventFilter):
    """Strip acquire/release events for selected locks.

    Models synchronization performed inside uninstrumented libraries
    (paper Sections 5-6): the lock still serializes the interpreter's
    threads, but no analysis sees it.  Velodrome stays precise — a
    subsequence of a serializable trace is serializable — while
    LockSet-based tools see the protected accesses as racy.
    """

    def __init__(self, locks: Iterable[str]):
        self.locks = frozenset(locks)

    def process(self, op: Operation) -> Optional[Operation]:
        if op.is_lock_op and op.target in self.locks:
            return None
        return op


class BlockFilter(EventFilter):
    """Strip the begin/end events of selected atomic blocks.

    Used to reproduce the paper's Table 1 methodology: first identify
    the non-atomic methods, then re-run performance experiments
    checking only the remaining methods, by erasing the excluded
    blocks' boundaries (their operations then run non-transactionally
    unless nested inside a kept block).
    """

    def __init__(self, exclude_labels: Iterable[str]):
        self.exclude_labels = frozenset(exclude_labels)
        self._stacks: dict[int, list[bool]] = {}

    def process(self, op: Operation) -> Optional[Operation]:
        if op.kind is OpKind.BEGIN:
            keep = op.label not in self.exclude_labels
            self._stacks.setdefault(op.tid, []).append(keep)
            return op if keep else None
        if op.kind is OpKind.END:
            stack = self._stacks.get(op.tid)
            if not stack:
                return op
            keep = stack.pop()
            return op if keep else None
        return op


class EventPipeline:
    """Filter chain plus backend fan-out; callable as an event sink."""

    def __init__(
        self,
        backends: Sequence[AnalysisBackend],
        filters: Sequence[EventFilter] = (),
    ):
        self.backends = list(backends)
        self.filters = list(filters)
        self.events_in = 0
        self.events_out = 0

    def process(self, op: Operation) -> None:
        """Run one event through the filters, then every backend."""
        self.events_in += 1
        current: Optional[Operation] = op
        for event_filter in self.filters:
            current = event_filter.process(current)
            if current is None:
                return
        self.events_out += 1
        for backend in self.backends:
            backend.process(current)

    __call__ = process

    def finish(self) -> None:
        """Signal end of stream to every backend."""
        for backend in self.backends:
            backend.finish()

    def warnings(self) -> list:
        """All warnings from all backends, in backend order."""
        collected = []
        for backend in self.backends:
            collected.extend(backend.warnings)
        return collected
