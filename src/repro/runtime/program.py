"""Concurrent programs as generator-based thread bodies.

The paper's Velodrome instruments JVM bytecode; the reproduction
replaces the JVM with a deterministic interpreter (see DESIGN.md).  A
*program* is a set of thread bodies.  A thread body is a Python
generator that yields :class:`Request` objects — read, write, acquire,
release, begin/end atomic block, spawn, join, work — and receives the
request's result (e.g. the value read) back from the interpreter::

    def incrementer():
        yield Begin("inc")
        value = yield Read("counter")
        yield Write("counter", value + 1)
        yield End()

Every yield is a scheduling point, giving the interpreter control over
interleavings at exactly the granularity RoadRunner instruments (one
event per shared-memory or lock operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

#: The type of a thread body: a generator yielding requests.
ThreadBody = Generator["Request", Any, None]
#: A factory producing a fresh thread body each run.
BodyFactory = Callable[[], ThreadBody]


class Request:
    """Base class for requests yielded by thread bodies."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Read(Request):
    """Read shared variable ``var``; the yield evaluates to its value."""

    var: str


@dataclass(frozen=True, slots=True)
class Write(Request):
    """Write ``value`` to shared variable ``var``."""

    var: str
    value: Any = 1


@dataclass(frozen=True, slots=True)
class ReadElem(Request):
    """Read element ``index`` of array ``array``.

    The paper's prototype analyses objects and fields but not arrays
    (Section 5: "Supporting arrays would be possible, but would add
    additional complexity").  This reproduction supports them: under
    element granularity (the default) each index is its own shared
    variable, under object granularity the whole array aliases to one —
    the precision contrast is experiment X2.
    """

    array: str
    index: int


@dataclass(frozen=True, slots=True)
class WriteElem(Request):
    """Write ``value`` to element ``index`` of array ``array``."""

    array: str
    index: int
    value: Any = 1


@dataclass(frozen=True, slots=True)
class Acquire(Request):
    """Acquire lock ``lock`` (blocking; re-entrant)."""

    lock: str


@dataclass(frozen=True, slots=True)
class Release(Request):
    """Release lock ``lock`` (must be held; re-entrant)."""

    lock: str


@dataclass(frozen=True, slots=True)
class Begin(Request):
    """Enter an atomic block labelled ``label`` (may nest)."""

    label: Optional[str] = None


@dataclass(frozen=True, slots=True)
class End(Request):
    """Exit the innermost atomic block."""


@dataclass(frozen=True, slots=True)
class Work(Request):
    """Consume ``units`` scheduler steps of thread-local compute.

    Produces no events; models the CPU-bound stretches of the paper's
    scientific benchmarks (sor, moldyn, montecarlo, raytracer...).
    """

    units: int = 1


@dataclass(frozen=True, slots=True)
class Yield(Request):
    """A bare scheduling point with no event."""


@dataclass(frozen=True, slots=True)
class Spawn(Request):
    """Start a new thread running ``body()``.

    The yield evaluates to the child's thread id.  The hand-off is
    modeled as a write of the per-child fork variable by the parent and
    a read by the child before its first action — plain-variable
    synchronization, exactly the fork-join idiom whose accesses look
    racy to LockSet-based tools (a Table 2 false-alarm source) while
    the precise analyses see the happens-before edge.
    """

    body: BodyFactory
    name: Optional[str] = None


@dataclass(frozen=True, slots=True)
class Join(Request):
    """Block until thread ``tid`` finishes.

    Modeled as a read of the child's join variable, written by the
    child on termination (see :class:`Spawn`).
    """

    tid: int


@dataclass(frozen=True, slots=True)
class Await(Request):
    """Block until shared variable ``var`` holds ``value``.

    Models a spin-wait loop (``while (b != v) skip;``) by suspending the
    thread and emitting only the loop's final, successful read — the one
    that creates the happens-before edge from the flag's writer.  This
    is the volatile-flag hand-off idiom of paper Section 2 that defeats
    the Atomizer but not Velodrome.
    """

    var: str
    value: Any = 1


@dataclass(frozen=True, slots=True)
class ThreadSpec:
    """One initial thread of a program."""

    body: BodyFactory
    name: Optional[str] = None


@dataclass
class Program:
    """A concurrent program: named initial threads plus metadata.

    Attributes:
        name: program name (used in reports and benchmark tables).
        threads: the initial threads, started together at time 0.
        atomic_methods: labels of atomic blocks the program declares
            (its atomicity specification).
        non_atomic_methods: ground-truth labels that are genuinely not
            atomic — i.e. some interleaving of this program produces a
            non-serializable trace of that block.  Used by the Table 2
            scorer to separate real warnings from false alarms.
        initial_store: initial values of shared variables (variables
            default to 0).
        uninstrumented_locks: locks whose acquire/release events are
            stripped before analysis, modeling synchronization inside
            uninstrumented libraries (paper Section 6: the standard
            Java libraries were not instrumented, a major Atomizer
            false-alarm source on mtrt that cannot mislead Velodrome).
    """

    name: str
    threads: list[ThreadSpec] = field(default_factory=list)
    atomic_methods: set[str] = field(default_factory=set)
    non_atomic_methods: set[str] = field(default_factory=set)
    initial_store: dict[str, Any] = field(default_factory=dict)
    uninstrumented_locks: set[str] = field(default_factory=set)

    def spawn_thread(self, body: BodyFactory, name: Optional[str] = None) -> None:
        """Add an initial thread."""
        self.threads.append(ThreadSpec(body, name))

    @property
    def false_alarm_labels(self) -> set[str]:
        """Atomic methods that are genuinely atomic (warnings on these
        are false alarms)."""
        return self.atomic_methods - self.non_atomic_methods


def atomic(label: str, inner: Iterable[Request]) -> ThreadBody:
    """Wrap a request sequence in an atomic block (helper generator).

    The inner requests' results are discarded; use explicit generator
    bodies when results matter.
    """
    yield Begin(label)
    for request in inner:
        yield request
    yield End()
