"""Thread schedulers for the deterministic interpreter.

A scheduler picks which runnable thread executes the next operation.
Seeded random scheduling stands in for the JVM's nondeterminism (the
paper samples it with five runs per experiment); the adversarial
scheduler reproduces the Section 5 technique of pausing a thread at an
Atomizer-flagged commit point so that a conflicting operation of
another thread can interleave.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol, Sequence


class Scheduler(Protocol):
    """Strategy interface: pick the next thread to run."""

    def choose(self, runnable: Sequence[int], step: int) -> int:
        """Return the tid to run next, from the non-empty ``runnable``."""
        ...


class RoundRobinScheduler:
    """Cycle through runnable threads in tid order, one op each."""

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def choose(self, runnable: Sequence[int], step: int) -> int:
        if self._last is not None:
            for tid in sorted(runnable):
                if tid > self._last:
                    self._last = tid
                    return tid
        tid = min(runnable)
        self._last = tid
        return tid


class RandomScheduler:
    """Seeded random scheduling with geometric bursts.

    Real schedulers run a thread for a while between context switches;
    ``switch_probability`` controls the chance of considering a switch
    at each step (1.0 = fully random interleaving every operation).
    """

    def __init__(self, seed: int = 0, switch_probability: float = 0.35):
        if not 0.0 < switch_probability <= 1.0:
            raise ValueError("switch_probability must be in (0, 1]")
        self.rng = random.Random(seed)
        self.switch_probability = switch_probability
        self._current: Optional[int] = None

    def choose(self, runnable: Sequence[int], step: int) -> int:
        if (
            self._current in runnable
            and self.rng.random() >= self.switch_probability
        ):
            return self._current
        self._current = runnable[self.rng.randrange(len(runnable))]
        return self._current


class AdversarialScheduler:
    """Pause threads at suspected commit points (paper Sections 5-6).

    Wraps a base scheduler.  The Atomizer's ``pause_callback`` (wired by
    the tool facade) calls :meth:`request_pause` when the running thread
    performs the racy access that commits its atomic block; the thread
    is then descheduled for ``pause_steps`` operations, inviting other
    threads to interleave a conflicting access that Velodrome will
    witness as a genuine violation.  The paper pauses for 100ms; here
    the unit is scheduler steps.
    """

    def __init__(
        self,
        base: Optional[Scheduler] = None,
        pause_steps: int = 50,
        max_pauses_per_thread: int = 25,
    ):
        self.base = base if base is not None else RandomScheduler()
        self.pause_steps = pause_steps
        self.max_pauses_per_thread = max_pauses_per_thread
        self._paused_until: dict[int, int] = {}
        self._pause_counts: dict[int, int] = {}
        self._step = 0

    def request_pause(self, tid: int) -> None:
        """Pause ``tid`` for the next ``pause_steps`` scheduling steps."""
        count = self._pause_counts.get(tid, 0)
        if count >= self.max_pauses_per_thread:
            return
        self._pause_counts[tid] = count + 1
        self._paused_until[tid] = self._step + self.pause_steps

    def choose(self, runnable: Sequence[int], step: int) -> int:
        self._step = step
        eligible = [
            tid
            for tid in runnable
            if self._paused_until.get(tid, 0) <= step
        ]
        if not eligible:
            # Everyone runnable is paused: wake the thread whose pause
            # expires first rather than deadlock.
            tid = min(runnable, key=lambda t: self._paused_until.get(t, 0))
            self._paused_until.pop(tid, None)
            return self.base.choose([tid], step)
        return self.base.choose(eligible, step)
