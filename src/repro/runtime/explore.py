"""Bounded exhaustive schedule exploration (model checking lite).

The paper's related work (Section 7, Hatcliff et al.) verifies
atomicity by model checking, noting it is "feasible for unit testing,
where the reachable state space is relatively small".  This module
provides that mode for the interpreter: enumerate *every* interleaving
of a program (up to optional bounds) and fold each resulting trace into
a summary — e.g. which atomic blocks are violated on *some* schedule,
which on none.

Because a Velodrome-style dynamic analysis judges only the observed
trace, exploration closes its coverage gap on small programs: a method
reported atomic on every schedule is atomic for that program, full
stop.  Used by the tests to validate workload ground truths and by
``examples/model_checking.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.core.optimized import VelodromeOptimized
from repro.events.trace import Trace
from repro.runtime.interpreter import Interpreter
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler


class _ScriptedScheduler:
    """Replays a fixed prefix of choices, then records a default path.

    When the prefix is exhausted the scheduler always picks the first
    runnable thread, recording every decision point it encounters; the
    explorer uses the record to branch on un-tried alternatives.
    """

    def __init__(self, prefix: Sequence[int]):
        self.prefix = list(prefix)
        self._position = 0
        #: For each step: (chosen tid, tids runnable at that step).
        self.decisions: list[tuple[int, tuple[int, ...]]] = []

    def choose(self, runnable: Sequence[int], step: int) -> int:
        options = tuple(sorted(runnable))
        if self._position < len(self.prefix):
            tid = self.prefix[self._position]
            if tid not in runnable:
                # The program is deterministic given the schedule, so a
                # replayed prefix must stay valid.
                raise AssertionError(
                    f"scripted choice {tid} not runnable at step {step}"
                )
        else:
            tid = options[0]
        self._position += 1
        self.decisions.append((tid, options))
        return tid


class ExplorationLimit(RuntimeError):
    """Raised when exploration exceeds its schedule budget."""


@dataclass
class ExplorationResult:
    """Summary of an exhaustive exploration."""

    program_name: str
    schedules: int = 0
    violating_schedules: int = 0
    violated_labels: set[str] = field(default_factory=set)
    #: Minimal (first found) violating trace, if any.
    witness: Optional[Trace] = None

    @property
    def always_atomic(self) -> bool:
        """True iff no schedule produced any violation."""
        return self.violating_schedules == 0

    def violation_rate(self) -> float:
        return (
            self.violating_schedules / self.schedules if self.schedules else 0.0
        )

    def __str__(self) -> str:
        status = "atomic on all schedules" if self.always_atomic else (
            f"violations on {self.violating_schedules}/{self.schedules} "
            f"schedules: {sorted(self.violated_labels)}"
        )
        return f"{self.program_name}: {self.schedules} schedules, {status}"


def iter_schedules(
    program_factory: Callable[[], Program],
    max_schedules: int = 10_000,
    max_steps: int = 10_000,
) -> Iterator[tuple[list[int], Trace]]:
    """Enumerate every schedule of the program, depth-first.

    Yields ``(choice_sequence, trace)`` per complete execution.  The
    program must be deterministic apart from scheduling (true of all
    generator-based programs here).  Raises :class:`ExplorationLimit`
    when more than ``max_schedules`` executions are attempted.
    """
    # Each stack entry is a schedule prefix to run.  Running a prefix
    # reveals the decision points after it; alternatives are pushed.
    pending: list[list[int]] = [[]]
    executed = 0
    while pending:
        prefix = pending.pop()
        if executed >= max_schedules:
            raise ExplorationLimit(
                f"more than {max_schedules} schedules"
            )
        executed += 1
        scheduler = _ScriptedScheduler(prefix)
        interpreter = Interpreter(
            program_factory(),
            scheduler=scheduler,
            record_trace=True,
            max_steps=max_steps,
        )
        run = interpreter.run()
        yield [chosen for chosen, _options in scheduler.decisions], run.trace
        # Branch on every decision made after the scripted prefix.
        for index in range(len(prefix), len(scheduler.decisions)):
            chosen, options = scheduler.decisions[index]
            base = [d[0] for d in scheduler.decisions[:index]]
            for alternative in options:
                if alternative != chosen:
                    pending.append(base + [alternative])


def explore(
    program_factory: Callable[[], Program],
    max_schedules: int = 10_000,
    max_steps: int = 10_000,
    stop_at_first_violation: bool = False,
) -> ExplorationResult:
    """Run Velodrome over every schedule of the program.

    Returns the aggregated :class:`ExplorationResult`; the verdict per
    schedule comes from the optimized analysis (and hence is exact for
    each observed trace).  With ``stop_at_first_violation`` the search
    returns as soon as one violating schedule is found — enough to
    certify a ground-truth "non-atomic" label without paying for the
    full enumeration.
    """
    name = program_factory().name
    result = ExplorationResult(program_name=name)
    for _choices, trace in iter_schedules(
        program_factory, max_schedules=max_schedules, max_steps=max_steps
    ):
        result.schedules += 1
        backend = VelodromeOptimized(first_warning_per_label=True)
        backend.process_trace(trace)
        if backend.error_detected:
            result.violating_schedules += 1
            result.violated_labels |= backend.warned_labels()
            if result.witness is None:
                result.witness = trace
            if stop_at_first_violation:
                break
    return result
