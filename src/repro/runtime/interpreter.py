"""Deterministic interpreter for concurrent programs.

Executes a :class:`repro.runtime.program.Program` under a pluggable
scheduler, maintaining the Figure 1 global store and emitting one
operation event per shared-memory or lock action to an event sink (the
instrumentation pipeline).  This replaces the paper's JVM + RoadRunner
substrate: analyses consume an identical event stream, but runs are
seeded and reproducible, and interleaving happens at operation
granularity independent of the host's threading (see DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.events.operations import Operation, acquire, begin, end, read, release, write
from repro.events.semantics import GlobalStore
from repro.events.trace import Trace
from repro.runtime import program as prog
from repro.runtime.scheduler import RoundRobinScheduler, Scheduler


class DeadlockError(RuntimeError):
    """All unfinished threads are blocked."""


class StepLimitExceeded(RuntimeError):
    """The run exceeded its step budget (livelock guard)."""


class ThreadStatus(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    FINISHED = "finished"


def fork_var(tid: int) -> str:
    """The fork hand-off variable written by a spawner of thread ``tid``."""
    return f"__fork_t{tid}"


def join_var(tid: int) -> str:
    """The join variable written by thread ``tid`` on termination."""
    return f"__join_t{tid}"


@dataclass
class _Thread:
    """Interpreter-side record of one thread."""

    tid: int
    name: str
    body: prog.ThreadBody
    status: ThreadStatus = ThreadStatus.READY
    response: Any = None
    pending: Optional[prog.Request] = None
    work_remaining: int = 0
    lock_depth: dict[str, int] = field(default_factory=dict)
    block_depth: int = 0
    started: bool = False
    queued: bool = False  # currently in the interpreter's runnable list

    def holds(self, lock: str) -> bool:
        return self.lock_depth.get(lock, 0) > 0


@dataclass
class RunResult:
    """Outcome of one interpreted run."""

    program_name: str
    steps: int
    events: int
    threads: int
    trace: Optional[Trace] = None
    final_store: Optional[GlobalStore] = None


class Interpreter:
    """Runs a program to completion under a scheduler.

    Args:
        program: the program to execute.
        scheduler: interleaving policy (default round-robin).
        sink: called with each emitted :class:`Operation`; usually the
            instrumentation pipeline's ``process``.
        record_trace: also accumulate the full trace (tests and small
            experiments; large benchmark runs leave this off).
        max_steps: hard bound on scheduler steps (livelock guard).
        array_granularity: how array elements name shared variables:
            ``"element"`` (default) gives every index its own variable;
            ``"object"`` aliases the whole array to one variable —
            sound for the modeled program but imprecise, the contrast
            behind the paper's no-arrays limitation (experiment X2).
    """

    def __init__(
        self,
        program: prog.Program,
        scheduler: Optional[Scheduler] = None,
        sink: Optional[Callable[[Operation], None]] = None,
        record_trace: bool = False,
        max_steps: int = 5_000_000,
        array_granularity: str = "element",
    ):
        if array_granularity not in ("element", "object"):
            raise ValueError(
                f"unknown array granularity: {array_granularity!r}"
            )
        self.array_granularity = array_granularity
        self.program = program
        self.scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self.sink = sink
        self.record_trace = record_trace
        self.max_steps = max_steps
        self.store = GlobalStore(dict(program.initial_store), {})
        self._threads: dict[int, _Thread] = {}
        self._next_tid = 1
        self._ops: list[Operation] = []
        self._events = 0
        self._steps = 0
        self._current_tid: Optional[int] = None
        self._runnable: list[int] = []
        self._unfinished = 0
        self._lock_waiters: dict[str, list[int]] = {}
        self._join_waiters: dict[int, list[int]] = {}
        self._await_waiters: dict[str, list[int]] = {}
        for spec in program.threads:
            self._create_thread(spec.body, spec.name)

    # --------------------------------------------------------------- running
    @property
    def current_tid(self) -> Optional[int]:
        """The thread currently executing (for pause callbacks)."""
        return self._current_tid

    def run(self) -> RunResult:
        """Execute until every thread finishes.

        The runnable set is maintained incrementally: threads leave it
        when they block (lock contention, join, await) and re-enter
        when the event they wait for occurs (release, thread finish,
        matching write).  This keeps the per-step cost independent of
        the total thread count.
        """
        runnable = self._runnable
        while True:
            if not runnable:
                if self._unfinished == 0:
                    break
                blocked = [
                    f"{t.name}(t{t.tid}) on {t.pending!r}"
                    for t in self._threads.values()
                    if t.status is not ThreadStatus.FINISHED
                ]
                raise DeadlockError(
                    f"{self.program.name}: all threads blocked: "
                    + "; ".join(blocked)
                )
            if self._steps >= self.max_steps:
                raise StepLimitExceeded(
                    f"{self.program.name}: exceeded {self.max_steps} steps"
                )
            tid = self.scheduler.choose(runnable, self._steps)
            self._steps += 1
            self._advance(self._threads[tid])
        return RunResult(
            program_name=self.program.name,
            steps=self._steps,
            events=self._events,
            threads=len(self._threads),
            trace=Trace(self._ops) if self.record_trace else None,
            final_store=self.store,
        )

    # ----------------------------------------------------------- thread mgmt
    def _create_thread(
        self, body_factory: prog.BodyFactory, name: Optional[str]
    ) -> _Thread:
        tid = self._next_tid
        self._next_tid += 1
        thread = _Thread(
            tid=tid, name=name or f"thread-{tid}", body=body_factory()
        )
        self._threads[tid] = thread
        self._unfinished += 1
        self._enqueue(thread)
        return thread

    def _enqueue(self, thread: _Thread) -> None:
        if not thread.queued and thread.status is not ThreadStatus.FINISHED:
            thread.queued = True
            self._runnable.append(thread.tid)

    def _dequeue(self, thread: _Thread) -> None:
        if thread.queued:
            thread.queued = False
            self._runnable.remove(thread.tid)

    def _wake_lock_waiters(self, lock: str) -> None:
        waiters = self._lock_waiters.pop(lock, None)
        if waiters:
            for tid in waiters:
                self._enqueue(self._threads[tid])

    def _wake_awaiters(self, var: str) -> None:
        waiters = self._await_waiters.pop(var, None)
        if waiters:
            for tid in waiters:
                self._enqueue(self._threads[tid])

    def _is_runnable(self, thread: _Thread) -> bool:
        if thread.status is ThreadStatus.FINISHED:
            return False
        if thread.status is ThreadStatus.READY:
            return True
        # Blocked: check whether the pending request can now proceed.
        pending = thread.pending
        if isinstance(pending, prog.Acquire):
            owner = self.store.holder(pending.lock)
            return owner is None or owner == thread.tid
        if isinstance(pending, prog.Join):
            target = self._threads.get(pending.tid)
            return target is not None and target.status is ThreadStatus.FINISHED
        if isinstance(pending, prog.Await):
            return self.store.read(pending.var) == pending.value
        raise AssertionError(f"blocked on non-blocking request {pending!r}")

    # ------------------------------------------------------------- advancing
    def _advance(self, thread: _Thread) -> None:
        self._current_tid = thread.tid
        try:
            if thread.work_remaining > 0:
                thread.work_remaining -= 1
                return
            if not thread.started:
                thread.started = True
                if thread.tid > len(self.program.threads):
                    # Spawned thread: read the fork hand-off variable
                    # before the body's first action.
                    self._emit(read(thread.tid, fork_var(thread.tid),
                                    self.store.read(fork_var(thread.tid))))
            request = thread.pending
            if request is not None:
                thread.pending = None
                thread.status = ThreadStatus.READY
            else:
                try:
                    request = thread.body.send(thread.response)
                except StopIteration:
                    self._finish_thread(thread)
                    return
                thread.response = None
            self._execute(thread, request)
        finally:
            self._current_tid = None

    def _finish_thread(self, thread: _Thread) -> None:
        held = [lock for lock, depth in thread.lock_depth.items() if depth > 0]
        if held:
            raise RuntimeError(
                f"thread {thread.name} finished holding locks {held}"
            )
        if thread.block_depth:
            raise RuntimeError(
                f"thread {thread.name} finished inside an atomic block"
            )
        thread.status = ThreadStatus.FINISHED
        self._dequeue(thread)
        self._unfinished -= 1
        self.store.write(join_var(thread.tid), 1)
        self._emit(write(thread.tid, join_var(thread.tid), 1))
        for tid in self._join_waiters.pop(thread.tid, ()):
            self._enqueue(self._threads[tid])
        self._wake_awaiters(join_var(thread.tid))

    # ------------------------------------------------------------- execution
    def _execute(self, thread: _Thread, request: prog.Request) -> None:
        tid = thread.tid
        if isinstance(request, prog.Read):
            value = self.store.read(request.var)
            self._emit(read(tid, request.var, value))
            thread.response = value
        elif isinstance(request, prog.ReadElem):
            cell = f"{request.array}[{request.index}]"
            value = self.store.read(cell)
            self._emit(read(tid, self._array_var(request.array, request.index),
                            value))
            thread.response = value
        elif isinstance(request, prog.WriteElem):
            cell = f"{request.array}[{request.index}]"
            self.store.write(cell, request.value)
            target = self._array_var(request.array, request.index)
            self._emit(write(tid, target, request.value))
            self._wake_awaiters(cell)
        elif isinstance(request, prog.Write):
            self.store.write(request.var, request.value)
            self._emit(write(tid, request.var, request.value))
            self._wake_awaiters(request.var)
        elif isinstance(request, prog.Acquire):
            self._acquire(thread, request)
        elif isinstance(request, prog.Release):
            self._release(thread, request)
        elif isinstance(request, prog.Begin):
            thread.block_depth += 1
            self._emit(begin(tid, label=request.label))
        elif isinstance(request, prog.End):
            if thread.block_depth == 0:
                raise RuntimeError(f"thread {thread.name}: End outside block")
            thread.block_depth -= 1
            self._emit(end(tid))
        elif isinstance(request, prog.Work):
            if request.units < 0:
                raise ValueError("Work units must be non-negative")
            thread.work_remaining = request.units
        elif isinstance(request, prog.Yield):
            pass
        elif isinstance(request, prog.Spawn):
            child = self._create_thread(request.body, request.name)
            self.store.write(fork_var(child.tid), 1)
            self._emit(write(tid, fork_var(child.tid), 1))
            self._wake_awaiters(fork_var(child.tid))
            thread.response = child.tid
        elif isinstance(request, prog.Join):
            target = self._threads.get(request.tid)
            if target is None:
                raise ValueError(f"join on unknown thread {request.tid}")
            if target.status is ThreadStatus.FINISHED:
                value = self.store.read(join_var(request.tid))
                self._emit(read(tid, join_var(request.tid), value))
            else:
                self._block(thread, request)
        elif isinstance(request, prog.Await):
            if self.store.read(request.var) == request.value:
                self._emit(read(tid, request.var, request.value))
                thread.response = request.value
            else:
                self._block(thread, request)
        else:
            raise TypeError(f"unknown request {request!r}")

    def _array_var(self, array: str, index: int) -> str:
        """The shared-variable name an array access is analysed under."""
        if self.array_granularity == "element":
            return f"{array}[{index}]"
        return array

    def _acquire(self, thread: _Thread, request: prog.Acquire) -> None:
        lock = request.lock
        owner = self.store.holder(lock)
        if owner is not None and owner != thread.tid:
            self._block(thread, request)
            return
        depth = thread.lock_depth.get(lock, 0)
        thread.lock_depth[lock] = depth + 1
        if depth == 0:
            self.store.acquire(thread.tid, lock)
            # Re-entrant acquires are filtered here, as RoadRunner does
            # (paper Section 5): only the 0 -> 1 transition is an event.
            self._emit(acquire(thread.tid, lock))

    def _release(self, thread: _Thread, request: prog.Release) -> None:
        lock = request.lock
        depth = thread.lock_depth.get(lock, 0)
        if depth == 0:
            raise RuntimeError(
                f"thread {thread.name} released {lock} without holding it"
            )
        thread.lock_depth[lock] = depth - 1
        if depth == 1:
            self._emit(release(thread.tid, lock))
            self.store.release(thread.tid, lock)
            self._wake_lock_waiters(lock)

    def _block(self, thread: _Thread, request: prog.Request) -> None:
        thread.status = ThreadStatus.BLOCKED
        thread.pending = request
        self._dequeue(thread)
        if isinstance(request, prog.Acquire):
            self._lock_waiters.setdefault(request.lock, []).append(thread.tid)
        elif isinstance(request, prog.Join):
            self._join_waiters.setdefault(request.tid, []).append(thread.tid)
        elif isinstance(request, prog.Await):
            self._await_waiters.setdefault(request.var, []).append(thread.tid)
        else:  # pragma: no cover - only blocking requests reach here
            raise AssertionError(f"cannot block on {request!r}")

    # -------------------------------------------------------------- emitting
    def _emit(self, op: Operation) -> None:
        self._events += 1
        if self.sink is not None:
            self.sink(op)
        if self.record_trace:
            self._ops.append(op)
