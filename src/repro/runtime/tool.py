"""Tool facade: run a program under analyses, collect warnings and timings.

This is the reproduction of the Velodrome *tool* of paper Section 5:
program in, instrumented run out, with per-backend warnings, timing,
and happens-before-graph statistics.  Execution goes through the
:mod:`repro.pipeline` subsystem — a :class:`~repro.pipeline.LiveSource`
streams interpreter events through filter stages into a fan-out over
all requested back-ends, so one run drives every analysis.  It also
wires up the adversarial scheduling mode, where a concurrently-running
Atomizer flags commit points and the scheduler pauses the offending
thread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.baselines.atomizer import Atomizer
from repro.core.backend import AnalysisBackend
from repro.core.optimized import VelodromeOptimized
from repro.core.reports import Warning
from repro.events.trace import Trace
from repro.graph.hbgraph import GraphStats
from repro.pipeline import (
    LiveSource,
    Pipeline,
    PipelineMetrics,
    Stage,
    UninstrumentedLockFilter,
)
from repro.runtime.interpreter import Interpreter, RunResult
from repro.runtime.program import Program
from repro.runtime.scheduler import (
    AdversarialScheduler,
    RandomScheduler,
    Scheduler,
)

#: A factory producing a fresh backend per run.
BackendFactory = Callable[[], AnalysisBackend]


@dataclass
class ToolRun:
    """Result of running one program under one backend configuration."""

    program: Program
    run: RunResult
    backends: list[AnalysisBackend]
    elapsed: float
    scheduler: Scheduler
    metrics: Optional[PipelineMetrics] = None

    @property
    def warnings(self) -> list[Warning]:
        collected: list[Warning] = []
        for backend in self.backends:
            collected.extend(backend.warnings)
        return collected

    @property
    def warning_count(self) -> int:
        """Total warnings across backends, without copying any lists."""
        return sum(backend.warning_count for backend in self.backends)

    @property
    def trace(self) -> Optional[Trace]:
        return self.run.trace

    def warned_labels(self) -> set[str]:
        """Distinct block labels warned about by any backend."""
        labels: set[str] = set()
        for backend in self.backends:
            labels |= backend.warned_labels()
        return labels

    def labels_from(self, backend_name: str) -> set[str]:
        """Distinct labels warned about by one backend (by name).

        Use this in adversarial runs, where a guiding Atomizer shares
        the pipeline with Velodrome and its (possibly false) reduction
        warnings must not be conflated with Velodrome's.
        """
        labels: set[str] = set()
        for backend in self.backends:
            if backend.name == backend_name:
                labels |= backend.warned_labels()
        return labels

    def graph_stats(self) -> Optional[GraphStats]:
        """Happens-before graph statistics of the first Velodrome backend."""
        for backend in self.backends:
            graph = getattr(backend, "graph", None)
            if graph is not None:
                return graph.stats
        return None


def build_pipeline(
    program: Program,
    backends: Sequence[AnalysisBackend],
    stages: Sequence[Stage] = (),
    stats: bool = False,
) -> Pipeline:
    """Assemble the event pipeline for one instrumented run.

    Locks listed in ``program.uninstrumented_locks`` are filtered out
    of the event stream automatically (library synchronization).
    """
    all_stages = list(stages)
    if program.uninstrumented_locks:
        all_stages.insert(
            0, UninstrumentedLockFilter(program.uninstrumented_locks)
        )
    return Pipeline(backends, stages=all_stages, stats=stats)


def run_with_backends(
    program: Program,
    backends: Sequence[AnalysisBackend],
    scheduler: Optional[Scheduler] = None,
    filters: Sequence[Stage] = (),
    record_trace: bool = False,
    max_steps: int = 5_000_000,
    stats: bool = False,
) -> ToolRun:
    """Execute ``program`` once, streaming events to all ``backends``.

    One pass: the interpreter runs the program a single time and the
    pipeline fans every surviving event out to every backend.  With
    ``stats=True`` the returned :class:`ToolRun` carries a
    :class:`~repro.pipeline.PipelineMetrics` snapshot (per-kind event
    counters, per-stage drops, per-backend wall time).
    """
    scheduler = scheduler if scheduler is not None else RandomScheduler()
    pipeline = build_pipeline(program, backends, stages=filters, stats=stats)
    source = LiveSource(
        program,
        scheduler=scheduler,
        record_trace=record_trace,
        max_steps=max_steps,
    )
    result = pipeline.run(source)
    return ToolRun(
        program=program,
        run=result.run,
        backends=list(backends),
        elapsed=pipeline.elapsed,
        scheduler=scheduler,
        metrics=pipeline.metrics(),
    )


def run_uninstrumented(
    program: Program,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 5_000_000,
) -> tuple[RunResult, float]:
    """Execute ``program`` with no event sink (the Table 1 base time)."""
    scheduler = scheduler if scheduler is not None else RandomScheduler()
    interpreter = Interpreter(
        program, scheduler=scheduler, sink=None, max_steps=max_steps
    )
    started = time.perf_counter()
    run = interpreter.run()
    elapsed = time.perf_counter() - started
    return run, elapsed


def run_velodrome(
    program: Program,
    seed: int = 0,
    adversarial: bool = False,
    pause_steps: int = 50,
    max_pauses_per_thread: int = 25,
    filters: Sequence[Stage] = (),
    record_trace: bool = False,
    first_warning_per_label: bool = True,
    max_steps: int = 5_000_000,
    stats: bool = False,
    **velodrome_options,
) -> ToolRun:
    """Run Velodrome over ``program`` with a seeded random scheduler.

    With ``adversarial=True``, an Atomizer runs concurrently and the
    scheduler pauses a thread for ``pause_steps`` operations whenever
    the Atomizer flags its atomic block's commit point (the technique
    of paper Sections 5-6 that raises defect-detection rates).
    """
    velodrome = VelodromeOptimized(
        first_warning_per_label=first_warning_per_label, **velodrome_options
    )
    backends: list[AnalysisBackend] = [velodrome]
    if adversarial:
        scheduler: Scheduler = AdversarialScheduler(
            base=RandomScheduler(seed),
            pause_steps=pause_steps,
            max_pauses_per_thread=max_pauses_per_thread,
        )
        atomizer = Atomizer(
            pause_callback=lambda op, position: scheduler.request_pause(op.tid)
        )
        backends.append(atomizer)
    else:
        scheduler = RandomScheduler(seed)
    return run_with_backends(
        program,
        backends,
        scheduler=scheduler,
        filters=filters,
        record_trace=record_trace,
        max_steps=max_steps,
        stats=stats,
    )
