"""A high-repetition server-shaped workload: ``request_loop``.

A dispatcher thread hands a stream of requests to a small pool of
worker threads over volatile-flag mailboxes (the :class:`~repro.
runtime.program.Await` hand-off idiom); each worker runs the request's
handler as one atomic transaction over a session row guarded by that
session's lock.  Every handler execution therefore emits the *same*
region shape (modulo which of the few sessions it touches), which is
exactly the trace profile region memoization
(``--memoize``, :mod:`repro.core.memo`) is built for: a handful of
region shapes certified once, then applied thousands or millions of
times.

Unlike the paper-suite models this workload has no Table 1/2 row — it
is the repetition benchmark for ``repro bench memo`` and the docs'
performance numbers.  Ground truth is declared: every handler is
genuinely atomic (reads and writes of a session row only ever happen
under that session's lock), so any warning on it is a false alarm.

The token-passing hand-off (dispatcher awaits each request's
completion before dispatching the next) keeps exactly one thread
runnable at a time, so handler regions appear *contiguously* in the
recorded trace — the shape a real request loop produces under low
concurrency, and the one the region assembler memoizes without
cross-thread interleaving breaking regions apart.

``scale`` multiplies the request count linearly (``scale=1.0`` is 64
requests, ~1000 events), so a few thousand scale units reach millions
of events for benchmarking.
"""

from __future__ import annotations

from repro.runtime.program import (
    Acquire,
    Await,
    Begin,
    End,
    Program,
    Read,
    Release,
    ThreadSpec,
    Write,
)
from repro.workloads.base import Workload, register

#: Worker pool size; each worker owns one mailbox/done-flag pair.
WORKERS = 3

#: Session rows; requests round-robin over them, so the trace contains
#: exactly this many distinct handler region shapes.
SESSIONS = 8

#: Requests at ``scale=1.0``.
BASE_REQUESTS = 64

#: Read-modify-write rounds inside one handler transaction.  Several
#: updates to the same session row keep the region's *footprint* small
#: (one variable, one lock) while growing its length — the profile
#: where applying a cached summary beats replaying ops one by one.
HANDLER_ROUNDS = 12

HANDLER = "handler"


def _dispatcher(requests: int):
    """Hand request ``r`` to worker ``r % WORKERS``, await completion."""

    def body():
        for r in range(1, requests + 1):
            worker = r % WORKERS
            yield Write(f"mail_{worker}", r)
            yield Await(f"done_{worker}", r)

    return body


def _worker(index: int, requests: int):
    """Serve this worker's share of the request stream, in order."""

    def body():
        for r in range(1, requests + 1):
            if r % WORKERS != index:
                continue
            yield Await(f"mail_{index}", r)
            session = r % SESSIONS
            yield Begin(HANDLER)
            yield Acquire(f"session_lock_{session}")
            for _ in range(HANDLER_ROUNDS):
                count = yield Read(f"sess_{session}")
                yield Write(f"sess_{session}", count + 1)
            yield Release(f"session_lock_{session}")
            yield End()
            yield Write(f"done_{index}", r)

    return body


def build(scale: float = 1.0) -> Program:
    """The request loop at ``scale`` (requests grow linearly)."""
    requests = max(WORKERS, int(round(BASE_REQUESTS * scale)))
    program = Program(
        name="request_loop",
        atomic_methods={HANDLER},
        non_atomic_methods=set(),
    )
    program.threads.append(ThreadSpec(_dispatcher(requests), "dispatcher"))
    for index in range(WORKERS):
        program.threads.append(
            ThreadSpec(_worker(index, requests), f"worker{index}")
        )
    return program


REQUEST_LOOP = register(Workload(
    name="request_loop",
    build=build,
    description="high-repetition request/handler loop (memo benchmark)",
    compute_bound=False,
    table1=None,
    table2=None,
))
