"""``cache``: a read-heavy cache under invalidation storms.

Reader threads mostly perform locked single-section lookups
(``cache.read``).  Every few accesses a reader misses and runs
``cache.get_or_fill``: read the version and the entry under the cache
lock, **release the lock to recompute the value**, then re-acquire and
fill the entry — the compound read-compute-write that every real cache
gets wrong first.  An invalidator thread meanwhile fires storms that
bump the version and clear every entry in one locked section
(``cache.invalidate``, atomic).  A storm (or a competing fill of the
same entry) landing inside a fill's recompute window makes
``cache.get_or_fill`` genuinely non-atomic.

``sharing`` skews reader traffic toward entry 0, concentrating the
fill/fill and fill/storm collisions.

Declared ground truth: **violating**, blamed ``cache.get_or_fill``.
"""

from __future__ import annotations

import random

from repro.runtime.program import (
    Acquire,
    Begin,
    End,
    Program,
    Read,
    Release,
    ThreadSpec,
    Work,
    Write,
)
from repro.workloads.base import Workload
from repro.workloads.server.base import (
    ScalePoint,
    ServerFamily,
    register_family,
    uniform_truth,
)

#: Reader threads.
READERS = 3

#: Cached entries.
ENTRIES = 4

#: Reads per reader at ``scale=1.0``.
BASE_READS = 30

#: Invalidation storms at ``scale=1.0``.
BASE_STORMS = 6

#: Every Nth access is a miss that runs the compound fill.
MISS_EVERY = 5

#: Default probability a reader targets the hot entry (entry 0).
SHARING = 0.6

#: Compute between a fill's version check and its write-back — the
#: window a storm or competing fill must land in.
FILL_GAP = 3

READ = "cache.read"
FILL = "cache.get_or_fill"
INVALIDATE = "cache.invalidate"

_LOCK = "cache_lock"
_VERSION = "cache_version"


def _entry(index: int) -> str:
    return f"cache_entry_{index}"


def _reader(reader: int, reads: int, sharing: float, seed: int):
    def body():
        rng = random.Random(f"cache-reader/{seed}/{reader}")
        for access in range(reads):
            if rng.random() < sharing:
                entry = _entry(0)
            else:
                entry = _entry(rng.randrange(ENTRIES))
            if access % MISS_EVERY == MISS_EVERY - 1:
                yield Begin(FILL)
                yield Acquire(_LOCK)
                yield Read(_VERSION)
                yield Read(entry)
                yield Release(_LOCK)
                yield Work(FILL_GAP)       # recompute the value
                yield Acquire(_LOCK)
                yield Read(_VERSION)
                yield Write(entry, access + 1)
                yield Release(_LOCK)
                yield End()
            else:
                yield Begin(READ)
                yield Acquire(_LOCK)
                yield Read(_VERSION)
                yield Read(entry)
                yield Release(_LOCK)
                yield End()

    return body


def _invalidator(storms: int):
    def body():
        for _ in range(storms):
            yield Begin(INVALIDATE)
            yield Acquire(_LOCK)
            version = yield Read(_VERSION)
            yield Write(_VERSION, version + 1)
            for index in range(ENTRIES):
                yield Write(_entry(index), 0)
            yield Release(_LOCK)
            yield End()
            yield Work(4)

    return body


def build(
    scale: float = 1.0,
    *,
    readers: int = READERS,
    sharing: float = SHARING,
    seed: int = 0,
) -> Program:
    """The cache at ``scale`` (reads and storms grow linearly)."""
    reads = max(MISS_EVERY, int(round(BASE_READS * scale)))
    storms = max(2, int(round(BASE_STORMS * scale)))
    program = Program(
        name="cache",
        atomic_methods={READ, FILL, INVALIDATE},
        non_atomic_methods={FILL},
    )
    for reader in range(readers):
        program.threads.append(
            ThreadSpec(_reader(reader, reads, sharing, seed), f"reader{reader}")
        )
    program.threads.append(ThreadSpec(_invalidator(storms), "invalidator"))
    return program


_POINTS = (
    ScalePoint("smoke", 1.0, 700),
    ScalePoint("small", 22.0, 15_000),
    ScalePoint("medium", 220.0, 150_000),
    ScalePoint("large", 2_200.0, 1_500_000),
)

CACHE = register_family(ServerFamily(
    workload=Workload(
        name="cache",
        build=build,
        description="read-heavy cache, compound fill under storms",
        compute_bound=False,
        table1=None,
        table2=None,
    ),
    kind="cache",
    scale_points=_POINTS,
    truth=uniform_truth(
        _POINTS, serializable=False, blamed=frozenset({FILL})
    ),
    fuzz_scale=0.35,
    knobs={
        "readers": f"reader threads (default {READERS})",
        "sharing": f"probability of targeting the hot entry "
                   f"(default {SHARING})",
        "seed": "entry-choice generator seed (default 0)",
    },
))
