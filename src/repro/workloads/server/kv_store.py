"""``kv_store``: a memcached-like key-value store with eviction/expiry.

Client threads issue a seeded get/put mix over striped shards (one
lock per shard); ``sharing`` is the fraction of operations aimed at
the *hot* keys every client shares, the rest touch client-private
keys.  ``kv.put`` updates the key and the global size counter under
nested two-phase locking (stripe, then meta) — atomic.  A background
expiry sweeper clears keys shard by shard under the shard's stripe —
atomic.

The defect is the **eviction** thread: ``kv.evict`` reads the size
counter under the meta lock, *releases it* to pick and clear a victim
under the victim's stripe, then re-acquires the meta lock to decrement
the counter — the classic check-then-act compound.  A concurrent
``kv.put`` bumping the counter inside that window makes the eviction
transaction genuinely non-atomic, and under the default contention the
violating interleaving is observed at every scale point.

Declared ground truth: **violating**, blamed family ``kv.evict``.
"""

from __future__ import annotations

import random

from repro.runtime.program import (
    Acquire,
    Begin,
    End,
    Program,
    Read,
    Release,
    ThreadSpec,
    Work,
    Write,
)
from repro.workloads.base import Workload
from repro.workloads.server.base import (
    ScalePoint,
    ServerFamily,
    register_family,
    uniform_truth,
)

#: Client threads issuing the get/put mix.
CLIENTS = 3

#: Lock stripes; every key lives in exactly one shard.
SHARDS = 4

#: Hot (shared) keys per shard.
HOT_KEYS = 2

#: Client operations each at ``scale=1.0``.
BASE_OPS = 40

#: Eviction rounds at ``scale=1.0``.
BASE_EVICTIONS = 8

#: Expiry sweeps at ``scale=1.0``.
BASE_SWEEPS = 3

#: Default fraction of client operations on the shared hot keys.
SHARING = 0.4

#: Fraction of client operations that are puts (the rest are gets).
PUT_RATIO = 0.45

#: Compute between the eviction's size check and its decrement — the
#: window a concurrent put must land in for the violation to surface.
EVICT_GAP = 4

GET = "kv.get"
PUT = "kv.put"
EVICT = "kv.evict"
EXPIRE = "kv.expire"

_META_LOCK = "kv_meta_lock"
_SIZE = "kv_size"


def _stripe(shard: int) -> str:
    return f"kv_stripe_{shard}"


def _hot_key(shard: int, index: int) -> str:
    return f"kv_{shard}_hot{index}"


def _private_key(shard: int, client: int) -> str:
    return f"kv_{shard}_c{client}"


def _client(client: int, ops: int, sharing: float, seed: int):
    def body():
        rng = random.Random(f"kv-client/{seed}/{client}")
        for _ in range(ops):
            shard = rng.randrange(SHARDS)
            if rng.random() < sharing:
                key = _hot_key(shard, rng.randrange(HOT_KEYS))
            else:
                key = _private_key(shard, client)
            if rng.random() < PUT_RATIO:
                yield Begin(PUT)
                yield Acquire(_stripe(shard))
                value = yield Read(key)
                yield Write(key, value + 1)
                yield Acquire(_META_LOCK)
                size = yield Read(_SIZE)
                yield Write(_SIZE, size + 1)
                yield Release(_META_LOCK)
                yield Release(_stripe(shard))
                yield End()
            else:
                yield Begin(GET)
                yield Acquire(_stripe(shard))
                yield Read(key)
                yield Release(_stripe(shard))
                yield End()

    return body


def _evictor(rounds: int, seed: int):
    def body():
        rng = random.Random(f"kv-evict/{seed}")
        for _ in range(rounds):
            shard = rng.randrange(SHARDS)
            victim = _hot_key(shard, rng.randrange(HOT_KEYS))
            yield Begin(EVICT)
            yield Acquire(_META_LOCK)
            size = yield Read(_SIZE)
            yield Release(_META_LOCK)
            yield Work(EVICT_GAP)          # pick the LRU victim
            yield Acquire(_stripe(shard))
            yield Read(victim)
            yield Write(victim, 0)
            yield Release(_stripe(shard))
            yield Acquire(_META_LOCK)
            stale = yield Read(_SIZE)
            yield Write(_SIZE, max(stale - 1, 0) if size else 0)
            yield Release(_META_LOCK)
            yield End()
            yield Work(2)

    return body


def _expirer(sweeps: int):
    def body():
        for sweep in range(sweeps):
            for shard in range(SHARDS):
                yield Begin(EXPIRE)
                yield Acquire(_stripe(shard))
                for index in range(HOT_KEYS):
                    yield Read(_hot_key(shard, index))
                yield Write(_hot_key(shard, sweep % HOT_KEYS), 0)
                yield Release(_stripe(shard))
                yield End()
            yield Work(3)

    return body


def build(
    scale: float = 1.0,
    *,
    clients: int = CLIENTS,
    sharing: float = SHARING,
    seed: int = 0,
) -> Program:
    """The KV store at ``scale`` (ops/evictions/sweeps grow linearly)."""
    ops = max(4, int(round(BASE_OPS * scale)))
    evictions = max(2, int(round(BASE_EVICTIONS * scale)))
    sweeps = max(1, int(round(BASE_SWEEPS * scale)))
    program = Program(
        name="kv_store",
        atomic_methods={GET, PUT, EVICT, EXPIRE},
        non_atomic_methods={EVICT},
    )
    for client in range(clients):
        program.threads.append(
            ThreadSpec(_client(client, ops, sharing, seed), f"client{client}")
        )
    program.threads.append(ThreadSpec(_evictor(evictions, seed), "evictor"))
    program.threads.append(ThreadSpec(_expirer(sweeps), "expirer"))
    return program


_POINTS = (
    ScalePoint("smoke", 1.0, 1_100),
    ScalePoint("small", 14.0, 15_000),
    ScalePoint("medium", 140.0, 150_000),
    ScalePoint("large", 1_400.0, 1_500_000),
)

KV_STORE = register_family(ServerFamily(
    workload=Workload(
        name="kv_store",
        build=build,
        description="memcached-like striped KV store, racy eviction",
        compute_bound=False,
        table1=None,
        table2=None,
    ),
    kind="kv-store",
    scale_points=_POINTS,
    truth=uniform_truth(
        _POINTS, serializable=False, blamed=frozenset({EVICT})
    ),
    fuzz_scale=0.25,
    knobs={
        "clients": f"client threads (default {CLIENTS})",
        "sharing": f"fraction of ops on shared hot keys "
                   f"(default {SHARING})",
        "seed": "key/op mix generator seed (default 0)",
    },
))
