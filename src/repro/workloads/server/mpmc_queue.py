"""``mpmc_queue``: a bounded multi-producer/multi-consumer queue.

Producers push into a ring buffer, consumers pop, both under one queue
lock — except for the classic optimization bug: ``queue.put`` first
reads the depth counter *without the lock* (the optimistic "is there
room?" check), computes for a moment, then takes the lock and pushes.
The unlocked read and the locked push live in the same transaction, so
any concurrent depth update landing in the window (another producer's
push, a consumer's pop) makes the put genuinely non-atomic.
``queue.get`` does its whole empty-check-and-pop under the lock —
atomic, including the empty-handed retry rounds.

Producers and consumers move the same number of items, so every run
terminates; consumers spin (bounded by production) when the queue is
empty.

Declared ground truth: **violating**, blamed family ``queue.put``.
"""

from __future__ import annotations

from repro.runtime.program import (
    Acquire,
    Begin,
    End,
    Program,
    Read,
    Release,
    ThreadSpec,
    Work,
    Write,
)
from repro.workloads.base import Workload
from repro.workloads.server.base import (
    ScalePoint,
    ServerFamily,
    register_family,
    uniform_truth,
)

#: Producer / consumer thread counts.
PRODUCERS = 2
CONSUMERS = 2

#: Ring-buffer capacity (slot count).
CAPACITY = 4

#: Items each producer pushes at ``scale=1.0``.  Total production is
#: always a multiple of ``CONSUMERS`` so consumption balances exactly.
BASE_ITEMS = 30

#: Compute between the optimistic depth check and the locked push —
#: the window a concurrent depth update must land in.
PUT_GAP = 3

PUT = "queue.put"
GET = "queue.get"

_LOCK = "q_lock"
_DEPTH = "q_depth"
_HEAD = "q_head"
_TAIL = "q_tail"


def _slot(position: int) -> str:
    return f"q_slot_{position % CAPACITY}"


def _producer(producer: int, items: int):
    def body():
        for item in range(items):
            yield Work(1)
            yield Begin(PUT)
            yield Read(_DEPTH)             # optimistic, UNLOCKED room check
            yield Work(PUT_GAP)
            yield Acquire(_LOCK)
            depth = yield Read(_DEPTH)
            yield Write(_DEPTH, depth + 1)
            tail = yield Read(_TAIL)
            yield Write(_TAIL, tail + 1)
            yield Write(_slot(tail), producer * items + item + 1)
            yield Release(_LOCK)
            yield End()

    return body


def _consumer(quota: int):
    def body():
        taken = 0
        while taken < quota:
            yield Begin(GET)
            yield Acquire(_LOCK)
            depth = yield Read(_DEPTH)
            if depth > 0:
                yield Write(_DEPTH, depth - 1)
                head = yield Read(_HEAD)
                yield Write(_HEAD, head + 1)
                yield Read(_slot(head))
            yield Release(_LOCK)
            yield End()
            if depth > 0:
                taken += 1
            yield Work(1)

    return body


def build(
    scale: float = 1.0,
    *,
    producers: int = PRODUCERS,
    consumers: int = CONSUMERS,
    seed: int = 0,
) -> Program:
    """The bounded queue at ``scale`` (items per producer grow linearly).

    ``seed`` is accepted for interface uniformity; the push/pop volume
    is fixed by the thread counts and scale.
    """
    del seed
    items = max(consumers, int(round(BASE_ITEMS * scale)))
    # Balance production against consumption exactly.
    items -= items % consumers
    quota = items * producers // consumers
    program = Program(
        name="mpmc_queue",
        atomic_methods={PUT, GET},
        non_atomic_methods={PUT},
    )
    for producer in range(producers):
        program.threads.append(
            ThreadSpec(_producer(producer, items), f"producer{producer}")
        )
    for consumer in range(consumers):
        program.threads.append(
            ThreadSpec(_consumer(quota), f"consumer{consumer}")
        )
    return program


_POINTS = (
    ScalePoint("smoke", 1.0, 1_300),
    ScalePoint("small", 12.0, 15_000),
    ScalePoint("medium", 120.0, 150_000),
    ScalePoint("large", 1_200.0, 1_500_000),
)

MPMC_QUEUE = register_family(ServerFamily(
    workload=Workload(
        name="mpmc_queue",
        build=build,
        description="bounded MPMC queue, optimistic unlocked room check",
        compute_bound=False,
        table1=None,
        table2=None,
    ),
    kind="queue",
    scale_points=_POINTS,
    truth=uniform_truth(
        _POINTS, serializable=False, blamed=frozenset({PUT})
    ),
    fuzz_scale=0.25,
    knobs={
        "producers": f"producer threads (default {PRODUCERS})",
        "consumers": f"consumer threads (default {CONSUMERS})",
        "seed": "accepted for uniformity; the mix is deterministic",
    },
))
