"""``web_pipeline``: an nginx-like staged request pipeline.

An acceptor thread admits requests into a bounded ring of buffer
slots; three handler stages (``web.parse`` → ``web.handle`` →
``web.log``) each await their stage mailbox, read the previous
stage's slot, write their own output slot, and bump a shared request
counter under the stats lock.  The acceptor admits request ``r`` only
after the whole chain finished request ``r - depth``, so slot reuse is
always ordered through the completion flag: every conflicting slot
access is happens-before ordered by the mailbox/completion hand-offs,
and the only lock-mediated state (the shared counter) is a single
locked section per transaction.

Declared ground truth: **serializable** at every scale point — the
interesting property here is that the pipeline stays clean *without*
a single global lock, purely through hand-off ordering.
"""

from __future__ import annotations

from repro.runtime.program import (
    Acquire,
    Await,
    Begin,
    End,
    Program,
    Read,
    Release,
    ThreadSpec,
    Work,
    Write,
)
from repro.workloads.base import Workload
from repro.workloads.server.base import (
    ScalePoint,
    ServerFamily,
    register_family,
    uniform_truth,
)

#: Handler stages, in pipeline order.
STAGES = ("web.parse", "web.handle", "web.log")

#: Ring-buffer slots per stage boundary; also the pipelining depth.
SLOTS = 4

#: Requests accepted at ``scale=1.0``.
BASE_REQUESTS = 50

ACCEPT = "web.accept"

_STATS_LOCK = "web_stats_lock"
_TOTAL = "web_stat_total"
_DONE = "web_done"


def _mail(stage: int, request: int) -> str:
    # Slot-indexed mailboxes: the slot for request ``r`` is rewritten
    # only at ``r + SLOTS``, and the admission gate guarantees the
    # consumer has long consumed ``r`` by then — no lost wakeups.
    return f"web_mail_{stage}_{request % SLOTS}"


def _done(request: int) -> str:
    return f"web_done_{request % SLOTS}"


def _slot(stage: int, request: int) -> str:
    return f"web_buf_{stage}_{request % SLOTS}"


def _acceptor(requests: int, depth: int):
    def body():
        for request in range(1, requests + 1):
            if request > depth:
                yield Await(_done(request - depth), request - depth)
            yield Begin(ACCEPT)
            yield Write(_slot(0, request), request)
            yield End()
            yield Write(_mail(0, request), request)

    return body


def _stage(index: int, label: str, requests: int):
    last = index == len(STAGES) - 1

    def body():
        for request in range(1, requests + 1):
            yield Await(_mail(index, request), request)
            yield Begin(label)
            value = yield Read(_slot(index, request))
            yield Work(1)
            yield Write(_slot(index + 1, request), value + 1)
            yield Acquire(_STATS_LOCK)
            total = yield Read(_TOTAL)
            yield Write(_TOTAL, total + 1)
            yield Release(_STATS_LOCK)
            yield End()
            if last:
                yield Write(_done(request), request)
            else:
                yield Write(_mail(index + 1, request), request)

    return body


def build(
    scale: float = 1.0,
    *,
    depth: int = SLOTS,
    seed: int = 0,
) -> Program:
    """The staged pipeline at ``scale`` (requests grow linearly).

    ``seed`` is accepted for interface uniformity; the pipeline is a
    fixed hand-off structure, so it has no randomized choices.
    """
    del seed
    requests = max(depth + 1, int(round(BASE_REQUESTS * scale)))
    depth = max(1, min(depth, SLOTS))
    program = Program(
        name="web_pipeline",
        atomic_methods={ACCEPT, *STAGES},
        non_atomic_methods=set(),
    )
    program.threads.append(ThreadSpec(_acceptor(requests, depth), "acceptor"))
    for index, label in enumerate(STAGES):
        program.threads.append(
            ThreadSpec(_stage(index, label, requests), label.split(".")[1])
        )
    return program


_POINTS = (
    ScalePoint("smoke", 1.0, 1_750),
    ScalePoint("small", 12.0, 21_000),
    ScalePoint("medium", 120.0, 210_000),
    ScalePoint("large", 1_200.0, 2_100_000),
)

WEB_PIPELINE = register_family(ServerFamily(
    workload=Workload(
        name="web_pipeline",
        build=build,
        description="nginx-like staged request pipeline, hand-off ordered",
        compute_bound=False,
        table1=None,
        table2=None,
    ),
    kind="web-server",
    scale_points=_POINTS,
    truth=uniform_truth(_POINTS, serializable=True),
    fuzz_scale=0.2,
    knobs={
        "depth": f"in-flight requests, capped at {SLOTS} ring slots "
                 f"(default {SLOTS})",
        "seed": "accepted for uniformity; the pipeline is deterministic",
    },
))
