"""Server-shaped workloads: realistic sharing patterns at scale.

Five parameterized families model the workload shapes the scaling
literature evaluates on (see PAPERS.md — Tunç et al.'s FastAtomicity
and Mathur & Viswanathan's vector-clock checker both bench on
server/application traces rather than dense synthetic contention):

- ``kv_store`` — memcached-like striped KV store; racy eviction
  (**violating**, blames ``kv.evict``)
- ``web_pipeline`` — nginx-like staged request pipeline, hand-off
  ordered (**serializable**)
- ``mpmc_queue`` — bounded producer/consumer queue; optimistic
  unlocked room check (**violating**, blames ``queue.put``)
- ``conn_pool`` — connection pool; ownership-transfer unlocked use
  (**serializable**)
- ``cache`` — read-heavy cache under invalidation storms; compound
  fill (**violating**, blames ``cache.get_or_fill``)

Each family scales linearly from ~1–2k events (``smoke``) to ~2M
(``large``) and declares its ground truth per scale point; the
``repro lab`` experiment driver asserts that truth at every matrix
cell before reporting a number.  Families register in the global
workload registry with ``table1=None`` so they stay out of
``paper_workloads()`` and the paper-table harnesses.
"""

# Imported for their registration side effects, in canonical order.
from repro.workloads.server import kv_store      # noqa: F401
from repro.workloads.server import web_pipeline  # noqa: F401
from repro.workloads.server import mpmc_queue    # noqa: F401
from repro.workloads.server import conn_pool     # noqa: F401
from repro.workloads.server import cache         # noqa: F401
from repro.workloads.server.base import (
    LARGE,
    MEDIUM,
    POINT_ORDER,
    SERVER_FAMILIES,
    SMALL,
    SMOKE,
    GroundTruth,
    ScalePoint,
    ServerFamily,
    get_family,
    register_family,
    server_families,
    uniform_truth,
)

__all__ = [
    "GroundTruth",
    "LARGE",
    "MEDIUM",
    "POINT_ORDER",
    "SERVER_FAMILIES",
    "SMALL",
    "SMOKE",
    "ScalePoint",
    "ServerFamily",
    "cache",
    "conn_pool",
    "get_family",
    "kv_store",
    "mpmc_queue",
    "register_family",
    "server_families",
    "uniform_truth",
    "web_pipeline",
]
