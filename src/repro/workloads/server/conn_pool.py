"""``conn_pool``: a connection pool with lease / use / return.

Worker threads lease a connection slot (scan the free flags under the
pool lock, claim the first free one), use it, and return it.
``pool.use`` performs an **unlocked** read-modify-write on the leased
connection's state — no lock protects it, yet the workload is
serializable: only the current lease holder touches a connection's
state, and successive holders are happens-before ordered through the
pool-lock conflict chain (the returner writes the free flag under the
lock; the next leaser reads it under the lock).  This is the classic
ownership-transfer idiom that drowns lock-set analyses in false alarms
while a happens-before checker like Velodrome stays silent.

There are fewer slots than workers, so leases contend and exhausted
scans retry (each retry is its own atomic ``pool.lease`` attempt).

Declared ground truth: **serializable** at every scale point.
"""

from __future__ import annotations

from repro.runtime.program import (
    Acquire,
    Begin,
    End,
    Program,
    Read,
    Release,
    ThreadSpec,
    Work,
    Write,
)
from repro.workloads.base import Workload
from repro.workloads.server.base import (
    ScalePoint,
    ServerFamily,
    register_family,
    uniform_truth,
)

#: Worker threads competing for connections.
WORKERS = 3

#: Connection slots — fewer than the workers, so leases contend.
SLOTS = 2

#: Lease/use/return rounds per worker at ``scale=1.0``.
BASE_ROUNDS = 22

LEASE = "pool.lease"
USE = "pool.use"
RETURN = "pool.return"

_LOCK = "pool_lock"
_LEASES = "pool_leases"
_RETURNS = "pool_returns"


def _free(slot: int) -> str:
    return f"pool_free_{slot}"


def _state(slot: int) -> str:
    return f"conn_state_{slot}"


def _worker(rounds: int, slots: int):
    def body():
        for _ in range(rounds):
            # Lease: scan for a free slot; retry until one is claimed.
            claimed = -1
            while claimed < 0:
                yield Begin(LEASE)
                yield Acquire(_LOCK)
                for slot in range(slots):
                    free = yield Read(_free(slot))
                    if free:
                        yield Write(_free(slot), 0)
                        count = yield Read(_LEASES)
                        yield Write(_LEASES, count + 1)
                        claimed = slot
                        break
                yield Release(_LOCK)
                yield End()
                if claimed < 0:
                    yield Work(1)          # pool exhausted; back off
            # Use: unlocked rmw, exclusive by lease ownership.
            yield Begin(USE)
            state = yield Read(_state(claimed))
            yield Work(2)
            yield Write(_state(claimed), state + 1)
            yield End()
            # Return: release the slot for the next holder.
            yield Begin(RETURN)
            yield Acquire(_LOCK)
            yield Write(_free(claimed), 1)
            count = yield Read(_RETURNS)
            yield Write(_RETURNS, count + 1)
            yield Release(_LOCK)
            yield End()

    return body


def build(
    scale: float = 1.0,
    *,
    workers: int = WORKERS,
    slots: int = SLOTS,
    seed: int = 0,
) -> Program:
    """The connection pool at ``scale`` (rounds grow linearly).

    ``seed`` is accepted for interface uniformity; slot choice is the
    deterministic first-free scan.
    """
    del seed
    rounds = max(2, int(round(BASE_ROUNDS * scale)))
    program = Program(
        name="conn_pool",
        atomic_methods={LEASE, USE, RETURN},
        non_atomic_methods=set(),
        initial_store={_free(slot): 1 for slot in range(slots)},
    )
    for worker in range(workers):
        program.threads.append(
            ThreadSpec(_worker(rounds, slots), f"worker{worker}")
        )
    return program


_POINTS = (
    ScalePoint("smoke", 1.0, 1_500),
    ScalePoint("small", 12.0, 18_000),
    ScalePoint("medium", 120.0, 185_000),
    ScalePoint("large", 1_200.0, 1_850_000),
)

CONN_POOL = register_family(ServerFamily(
    workload=Workload(
        name="conn_pool",
        build=build,
        description="connection pool, ownership-transfer unlocked use",
        compute_bound=False,
        table1=None,
        table2=None,
    ),
    kind="connection-pool",
    scale_points=_POINTS,
    truth=uniform_truth(_POINTS, serializable=True),
    fuzz_scale=0.25,
    knobs={
        "workers": f"worker threads (default {WORKERS})",
        "slots": f"connection slots (default {SLOTS}, < workers)",
        "seed": "accepted for uniformity; the scan is deterministic",
    },
))
