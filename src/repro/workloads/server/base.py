"""Shared scaffolding of the server-shaped workload family.

Every workload under :mod:`repro.workloads.server` is a *parameterized
generator* — thread count, event volume (linear in ``scale``, up to
millions), sharing ratio, and seed all tunable — paired with
**declared atomicity ground truth per scale point**: the verdict a
sound-and-complete checker must reach, and, where the workload is
violating, the transaction family (block labels) it must blame.

The experiment driver (:mod:`repro.experiments`) refuses to report a
single number for a matrix cell whose observed verdict or blame set
contradicts the declaration here; the parameterized oracle tests in
``tests/test_server_workloads.py`` pin the declarations themselves.

Families register twice: the plain :class:`~repro.workloads.base.
Workload` enters the global registry (with ``table1=None``/``table2=
None``, so :func:`~repro.workloads.base.paper_workloads` and the
table harnesses never pick a server workload up), and the
:class:`ServerFamily` wrapper enters :data:`SERVER_FAMILIES` with the
scale points and truth attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.workloads.base import Workload, register

#: Canonical scale-point names, smallest first.  Every family declares
#: these four; the lab's default matrix runs ``smoke`` and benches
#: sweep upward from there.
SMOKE = "smoke"
SMALL = "small"
MEDIUM = "medium"
LARGE = "large"

POINT_ORDER = (SMOKE, SMALL, MEDIUM, LARGE)


@dataclass(frozen=True)
class ScalePoint:
    """One named point on a family's scale knob.

    ``approx_events`` is the measured event count at the family's
    default parameters and recording seed 0 — documentation and
    sanity-check material, not an assertion (parameter overrides move
    it).
    """

    name: str
    scale: float
    approx_events: int


@dataclass(frozen=True)
class GroundTruth:
    """Declared verdict (and blame) of one workload at one scale point.

    ``serializable`` is what the sound-and-complete checkers must
    conclude; ``blamed`` the block labels they must warn about when the
    workload is violating (empty exactly when ``serializable``).
    """

    serializable: bool
    blamed: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.serializable and self.blamed:
            raise ValueError(
                f"serializable ground truth cannot blame {set(self.blamed)}"
            )
        if not self.serializable and not self.blamed:
            raise ValueError(
                "violating ground truth must name the blamed family"
            )

    @property
    def verdict(self) -> str:
        return "serializable" if self.serializable else "violating"


@dataclass(frozen=True)
class ServerFamily:
    """One server workload plus its scale points and declared truth."""

    workload: Workload
    kind: str
    scale_points: tuple[ScalePoint, ...]
    truth: Mapping[str, GroundTruth]
    #: Scale used when this family's traces enter the fuzz seed pool —
    #: small enough that a full ablation-grid sweep stays cheap.
    fuzz_scale: float = 0.1
    #: Free-form knob descriptions rendered by ``repro lab list``.
    knobs: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        declared = {point.name for point in self.scale_points}
        if declared != set(self.truth):
            raise ValueError(
                f"{self.name}: truth declared for {sorted(self.truth)} "
                f"but scale points are {sorted(declared)}"
            )

    @property
    def name(self) -> str:
        return self.workload.name

    def point(self, name: str) -> ScalePoint:
        for point in self.scale_points:
            if point.name == name:
                return point
        known = ", ".join(p.name for p in self.scale_points)
        raise KeyError(
            f"{self.name} has no scale point {name!r}; known: {known}"
        )

    def truth_at(self, point_name: str) -> GroundTruth:
        self.point(point_name)  # raises on unknown names
        return self.truth[point_name]

    @property
    def smallest(self) -> ScalePoint:
        return self.scale_points[0]


#: Every server family, in registration order (fixed by the module
#: import order of :mod:`repro.workloads.server`).
SERVER_FAMILIES: dict[str, ServerFamily] = {}


def register_family(family: ServerFamily) -> ServerFamily:
    """Register in both the family and the global workload registry."""
    if family.name in SERVER_FAMILIES:
        existing = SERVER_FAMILIES[family.name]
        if existing is not family:
            raise ValueError(
                f"duplicate server family {family.name!r}"
            )
        return family
    names = [point.name for point in family.scale_points]
    if names != [p for p in POINT_ORDER if p in names] or not names:
        raise ValueError(
            f"{family.name}: scale points {names} must follow "
            f"{POINT_ORDER} order"
        )
    register(family.workload)
    SERVER_FAMILIES[family.name] = family
    return family


def server_families() -> list[ServerFamily]:
    """Every server family, in registration order."""
    return list(SERVER_FAMILIES.values())


def get_family(name: str) -> ServerFamily:
    try:
        return SERVER_FAMILIES[name]
    except KeyError:
        known = ", ".join(SERVER_FAMILIES)
        raise KeyError(
            f"unknown server workload {name!r}; known: {known}"
        ) from None


def uniform_truth(
    points: tuple[ScalePoint, ...],
    serializable: bool,
    blamed: frozenset[str] = frozenset(),
) -> dict[str, GroundTruth]:
    """The common case: one declaration holding at every scale point."""
    truth = GroundTruth(serializable=serializable, blamed=blamed)
    return {point.name: truth for point in points}
