"""Defect injection study (paper Section 6, last paragraph).

The paper injects atomicity defects into elevator and colt by removing,
one at a time, each synchronized statement that induced contention, and
measures how often a single Velodrome run finds the inserted defect —
about 30% without scheduler adjustment and about 70% with the
Atomizer-guided adversarial scheduler.

Here the same protocol: an *injectable* program family consists of
``n_sites`` correctly-synchronized contended methods; variant ``k``
replaces method ``k``'s locking with an unsynchronized read-modify-write
(the removed synchronized statement).  The harness runs each variant
under a single seed and scores whether Velodrome blamed the corrupted
method.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.program import Program
from repro.workloads import synthetic as syn


@dataclass(frozen=True)
class InjectionFamily:
    """Parameters of one injectable program family.

    ``work_between`` spaces the method invocations out (narrowing the
    chance that two contenders' blocks overlap on their own), and
    ``stagger_step`` delays the second contender of site ``k`` by
    ``k * stagger_step`` compute units.  Sites staggered beyond the
    contenders' lifetimes can never be observed violated — not even
    with adversarial pausing — which is what keeps the adversarial
    detection rate below 100%, as in the paper.
    """

    name: str
    n_sites: int
    rounds: int
    work_between: int
    gap: int
    stagger_step: int = 0


#: Families mirroring the paper's two injection subjects.  The spacing
#: (``work_between``) keeps single-run detection well below certainty,
#: leaving headroom for the adversarial scheduler to help.
FAMILIES = {
    "elevator": InjectionFamily(
        "elevator", n_sites=8, rounds=4, work_between=60, gap=0,
    ),
    "colt": InjectionFamily(
        "colt", n_sites=10, rounds=4, work_between=55, gap=0,
    ),
}


def site_label(family: InjectionFamily, site: int) -> str:
    """The method label of injection site ``site``."""
    return f"{family.name}.site{site}"


def build_variant(family: InjectionFamily, defect_site: int | None) -> Program:
    """Build the family's program, corrupting ``defect_site`` (or none).

    Every site is a pair of contender threads running one method on a
    site-private variable.  Intact sites use a correctly-locked update;
    the defective site drops the lock, exposing an atomicity defect
    whose observation depends on scheduling.
    """
    if defect_site is not None and not 0 <= defect_site < family.n_sites:
        raise ValueError(
            f"defect site {defect_site} out of range for {family.name}"
        )
    program = Program(f"{family.name}-inject")
    for site in range(family.n_sites):
        label = site_label(family, site)
        var = f"{family.name}_site_v{site}"
        lock = f"{family.name}_site_l{site}"
        program.atomic_methods.add(label)
        if site == defect_site:
            program.non_atomic_methods.add(label)
            factory = syn.unsync_rmw(
                label, var, family.rounds, gap=family.gap,
                work_between=family.work_between,
            )
        else:
            factory = syn.locked_update(
                label, lock, var, family.rounds, work=family.work_between
            )
        program.spawn_thread(factory, f"{label}-a")
        program.spawn_thread(
            _delayed(site * family.stagger_step, factory), f"{label}-b"
        )
    return program


def _delayed(delay: int, factory):
    """Wrap a body factory with an initial stretch of compute."""
    if delay <= 0:
        return factory

    def body():
        yield syn.Work(delay)
        inner = factory()
        result = None
        while True:
            try:
                request = inner.send(result)
            except StopIteration:
                return
            result = yield request

    return body


def variants(family_name: str):
    """Yield ``(site, program)`` for every single-defect variant."""
    family = FAMILIES[family_name]
    for site in range(family.n_sites):
        yield site, build_variant(family, site)
