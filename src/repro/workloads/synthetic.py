"""Thread-body building blocks for the synthetic benchmarks.

Each function returns a body factory (or a reusable request fragment)
capturing one concurrency idiom from the paper's benchmark suite:

* properly-locked updates (clean for every tool),
* compound locked sections — the ``Set.add`` pattern of Section 1
  (genuinely non-atomic under contention; the Atomizer always flags
  the acquire-after-release),
* unsynchronized read-modify-write (genuinely non-atomic; racy),
* *rare* variants of the above whose violating interleavings are
  narrow — sources of the "Velodrome missed" column of Table 2,
* flag hand-offs and barriers (serializable, but LockSet-opaque:
  Atomizer false alarms),
* library synchronization via uninstrumented locks (mtrt-style false
  alarms),
* fork-join result collection (jbb/mtrt-style false alarms),
* non-transactional churn with a tunable sharing fraction, which
  controls how much the Figure 4 merge rule can avoid node allocation
  (the "Without/With Merge" columns of Table 1).
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.runtime.program import (
    Acquire,
    Await,
    Begin,
    BodyFactory,
    End,
    Join,
    Read,
    Release,
    Request,
    Spawn,
    Work,
    Write,
)


def locked_update(
    label: str,
    lock: str,
    var: str,
    rounds: int,
    work: int = 0,
) -> BodyFactory:
    """Atomic method with a correctly-locked read-modify-write.

    Serializable and reducible: no tool should warn.
    """

    def body():
        for _ in range(rounds):
            yield Begin(label)
            yield Acquire(lock)
            value = yield Read(var)
            yield Write(var, value + 1)
            yield Release(lock)
            yield End()
            if work:
                yield Work(work)

    return body


def compound_locked(
    label: str,
    lock: str,
    check_var: str,
    update_var: str,
    rounds: int,
    work: int = 0,
) -> BodyFactory:
    """The ``Set.add`` pattern: two locked regions inside one atomic block.

    Each region is race-free, but another thread can update between
    them, so the block is genuinely non-atomic under contention.  The
    Atomizer flags the second acquire (a right-mover after a
    left-mover) on every execution; Velodrome warns only when a
    conflicting interleaving is actually observed.
    """

    def body():
        for _ in range(rounds):
            yield Begin(label)
            yield Acquire(lock)
            present = yield Read(check_var)
            yield Release(lock)
            if work:
                yield Work(work)
            yield Acquire(lock)
            if not present:
                size = yield Read(update_var)
                yield Write(update_var, size + 1)
            else:
                yield Read(update_var)
            yield Release(lock)
            yield End()

    return body


def unsync_rmw(
    label: str,
    var: str,
    rounds: int,
    gap: int = 0,
    work_between: int = 0,
) -> BodyFactory:
    """Atomic block with an unsynchronized read-modify-write.

    Genuinely non-atomic (and racy).  ``gap`` inserts compute between
    the read and the write, widening the window in which a conflicting
    write can interleave; ``work_between`` spaces out iterations.
    """

    def body():
        for _ in range(rounds):
            yield Begin(label)
            value = yield Read(var)
            if gap:
                yield Work(gap)
            yield Write(var, value + 1)
            yield End()
            if work_between:
                yield Work(work_between)

    return body


def rare_rmw(
    label: str,
    var: str,
    rounds: int = 1,
    start_delay: int = 0,
) -> BodyFactory:
    """A non-atomic read-modify-write with a very narrow race window.

    The read and write are adjacent and executed only ``rounds`` times,
    after ``start_delay`` units of compute, so the violating
    interleaving is rarely observed: Velodrome usually reports nothing
    (a "missed" method in Table 2 terms), while the Atomizer still
    flags the racy accesses unconditionally.
    """

    def body():
        if start_delay:
            yield Work(start_delay)
        for _ in range(rounds):
            yield Begin(label)
            value = yield Read(var)
            yield Write(var, value + 1)
            yield End()

    return body


def flag_sender(
    label: str,
    var: str,
    flag: str,
    my_turn: int,
    their_turn: int,
    rounds: int,
) -> BodyFactory:
    """One side of the Section 2 volatile-flag hand-off.

    Waits for ``flag == my_turn``, performs an atomic unlocked
    read-modify-write of ``var``, then passes the flag.  The protocol
    serializes the blocks perfectly, but LockSet sees racy accesses:
    an Atomizer false alarm by construction.
    """

    def body():
        for _ in range(rounds):
            yield Await(flag, my_turn)
            yield Begin(label)
            value = yield Read(var)
            yield Write(var, value + 1)
            yield Write(flag, their_turn)
            yield End()

    return body


def hidden_lock_update(
    label: str,
    lock: str,
    var: str,
    rounds: int,
    extra_reads: int = 1,
    work: int = 0,
) -> BodyFactory:
    """Correctly-locked update whose lock is *uninstrumented*.

    Register ``lock`` in the program's ``uninstrumented_locks``: the
    interpreter still serializes the critical sections, but no analysis
    sees the acquire/release.  Velodrome observes a serializable trace
    (no warning); the Atomizer sees two or more racy accesses in one
    block and raises a false alarm — the mtrt/jbb library pattern.
    """

    def body():
        for _ in range(rounds):
            yield Begin(label)
            yield Acquire(lock)
            value = yield Read(var)
            for _ in range(extra_reads):
                yield Read(var)
            yield Write(var, value + 1)
            yield Release(lock)
            yield End()
            if work:
                yield Work(work)

    return body


def fork_join_master(
    label: str,
    worker_label: str,
    n_workers: int,
    input_var: str = "task",
    result_prefix: str = "result",
    worker_work: int = 10,
) -> BodyFactory:
    """A master that forks workers, joins them, and sums their results.

    The result collection happens inside an atomic block: the reads of
    the plain result variables are ordered by the join, so the block is
    serializable, but LockSet sees them as racy — another Atomizer
    false-alarm source (the paper attributes jbb/mtrt false alarms to
    fork-join synchronization).
    """

    def worker(index: int) -> BodyFactory:
        def body():
            task = yield Read(input_var)
            yield Work(worker_work)
            yield Begin(worker_label)
            yield Write(f"{result_prefix}_{index}", task + index)
            yield End()

        return body

    def body():
        yield Write(input_var, 7)
        children = []
        for index in range(n_workers):
            child = yield Spawn(worker(index), f"{label}-w{index}")
            children.append(child)
        for child in children:
            yield Join(child)
        yield Begin(label)
        total = 0
        for index in range(n_workers):
            value = yield Read(f"{result_prefix}_{index}")
            total += value
        yield Write(f"{result_prefix}_total", total)
        yield End()

    return body


def barrier_worker(
    label: Optional[str],
    barrier_lock: str,
    barrier_count: str,
    barrier_gen: str,
    n_threads: int,
    phases: int,
    phase_var_prefix: str,
    my_index: int,
    work: int = 3,
) -> BodyFactory:
    """A worker in a barrier-synchronized phased computation (sor-style).

    Each phase: do local work, write a per-thread cell, then pass a
    sense-reversing barrier built from a locked counter plus an
    ``Await`` on the generation flag.  Reads of neighbouring cells in
    the next phase are ordered by the barrier — serializable, but the
    cell accesses look racy to LockSet inside atomic blocks.  Pass
    ``label=None`` to run the phase body outside any atomic block
    (sor-style: no Atomizer warnings, because the Atomizer only judges
    atomic blocks).
    """

    def body():
        for phase in range(phases):
            if label is not None:
                yield Begin(label)
            if work:
                yield Work(work)
            yield Write(f"{phase_var_prefix}_{my_index}_{phase}", my_index)
            neighbour = (my_index + 1) % n_threads
            if phase > 0:
                yield Read(f"{phase_var_prefix}_{neighbour}_{phase - 1}")
            if label is not None:
                yield End()
            # Sense-reversing barrier.
            yield Acquire(barrier_lock)
            count = yield Read(barrier_count)
            count += 1
            if count == n_threads:
                yield Write(barrier_count, 0)
                generation = yield Read(barrier_gen)
                yield Write(barrier_gen, generation + 1)
                yield Release(barrier_lock)
            else:
                yield Write(barrier_count, count)
                generation = yield Read(barrier_gen)
                yield Release(barrier_lock)
                yield Await(barrier_gen, generation + 1)

    return body


def outside_churn(
    tid_tag: str,
    private_ops: int,
    shared_var: Optional[str] = None,
    share_every: int = 0,
    seed: int = 0,
    n_private_vars: int = 4,
) -> BodyFactory:
    """Non-transactional churn with a tunable sharing fraction.

    Emits ``private_ops`` reads/writes of per-thread variables outside
    any atomic block, touching ``shared_var`` every ``share_every``
    operations (0 = never).  Private chains merge into the thread's
    predecessor node under the Figure 4 rules (few allocations); shared
    touches force incomparable predecessors and hence fresh nodes —
    this knob reproduces each benchmark's Without/With-Merge ratio in
    Table 1.
    """

    def body():
        rng = random.Random(seed)
        for index in range(private_ops):
            var = f"local_{tid_tag}_{rng.randrange(n_private_vars)}"
            if rng.random() < 0.5:
                yield Read(var)
            else:
                yield Write(var, index)
            if share_every and shared_var and index % share_every == share_every - 1:
                if rng.random() < 0.5:
                    yield Read(shared_var)
                else:
                    yield Write(shared_var, index)

    return body


def transactional_churn(
    tag: str,
    label: str,
    blocks: int,
    ops_per_block: int = 2,
    n_private_vars: int = 3,
    seed: int = 0,
    work: int = 0,
) -> BodyFactory:
    """Many small atomic blocks over thread-private data.

    Each block is trivially atomic (single-thread data), but every
    invocation starts a real transaction and therefore allocates a
    happens-before graph node *regardless of merging* — the workload
    shape behind Table 1 rows like mtrt and elevator where the
    Without/With-Merge allocation counts are nearly equal.
    """

    def body():
        rng = random.Random(seed)
        for index in range(blocks):
            yield Begin(label)
            for _ in range(ops_per_block):
                var = f"txlocal_{tag}_{rng.randrange(n_private_vars)}"
                if rng.random() < 0.5:
                    yield Read(var)
                else:
                    yield Write(var, index)
            yield End()
            if work:
                yield Work(work)

    return body


def shared_pool_churn(
    ops: int,
    pool_prefix: str,
    pool_size: int,
    seed: int = 0,
    write_fraction: float = 0.5,
) -> BodyFactory:
    """Merge-hostile non-transactional churn (mtrt/webl shape).

    Every operation touches a variable drawn from a pool shared by all
    churn threads.  With several concurrent writers rotating over the
    pool, an operation's predecessors — the thread's own last node and
    the variable's last writer/readers — are usually incomparable in
    the happens-before graph, so the Figure 4 merge rule must allocate
    a fresh node for nearly every operation: merging barely reduces the
    Table 1 allocation count, as the paper observes for mtrt and webl.
    """

    def body():
        rng = random.Random(seed)
        for index in range(ops):
            var = f"{pool_prefix}_{rng.randrange(pool_size)}"
            if rng.random() < write_fraction:
                yield Write(var, index)
            else:
                yield Read(var)

    return body


def monitor_method(
    label: str,
    lock: str,
    variables: list[str],
    rounds: int,
    writes: int = 1,
    work: int = 0,
) -> BodyFactory:
    """A synchronized method touching several fields under one monitor.

    The whole block holds one lock: atomic, reducible, clean — the
    bread-and-butter transaction shape of the paper's benchmarks.
    """

    def body():
        for round_index in range(rounds):
            yield Begin(label)
            yield Acquire(lock)
            for var in variables:
                yield Read(var)
            for var in variables[: max(writes, 0)]:
                yield Write(var, round_index)
            yield Release(lock)
            yield End()
            if work:
                yield Work(work)

    return body


def producer(
    label: str,
    lock: str,
    queue_var: str,
    items: int,
    work: int = 2,
) -> BodyFactory:
    """Locked producer pushing items (hedc/webl-style task feeding)."""

    def body():
        for _ in range(items):
            if work:
                yield Work(work)
            yield Begin(label)
            yield Acquire(lock)
            depth = yield Read(queue_var)
            yield Write(queue_var, depth + 1)
            yield Release(lock)
            yield End()

    return body


def consumer(
    label: str,
    lock: str,
    queue_var: str,
    items: int,
    work: int = 2,
) -> BodyFactory:
    """Locked consumer popping items; waits for the queue to be non-empty."""

    def body():
        taken = 0
        while taken < items:
            yield Acquire(lock)
            depth = yield Read(queue_var)
            if depth > 0:
                yield Write(queue_var, depth - 1)
                taken += 1
                yield Release(lock)
                if work:
                    yield Work(work)
            else:
                yield Release(lock)
                yield Work(1)

    return body


def philosopher(
    label: str,
    left_fork: str,
    right_fork: str,
    meals: int,
    meal_var: str,
) -> BodyFactory:
    """A dining philosopher taking both forks in a fixed global order.

    Two nested acquires inside one atomic block are right-movers before
    any release: reducible and atomic.
    """

    def body():
        first, second = sorted([left_fork, right_fork])
        for _ in range(meals):
            yield Begin(label)
            yield Acquire(first)
            yield Acquire(second)
            eaten = yield Read(meal_var)
            yield Write(meal_var, eaten + 1)
            yield Release(second)
            yield Release(first)
            yield End()
            yield Work(2)

    return body


def sequence(*factories: BodyFactory) -> BodyFactory:
    """Run several bodies one after another in a single thread."""

    def body():
        for factory in factories:
            result = None
            generator = factory()
            while True:
                try:
                    request = generator.send(result)
                except StopIteration:
                    break
                result = yield request

    return body
