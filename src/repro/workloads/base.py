"""Workload specifications and registry.

Each paper benchmark (elevator, hedc, tsp, ... jigsaw) is reproduced as
a synthetic workload: a parameterized builder returning a
:class:`repro.runtime.program.Program` whose concurrency signature —
thread count, transaction volume, sharing pattern, locking discipline,
Atomizer-confusing idioms, and seeded non-atomic methods — mirrors the
original (see DESIGN.md for why this preserves the Table 1/2 shapes).

Workloads also carry the paper's published numbers so the harness can
print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime.program import Program

#: Builder signature: scale >= 0 multiplies the workload's event volume.
Builder = Callable[[float], Program]


@dataclass(frozen=True)
class PaperTable1Row:
    """The paper's Table 1 row for one benchmark."""

    size_lines: int
    base_time_sec: float
    slowdown_empty: float
    slowdown_eraser: float
    slowdown_atomizer: float
    slowdown_velodrome: float
    nodes_allocated_without_merge: int
    max_alive_without_merge: int
    nodes_allocated_with_merge: int
    max_alive_with_merge: int


@dataclass(frozen=True)
class PaperTable2Row:
    """The paper's Table 2 row for one benchmark."""

    atomizer_non_serial: int
    atomizer_false_alarms: int
    velodrome_non_serial: int
    velodrome_false_alarms: int
    velodrome_missed: int


@dataclass
class Workload:
    """One benchmark: builder plus paper reference numbers."""

    name: str
    build: Builder
    description: str
    compute_bound: bool
    table1: Optional[PaperTable1Row] = None
    table2: Optional[PaperTable2Row] = None

    def program(self, scale: float = 1.0) -> Program:
        """Build the program at the given scale."""
        return self.build(scale)


_REGISTRY: dict[str, Workload] = {}


def _definition(workload: Workload) -> str:
    """Where a workload came from, for duplicate-name diagnostics."""
    module = getattr(workload.build, "__module__", "<unknown module>")
    return f"{workload.name!r} ({workload.description}) from {module}"


def register(workload: Workload) -> Workload:
    """Add a workload to the global registry.

    Registration order is the registry's iteration order (module import
    order, which :mod:`repro.workloads` fixes explicitly), so
    :func:`all_workloads` / :func:`names` are deterministic across
    processes and Python versions.

    Re-registering the *same* object is a no-op (module reimport), but
    a different definition under an already-taken name raises
    ``ValueError`` naming both definitions — a silent last-wins would
    let one suite shadow another's ground truth.
    """
    existing = _REGISTRY.get(workload.name)
    if existing is not None and existing is not workload:
        raise ValueError(
            f"duplicate workload name {workload.name!r}: "
            f"already registered as {_definition(existing)}; "
            f"refusing to overwrite with {_definition(workload)}"
        )
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    """Look up a workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def all_workloads() -> list[Workload]:
    """Every registered workload, in registration order."""
    return list(_REGISTRY.values())


def paper_workloads() -> list[Workload]:
    """The paper-suite workloads (those carrying Table 1/2 rows).

    Purely synthetic workloads — ``request_loop``, registered for the
    memoization benchmark — have no paper rows and are excluded; the
    table harnesses and paper-comparison reports iterate this list.
    """
    return [w for w in _REGISTRY.values() if w.table1 is not None]


def names() -> list[str]:
    """Registered workload names, in registration order."""
    return list(_REGISTRY)
