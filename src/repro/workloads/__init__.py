"""Synthetic workload models of the paper's fifteen benchmarks."""

from repro.workloads import (
    injection,
    randomgen,
    request_loop,
    suite,
    synthetic,
)
from repro.workloads.base import (
    PaperTable1Row,
    PaperTable2Row,
    Workload,
    all_workloads,
    get,
    names,
    paper_workloads,
    register,
)
from repro.workloads.suite import SUITE

__all__ = [
    "PaperTable1Row",
    "PaperTable2Row",
    "SUITE",
    "Workload",
    "all_workloads",
    "get",
    "injection",
    "randomgen",
    "names",
    "paper_workloads",
    "register",
    "request_loop",
    "suite",
    "synthetic",
]
