"""Synthetic workload models of the paper's fifteen benchmarks."""

from repro.workloads import injection, randomgen, suite, synthetic
from repro.workloads.base import (
    PaperTable1Row,
    PaperTable2Row,
    Workload,
    all_workloads,
    get,
    names,
    register,
)
from repro.workloads.suite import SUITE

__all__ = [
    "PaperTable1Row",
    "PaperTable2Row",
    "SUITE",
    "Workload",
    "all_workloads",
    "get",
    "injection",
    "randomgen",
    "names",
    "register",
    "suite",
    "synthetic",
]
