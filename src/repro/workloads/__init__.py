"""Synthetic workload models of the paper's fifteen benchmarks.

Registration order is fixed here, explicitly: the paper suite first,
then the synthetic server-shaped workloads (``request_loop`` and the
:mod:`repro.workloads.server` family).  ``names()`` /
``all_workloads()`` therefore list workloads in the same order in
every process — and :func:`repro.workloads.base.register` rejects
duplicate names outright, so no import order can silently shadow a
definition.
"""

# Imported for their registration side effects, in canonical order:
# the 15 paper benchmarks come first, synthetic server workloads after.
from repro.workloads import suite            # noqa: F401  (paper 15)
from repro.workloads import request_loop     # noqa: F401  (memo bench)
from repro.workloads import server           # noqa: F401  (server family)
from repro.workloads import (                # noqa: F401  (no registration)
    injection,
    randomgen,
    synthetic,
)
from repro.workloads.base import (
    PaperTable1Row,
    PaperTable2Row,
    Workload,
    all_workloads,
    get,
    names,
    paper_workloads,
    register,
)
from repro.workloads.suite import SUITE

__all__ = [
    "PaperTable1Row",
    "PaperTable2Row",
    "SUITE",
    "Workload",
    "all_workloads",
    "get",
    "injection",
    "randomgen",
    "names",
    "paper_workloads",
    "register",
    "request_loop",
    "server",
    "suite",
    "synthetic",
]
