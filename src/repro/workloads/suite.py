"""The fifteen paper benchmarks as synthetic workload models.

Each builder assembles a :class:`Program` from the idioms in
:mod:`repro.workloads.synthetic` so that its concurrency signature
mirrors the original benchmark's (see DESIGN.md):

* the number of genuinely non-atomic methods (and how contended each
  is) reproduces the Table 2 row — heavily contended defects are caught
  by Velodrome on most seeds, *rare* defects mostly show up only in the
  Atomizer (Velodrome's "missed" column);
* the Atomizer-false-alarm sources (flag hand-offs, barriers,
  fork-join, uninstrumented library locks) reproduce the false-alarm
  column;
* the volume and sharing pattern of non-transactional operations
  reproduces the Table 1 Without/With-Merge node-count shape;
* the ratio of compute (``Work``) to events reproduces which
  benchmarks are compute-bound.

Every builder takes a ``scale`` factor multiplying event volume;
``scale=1.0`` targets quick runs (used by tests), the Table 1 harness
uses larger scales.
"""

from __future__ import annotations

from repro.runtime.program import Program, ThreadSpec
from repro.workloads import synthetic as syn
from repro.workloads.base import (
    PaperTable1Row,
    PaperTable2Row,
    Workload,
    register,
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _defect_threads(
    program: Program,
    prefix: str,
    caught: int,
    rare: int,
    scale: float,
    rounds: int = 4,
    gap: int = 3,
    compound: bool = False,
    lock: str = "defect_lock",
    work_between: int = 0,
) -> None:
    """Plant ``caught`` contended and ``rare`` narrow-window defects.

    Each defect is one distinct non-atomic method executed by a pair of
    contender threads on its own shared variable.  Contended defects
    use wide race windows (usually observed violated); rare defects use
    single adjacent read-modify-writes at staggered start times (usually
    observed serializable — Table 2 "missed").
    """
    rounds = _scaled(rounds, scale)
    for index in range(caught):
        label = f"{prefix}.m{index}"
        var = f"{prefix}_v{index}"
        program.atomic_methods.add(label)
        program.non_atomic_methods.add(label)
        if compound:
            factory = lambda lab=label, v=var: syn.compound_locked(
                lab, lock, v, v, rounds, work=gap
            )()
        else:
            factory = lambda lab=label, v=var: syn.unsync_rmw(
                lab, v, rounds, gap=gap, work_between=work_between
            )()
        program.spawn_thread(factory, f"{label}-a")
        program.spawn_thread(factory, f"{label}-b")
    for index in range(rare):
        label = f"{prefix}.rare{index}"
        var = f"{prefix}_r{index}"
        program.atomic_methods.add(label)
        program.non_atomic_methods.add(label)
        first = syn.rare_rmw(label, var, rounds=1, start_delay=0)
        second = syn.rare_rmw(label, var, rounds=1, start_delay=400 + 97 * index)
        program.spawn_thread(first, f"{label}-a")
        program.spawn_thread(second, f"{label}-b")


def _clean_monitor_threads(
    program: Program,
    prefix: str,
    methods: int,
    threads_per_method: int,
    rounds: int,
    scale: float,
    work: int = 0,
    fields: int = 2,
) -> None:
    """Add well-synchronized monitor methods (no tool should warn)."""
    rounds = _scaled(rounds, scale)
    for index in range(methods):
        label = f"{prefix}.sync{index}"
        program.atomic_methods.add(label)
        lock = f"{prefix}_mon{index}"
        variables = [f"{prefix}_f{index}_{k}" for k in range(fields)]
        for replica in range(threads_per_method):
            program.spawn_thread(
                syn.monitor_method(label, lock, variables, rounds, work=work),
                f"{label}-{replica}",
            )


def _library_fa_threads(
    program: Program,
    prefix: str,
    methods: int,
    rounds: int,
    scale: float,
    work: int = 0,
) -> None:
    """Add atomic methods protected by uninstrumented library locks.

    Genuinely atomic (Velodrome silent); Atomizer false alarm each.
    """
    rounds = _scaled(rounds, scale)
    for index in range(methods):
        label = f"{prefix}.lib{index}"
        lock = f"__lib_{prefix}_{index}"
        var = f"{prefix}_lib_v{index}"
        program.atomic_methods.add(label)
        program.uninstrumented_locks.add(lock)
        for replica in range(2):
            program.spawn_thread(
                syn.hidden_lock_update(label, lock, var, rounds, work=work),
                f"{label}-{replica}",
            )


def _flag_fa_pair(
    program: Program, prefix: str, index: int, rounds: int, scale: float
) -> None:
    """Add one Section 2 flag hand-off pair (one Atomizer FA label)."""
    label = f"{prefix}.flagged{index}"
    var = f"{prefix}_flag_v{index}"
    flag = f"{prefix}_flag{index}"
    rounds = _scaled(rounds, scale)
    program.atomic_methods.add(label)
    program.initial_store[flag] = 1
    program.spawn_thread(
        syn.flag_sender(label, var, flag, my_turn=1, their_turn=2, rounds=rounds),
        f"{label}-a",
    )
    program.spawn_thread(
        syn.flag_sender(label, var, flag, my_turn=2, their_turn=1, rounds=rounds),
        f"{label}-b",
    )


def _tx_churn_threads(
    program: Program,
    prefix: str,
    threads: int,
    blocks: int,
    scale: float,
    ops_per_block: int = 2,
    work: int = 0,
) -> None:
    """Add transactional churn: real node allocation regardless of merge."""
    label = f"{prefix}.step"
    program.atomic_methods.add(label)
    count = _scaled(blocks, scale)
    for index in range(threads):
        program.spawn_thread(
            syn.transactional_churn(f"{prefix}{index}", label, count,
                                    ops_per_block=ops_per_block,
                                    seed=index, work=work),
            f"{prefix}-txchurn{index}",
        )


def _churn_threads(
    program: Program,
    prefix: str,
    threads: int,
    ops_per_thread: int,
    scale: float,
    share_every: int = 0,
    shared_var: str | None = None,
) -> None:
    """Add non-transactional churn (Table 1 node-count shaping)."""
    ops = _scaled(ops_per_thread, scale)
    for index in range(threads):
        program.spawn_thread(
            syn.outside_churn(
                f"{prefix}{index}",
                ops,
                shared_var=shared_var,
                share_every=share_every,
                seed=index,
            ),
            f"{prefix}-churn{index}",
        )


# --------------------------------------------------------------------------
# The fifteen benchmarks.
# --------------------------------------------------------------------------


def build_elevator(scale: float = 1.0) -> Program:
    """Discrete event elevator simulator: event-driven, not compute-bound.

    Five non-atomic controller methods; one flag hand-off false alarm.
    """
    program = Program("elevator")
    _defect_threads(program, "elevator", caught=5, rare=0, scale=scale,
                    rounds=5, gap=4, work_between=12)
    _flag_fa_pair(program, "elevator", 0, rounds=4, scale=scale)
    _clean_monitor_threads(program, "elevator", methods=3,
                           threads_per_method=2, rounds=6, scale=scale, work=8)
    _tx_churn_threads(program, "elevator", threads=3, blocks=300,
                      scale=scale)
    _churn_threads(program, "elevator", threads=2, ops_per_thread=30,
                   scale=scale)
    return program


def build_hedc(scale: float = 1.0) -> Program:
    """Web-source metadata crawler: producer/consumer task pool.

    Six non-atomic methods; two false alarms (flag + fork-join).
    """
    program = Program("hedc")
    _defect_threads(program, "hedc", caught=6, rare=0, scale=scale,
                    rounds=4, gap=4, compound=True, lock="hedc_pool")
    _flag_fa_pair(program, "hedc", 0, rounds=3, scale=scale)
    program.atomic_methods.add("hedc.collect")
    program.spawn_thread(
        syn.fork_join_master("hedc.collect", "hedc.task", n_workers=3),
        "hedc-master",
    )
    program.spawn_thread(
        syn.producer("hedc.submit", "hedc_q", "hedc_queue",
                     items=_scaled(6, scale)),
        "hedc-producer",
    )
    program.atomic_methods.add("hedc.submit")
    program.spawn_thread(
        syn.consumer("hedc.take", "hedc_q", "hedc_queue",
                     items=_scaled(6, scale)),
        "hedc-consumer",
    )
    return program


def build_tsp(scale: float = 1.0) -> Program:
    """Traveling-salesman solver: huge non-transactional churn.

    Private per-thread tour construction (merge collapses nearly all
    unary transactions) with an occasional shared best-tour update;
    eight non-atomic bound-update methods.
    """
    program = Program("tsp")
    _defect_threads(program, "tsp", caught=8, rare=0, scale=scale,
                    rounds=4, gap=3)
    _churn_threads(program, "tsp", threads=4, ops_per_thread=2500,
                   scale=scale, share_every=500, shared_var="tsp_best")
    _clean_monitor_threads(program, "tsp", methods=1, threads_per_method=4,
                           rounds=4, scale=scale)
    return program


def build_sor(scale: float = 1.0) -> Program:
    """Successive over-relaxation: barrier-phased grid updates.

    Barrier accesses happen outside atomic blocks (no Atomizer false
    alarms); three non-atomic reduction methods.
    """
    program = Program("sor", initial_store={"sor_count": 0, "sor_gen": 0})
    n_threads = 3
    phases = _scaled(4, scale)
    for index in range(n_threads):
        program.spawn_thread(
            syn.barrier_worker(
                None, "sor_bar", "sor_count", "sor_gen",
                n_threads, phases, "sor_cell", index, work=6,
            ),
            f"sor-worker{index}",
        )
    _defect_threads(program, "sor", caught=3, rare=0, scale=scale,
                    rounds=4, gap=3)
    return program


def build_jbb(scale: float = 1.0) -> Program:
    """SPEC JBB-style business-object warehouses.

    Five non-atomic methods and a large population of library-locked
    and fork-join methods whose accesses LockSet cannot vindicate: the
    42-false-alarm row of Table 2.
    """
    program = Program("jbb")
    _defect_threads(program, "jbb", caught=5, rare=0, scale=scale,
                    rounds=4, gap=4, compound=True, lock="jbb_wh")
    _library_fa_threads(program, "jbb", methods=38, rounds=2, scale=scale)
    for index in range(4):
        label = f"jbb.forkjoin{index}"
        program.atomic_methods.add(label)
        program.spawn_thread(
            syn.fork_join_master(label, f"jbb.task{index}", n_workers=2,
                                 input_var=f"jbb_in{index}",
                                 result_prefix=f"jbb_res{index}"),
            f"{label}-master",
        )
    _clean_monitor_threads(program, "jbb", methods=4, threads_per_method=2,
                           rounds=8, scale=scale)
    _tx_churn_threads(program, "jbb", threads=4, blocks=260, scale=scale)
    _churn_threads(program, "jbb", threads=4, ops_per_thread=140,
                   scale=scale)
    return program


def build_mtrt(scale: float = 1.0) -> Program:
    """SPEC mtrt-style multithreaded ray tracer.

    Two non-atomic scene-cache methods; 27 false alarms from standard-
    library synchronization the instrumentation cannot see.  The shared
    scene description is read through library locks outside atomic
    blocks too, so merging barely reduces node allocation (Table 1).
    """
    program = Program("mtrt")
    _defect_threads(program, "mtrt", caught=2, rare=0, scale=scale,
                    rounds=5, gap=4)
    _library_fa_threads(program, "mtrt", methods=25, rounds=2, scale=scale)
    for index in range(2):
        label = f"mtrt.render{index}"
        program.atomic_methods.add(label)
        program.spawn_thread(
            syn.fork_join_master(label, f"mtrt.trace{index}", n_workers=3,
                                 input_var=f"mtrt_scene{index}",
                                 result_prefix=f"mtrt_px{index}"),
            f"{label}-master",
        )
    _tx_churn_threads(program, "mtrt", threads=4, blocks=1200, scale=scale,
                      ops_per_block=1)
    return program


def build_moldyn(scale: float = 1.0) -> Program:
    """Java Grande molecular dynamics: compute plus force reductions.

    Four non-atomic force-accumulation methods; tiny transaction count
    (the Table 1 row allocates only a handful of nodes).
    """
    program = Program("moldyn")
    _defect_threads(program, "moldyn", caught=4, rare=0, scale=scale,
                    rounds=4, gap=3, work_between=4)
    _clean_monitor_threads(program, "moldyn", methods=2,
                           threads_per_method=2, rounds=5, scale=scale,
                           work=10)
    return program


def build_montecarlo(scale: float = 1.0) -> Program:
    """Java Grande Monte Carlo: per-task sampling, global accumulators."""
    program = Program("montecarlo")
    _defect_threads(program, "montecarlo", caught=6, rare=0, scale=scale,
                    rounds=4, gap=3)
    _tx_churn_threads(program, "montecarlo", threads=3, blocks=1000,
                      scale=scale, ops_per_block=1)
    _churn_threads(program, "montecarlo", threads=3, ops_per_thread=400,
                   scale=scale)
    return program


def build_raytracer(scale: float = 1.0) -> Program:
    """Java Grande ray tracer: one contended defect, one rare defect.

    The rare checksum defect is the method the paper's Velodrome missed
    without adversarial scheduling; three barrier/flag false alarms.
    """
    program = Program("raytracer")
    _defect_threads(program, "raytracer", caught=1, rare=1, scale=scale,
                    rounds=5, gap=4)
    for index in range(3):
        _flag_fa_pair(program, "raytracer", index, rounds=3, scale=scale)
    _clean_monitor_threads(program, "raytracer", methods=2,
                           threads_per_method=2, rounds=5, scale=scale,
                           work=6)
    return program


def build_colt(scale: float = 1.0) -> Program:
    """Colt scientific library: many small utility methods.

    27 genuinely non-atomic methods of which 7 have very narrow race
    windows (usually missed by observation-bound Velodrome); two
    false alarms.  Not compute-bound.
    """
    program = Program("colt")
    _defect_threads(program, "colt", caught=20, rare=7, scale=scale,
                    rounds=3, gap=3, work_between=10)
    _flag_fa_pair(program, "colt", 0, rounds=3, scale=scale)
    _library_fa_threads(program, "colt", methods=1, rounds=2, scale=scale,
                        work=6)
    _clean_monitor_threads(program, "colt", methods=4, threads_per_method=2,
                           rounds=4, scale=scale, work=8)
    return program


def build_philo(scale: float = 1.0) -> Program:
    """Dining philosophers: ordered fork acquisition plus two defects."""
    program = Program("philo")
    n_philosophers = 4
    program.atomic_methods.add("philo.eat")
    for index in range(n_philosophers):
        left = f"fork{index}"
        right = f"fork{(index + 1) % n_philosophers}"
        # Each philosopher counts its own meals: opposite philosophers
        # hold disjoint fork pairs, so one shared counter would itself
        # be a genuine atomicity defect.
        program.spawn_thread(
            syn.philosopher("philo.eat", left, right,
                            meals=_scaled(4, scale),
                            meal_var=f"philo_meals{index}"),
            f"philo{index}",
        )
    _defect_threads(program, "philo", caught=2, rare=0, scale=scale,
                    rounds=4, gap=4, work_between=6)
    return program


def build_raja(scale: float = 1.0) -> Program:
    """Raja ray tracer: fully clean (the all-zero Table 2 row)."""
    program = Program("raja")
    _clean_monitor_threads(program, "raja", methods=4, threads_per_method=2,
                           rounds=6, scale=scale, work=4)
    _tx_churn_threads(program, "raja", threads=2, blocks=120, scale=scale)
    return program


def build_multiset(scale: float = 1.0) -> Program:
    """Basic multiset: the extreme merge-win row of Table 1.

    Nearly all operations are thread-private and non-transactional
    (merge collapses hundreds of thousands of unary transactions to a
    handful); five non-atomic size/contains methods.
    """
    program = Program("multiset")
    _defect_threads(program, "multiset", caught=5, rare=0, scale=scale,
                    rounds=4, gap=3, compound=True, lock="multiset_rep")
    _churn_threads(program, "multiset", threads=3, ops_per_thread=2200,
                   scale=scale)
    return program


def build_webl(scale: float = 1.0) -> Program:
    """WebL interpreter running a crawler: merge-hostile churn.

    Interpreter scratch state is shared between the crawler threads
    outside atomic blocks, so most unary transactions keep multiple
    incomparable predecessors and merging barely helps (Table 1:
    470k -> 395k).  24 non-atomic methods, 2 of them rare.
    """
    program = Program("webl")
    _defect_threads(program, "webl", caught=22, rare=2, scale=scale,
                    rounds=3, gap=3)
    _flag_fa_pair(program, "webl", 0, rounds=3, scale=scale)
    _library_fa_threads(program, "webl", methods=1, rounds=2, scale=scale)
    _tx_churn_threads(program, "webl", threads=4, blocks=700, scale=scale,
                      ops_per_block=1)
    _churn_threads(program, "webl", threads=4, ops_per_thread=140,
                   scale=scale)
    return program


def build_jigsaw(scale: float = 1.0) -> Program:
    """Jigsaw web server serving a fixed page set: the largest row.

    55 genuinely non-atomic request-handling methods, 11 of them with
    narrow windows; five false alarms; request-dispatch churn.
    """
    program = Program("jigsaw")
    _defect_threads(program, "jigsaw", caught=44, rare=11, scale=scale,
                    rounds=3, gap=3, work_between=8)
    for index in range(3):
        _flag_fa_pair(program, "jigsaw", index, rounds=2, scale=scale)
    _library_fa_threads(program, "jigsaw", methods=2, rounds=2, scale=scale,
                        work=4)
    _clean_monitor_threads(program, "jigsaw", methods=6,
                           threads_per_method=2, rounds=4, scale=scale,
                           work=6)
    _churn_threads(program, "jigsaw", threads=4, ops_per_thread=450,
                   scale=scale, share_every=90, shared_var="jigsaw_log")
    _tx_churn_threads(program, "jigsaw", threads=4, blocks=200, scale=scale,
                      ops_per_block=1)
    return program


# --------------------------------------------------------------------------
# Registration with the paper's published numbers.
# --------------------------------------------------------------------------

_T1 = PaperTable1Row
_T2 = PaperTable2Row

SUITE = [
    Workload("elevator", build_elevator,
             "discrete event elevator simulator", compute_bound=False,
             table1=_T1(520, 5.64, 1.1, 1.1, 1.1, 1.1, 174_000, 20, 170_000, 13),
             table2=_T2(5, 1, 5, 0, 0)),
    Workload("hedc", build_hedc,
             "astrophysics web-data crawler", compute_bound=False,
             table1=_T1(6_400, 0.21, 6.2, 6.0, 5.9, 6.3, 79, 37, 58, 4),
             table2=_T2(6, 2, 6, 0, 0)),
    Workload("tsp", build_tsp,
             "traveling salesman solver", compute_bound=True,
             table1=_T1(700, 0.46, 30.9, 50.9, 60.2, 71.7, 1_000_000, 8, 12_000, 1),
             table2=_T2(8, 0, 8, 0, 0)),
    Workload("sor", build_sor,
             "successive over-relaxation", compute_bound=True,
             table1=_T1(690, 0.34, 2.3, 2.3, 2.4, 2.9, 2_000, 2, 2, 2),
             table2=_T2(3, 0, 3, 0, 0)),
    Workload("jbb", build_jbb,
             "SPEC JBB business objects", compute_bound=True,
             table1=_T1(36_000, 9.84, 2.9, 3.2, 3.4, 3.1, 21_000, 9, 14_000, 13),
             table2=_T2(5, 42, 5, 0, 0)),
    Workload("mtrt", build_mtrt,
             "SPEC JVM98 ray tracer", compute_bound=True,
             table1=_T1(11_000, 0.85, 9.3, 14.3, 22.4, 18.3, 645_000, 5, 645_000, 5),
             table2=_T2(2, 27, 2, 0, 0)),
    Workload("moldyn", build_moldyn,
             "Java Grande molecular dynamics", compute_bound=True,
             table1=_T1(1_400, 0.77, 3.8, 4.0, 4.1, 4.5, 5, 4, 5, 4),
             table2=_T2(4, 0, 4, 0, 0)),
    Workload("montecarlo", build_montecarlo,
             "Java Grande Monte Carlo", compute_bound=True,
             table1=_T1(3_600, 1.70, 1.6, 1.7, 1.7, 1.7, 410_000, 4, 300_000, 4),
             table2=_T2(6, 0, 6, 0, 0)),
    Workload("raytracer", build_raytracer,
             "Java Grande ray tracer", compute_bound=True,
             table1=_T1(18_000, 2.00, 4.5, 6.7, 9.4, 9.2, 128, 8, 23, 8),
             table2=_T2(2, 3, 1, 0, 1)),
    Workload("colt", build_colt,
             "Colt scientific library", compute_bound=False,
             table1=_T1(29_000, 16.40, 1.2, 1.2, 1.2, 1.2, 113, 11, 58, 19),
             table2=_T2(27, 2, 20, 0, 7)),
    Workload("philo", build_philo,
             "dining philosophers", compute_bound=False,
             table1=_T1(84, 2.71, 1.0, 1.0, 1.2, 1.2, 34, 5, 34, 5),
             table2=_T2(2, 0, 2, 0, 0)),
    Workload("raja", build_raja,
             "Raja ray tracer", compute_bound=True,
             table1=_T1(10_000, 0.55, 4.3, 4.4, 4.5, 4.5, 60, 1, 60, 1),
             table2=_T2(0, 0, 0, 0, 0)),
    Workload("multiset", build_multiset,
             "basic multiset", compute_bound=True,
             table1=_T1(300, 0.10, 4.0, 4.4, 4.7, 10.0, 218_000, 8, 8, 8),
             table2=_T2(5, 0, 5, 0, 0)),
    Workload("webl", build_webl,
             "WebL interpreter (crawler)", compute_bound=True,
             table1=_T1(22_300, 0.52, 8.6, 8.9, 9.3, 21.0, 470_000, 4, 395_000, 4),
             table2=_T2(24, 2, 22, 0, 2)),
    Workload("jigsaw", build_jigsaw,
             "Jigsaw web server", compute_bound=False,
             table1=_T1(91_100, 8.2, 1.1, 1.1, 1.1, 1.1, 123_000, 99, 36_600, 17),
             table2=_T2(55, 5, 44, 0, 11)),
]

for workload in SUITE:
    register(workload)
