"""Seeded random concurrent-program generation.

Generates arbitrary — but always well-formed — :class:`Program` values:
threads executing random mixes of atomic blocks, lock-protected and
unprotected accesses, compute, and spin-free flag waits.  Two uses:

* end-to-end fuzzing: run a random program, record the trace, and check
  that Velodrome's online verdict matches the offline reference on the
  recorded trace (``tests/test_randomgen.py``);
* synthetic load for ablation benchmarks beyond the fifteen curated
  workload models.

Lock discipline is guaranteed by construction: each thread acquires a
set of locks in a fixed global order and releases in reverse, so
generated programs never deadlock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.runtime.program import (
    Acquire,
    Begin,
    End,
    Program,
    Read,
    Release,
    ThreadSpec,
    Work,
    Write,
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape of generated programs."""

    n_threads: int = 3
    n_vars: int = 4
    n_locks: int = 2
    ops_per_thread: int = 30
    max_block_ops: int = 5
    max_nesting: int = 2
    p_block: float = 0.5  # chance an action group is an atomic block
    p_locked: float = 0.5  # chance a group takes a lock
    p_write: float = 0.45
    max_work: int = 3


def _var(rng: random.Random, config: GeneratorConfig) -> str:
    return f"v{rng.randrange(config.n_vars)}"


def _locks(
    rng: random.Random, config: GeneratorConfig, lowest: int = 0
) -> list[int]:
    """A sorted subset of lock indices, all at least ``lowest``.

    Deadlock freedom relies on every thread acquiring locks in one
    global order; ``lowest`` lets nested groups keep that invariant by
    only taking locks above everything their enclosing groups hold.
    """
    population = range(lowest, config.n_locks)
    if not population:
        return []
    count = rng.randint(1, len(population))
    return sorted(rng.sample(population, count))


def _accesses(rng: random.Random, config: GeneratorConfig, count: int):
    for _ in range(count):
        var = _var(rng, config)
        if rng.random() < config.p_write:
            yield Write(var, rng.randrange(100))
        else:
            yield Read(var)


def _group(
    rng: random.Random, config: GeneratorConfig, depth: int, min_lock: int = 0
):
    """One action group: an optionally locked, optionally atomic run
    of accesses, possibly with a nested inner block.

    ``min_lock`` is the smallest lock index this group may acquire.
    Nested groups run while their ancestors hold locks, so they must
    stay above the held range or the global acquisition order (and
    with it deadlock freedom) breaks — found by the differential
    fuzzer as an interpreter deadlock between two threads at
    different nesting depths.
    """
    ops = rng.randint(1, config.max_block_ops)
    in_block = rng.random() < config.p_block
    locked = rng.random() < config.p_locked
    if in_block:
        yield Begin(f"m{rng.randrange(6)}")
    lock_indices = _locks(rng, config, min_lock) if locked else []
    for index in lock_indices:
        yield Acquire(f"l{index}")
    yield from _accesses(rng, config, ops)
    if in_block and depth < config.max_nesting and rng.random() < 0.3:
        inner_min = lock_indices[-1] + 1 if lock_indices else min_lock
        yield from _group(rng, config, depth + 1, inner_min)
    for index in reversed(lock_indices):
        yield Release(f"l{index}")
    if in_block:
        yield End()
    if config.max_work and rng.random() < 0.3:
        yield Work(rng.randint(1, config.max_work))


def random_body(seed: int, config: GeneratorConfig):
    """A thread-body factory emitting roughly ``ops_per_thread`` ops."""

    def body():
        rng = random.Random(seed)
        emitted = 0
        while emitted < config.ops_per_thread:
            for request in _group(rng, config, depth=0):
                yield request
                emitted += 1

    return body


def random_program(
    seed: int, config: GeneratorConfig | None = None
) -> Program:
    """A fresh random program; same seed, same program."""
    config = config if config is not None else GeneratorConfig()
    rng = random.Random(seed)
    program = Program(f"random-{seed}")
    for index in range(config.n_threads):
        program.spawn_thread(
            random_body(rng.randrange(1 << 30), config),
            f"rand{index}",
        )
    return program
