"""The shard executor: fan tasks out, merge results in submission order.

:func:`run_shards` is the one parallel primitive every ``--jobs N``
entry point uses.  It guarantees:

* **Determinism** — results come back as a list indexed exactly like
  the submitted task list, whatever order the workers finished in.
  Callers merge by walking that list, so merged output is
  byte-identical to a serial run.
* **Containment** — a task that raises fails its own shard (the
  exception text is captured in the :class:`ShardResult`); a worker
  process that *dies* (segfault, ``os._exit``, OOM kill) or exceeds
  the per-shard timeout breaks only the shards it was holding: the
  pool is rebuilt and the remaining tasks resubmitted.
* **Serial fallback** — ``jobs <= 1`` (or a single task) runs
  everything in-process through the same task/worker functions, so the
  serial and parallel paths cannot drift apart.

The worker callable and every task must be picklable (module-level
function plus dataclass tasks; see :mod:`repro.parallel.tasks`).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence


@dataclass
class ShardResult:
    """Outcome of one shard (one task).

    Attributes:
        index: position of the task in the submitted sequence.
        ok: True when the task returned a value.
        value: the worker's return value (``None`` on failure).
        error: failure description — the worker's traceback for an
            in-task exception, or what killed the shard (broken pool,
            timeout) when the worker process itself died.
        elapsed: wall-clock seconds the task ran inside its worker
            (0.0 when the worker died before reporting).
    """

    index: int
    ok: bool
    value: Any = None
    error: str = ""
    elapsed: float = 0.0


class ShardError(RuntimeError):
    """Raised by callers that need every shard to succeed."""

    def __init__(self, failures: Sequence[ShardResult]):
        self.failures = list(failures)
        lines = [f"{len(self.failures)} shard(s) failed:"]
        for shard in self.failures:
            first = shard.error.strip().splitlines()
            lines.append(f"  shard {shard.index}: "
                         f"{first[-1] if first else 'unknown failure'}")
        super().__init__("\n".join(lines))


def _run_task(worker: Callable[[Any], Any], task: Any) -> tuple[Any, float]:
    """Executed inside the worker process: time one task."""
    started = time.perf_counter()
    value = worker(task)
    return value, time.perf_counter() - started


def _run_serial(
    worker: Callable[[Any], Any], tasks: Sequence[Any]
) -> list[ShardResult]:
    results = []
    for index, task in enumerate(tasks):
        try:
            value, elapsed = _run_task(worker, task)
        except Exception:  # noqa: BLE001 - containment is the contract
            results.append(
                ShardResult(index, False, error=traceback.format_exc())
            )
        else:
            results.append(ShardResult(index, True, value, elapsed=elapsed))
    return results


def _terminate(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers."""
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def run_shards(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> list[ShardResult]:
    """Run ``worker(task)`` for every task; results in task order.

    Args:
        worker: picklable callable applied to each task in its own
            worker process.
        tasks: picklable task objects.
        jobs: worker process count; ``<= 1`` runs serially in-process.
        timeout: per-shard wall-clock limit in seconds (parallel mode
            only); an overrunning shard is failed and its worker pool
            recycled.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return _run_serial(worker, tasks)

    results: list[Optional[ShardResult]] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    while pending:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        futures = {
            index: pool.submit(_run_task, worker, tasks[index])
            for index in pending
        }
        rebuild = False
        # Collect in submission order: the merge order never depends on
        # which worker finished first.
        for index in list(pending):
            try:
                value, elapsed = futures[index].result(timeout=timeout)
            except BrokenProcessPool:
                # The pool is dead; the oldest uncollected shard is the
                # one whose worker most plausibly died.  Fail it and
                # retry the rest in a fresh pool — if a later shard was
                # the real culprit, it becomes oldest and is failed on
                # a subsequent round, so the loop always terminates.
                results[index] = ShardResult(
                    index, False,
                    error="worker process died (broken pool); "
                          "shard abandoned",
                )
                pending.remove(index)
                rebuild = True
                break
            except FutureTimeout:
                results[index] = ShardResult(
                    index, False,
                    error=f"shard exceeded timeout ({timeout}s); "
                          f"worker pool recycled",
                )
                pending.remove(index)
                rebuild = True
                break
            except Exception:  # noqa: BLE001 - in-task exception
                results[index] = ShardResult(
                    index, False, error=traceback.format_exc()
                )
                pending.remove(index)
            else:
                results[index] = ShardResult(
                    index, True, value, elapsed=elapsed
                )
                pending.remove(index)
        if rebuild:
            _terminate(pool)
        else:
            pool.shutdown(wait=True)
    return [result for result in results if result is not None]


def require_all(results: Sequence[ShardResult]) -> list[Any]:
    """The shard values in order; raises :class:`ShardError` on failure."""
    failures = [shard for shard in results if not shard.ok]
    if failures:
        raise ShardError(failures)
    return [shard.value for shard in results]
