"""Picklable task specs and module-level workers for every shard kind.

Each entry point that accepts ``--jobs`` has a task dataclass (what
crosses the process boundary going in) and a module-level worker
function (what the pool executes).  Grid selections cross the boundary
in the form :func:`~repro.fuzz.grid.ship_grid` chose: directly when
the configurations pickle, otherwise as ablation-grid *names* the
worker resolves with :func:`~repro.fuzz.grid.grid_by_names` (the
standard grid's factories are closures and cannot pickle).

Workers are side-effect free: they return picklable result objects
(:class:`~repro.fuzz.engine.IterationOutcome`,
:class:`~repro.harness.table1.Table1Row`, ...) and the parent process
performs all writes and console output while merging in submission
order.  That split is what makes ``--jobs N`` output byte-identical to
``--jobs 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fuzz.grid import GridConfig
from repro.resilience.governor import Budgets
from repro.workloads.randomgen import GeneratorConfig


# ------------------------------------------------------------------ fuzz
@dataclass(frozen=True)
class FuzzIterationTask:
    """One fuzz iteration: generate, check, optionally shrink.

    ``seed`` is the already-derived iteration seed (see
    :func:`repro.fuzz.engine.iteration_seed`), so the worker needs no
    knowledge of the base seed or its shard's position in the budget.
    """

    index: int
    seed: int
    shrink: bool
    stats: bool
    crash: bool
    max_shrink_evaluations: int
    generator: Optional[GeneratorConfig]
    config_names: Optional[tuple[str, ...]]
    configs: Optional[tuple[GridConfig, ...]] = None


def run_fuzz_iteration(task: FuzzIterationTask):
    """Worker: one differential-fuzz iteration, no side effects."""
    from repro.fuzz.engine import FuzzConfig, FuzzEngine
    from repro.fuzz.grid import unship_grid

    engine = FuzzEngine(
        FuzzConfig(
            budget=1,
            seed=task.seed,
            shrink=task.shrink,
            stats=task.stats,
            crash=task.crash,
            generator=task.generator,
            configs=unship_grid(task.config_names, task.configs),
            max_shrink_evaluations=task.max_shrink_evaluations,
        )
    )
    return engine.check_iteration(task.index, task.seed)


# ------------------------------------------------------------ table 1 / 2
@dataclass(frozen=True)
class Table1Task:
    """One Table 1 benchmark measurement (E1 slowdowns + E2 nodes)."""

    workload: str
    scale: float
    seed: int
    repeats: int


def run_table1_workload(task: Table1Task):
    """Worker: measure one workload; returns its ``Table1Row``."""
    from repro.harness.table1 import measure_workload
    from repro.workloads.base import get

    return measure_workload(
        get(task.workload),
        scale=task.scale,
        seed=task.seed,
        repeats=task.repeats,
    )


@dataclass(frozen=True)
class Table2Task:
    """One Table 2 benchmark scoring (precision/recall over seeds)."""

    workload: str
    seeds: tuple[int, ...]
    scale: float
    stats: bool


def run_table2_workload(task: Table2Task):
    """Worker: score one workload; returns its ``Table2Row``."""
    from repro.harness.table2 import score_workload
    from repro.workloads.base import get

    return score_workload(
        get(task.workload),
        seeds=task.seeds,
        scale=task.scale,
        stats=task.stats,
    )


# ----------------------------------------------------------- packed decode
@dataclass(frozen=True)
class BlockRangeTask:
    """Decode blocks ``[first_block, end_block)`` of a packed trace.

    Block ranges are disjoint by construction
    (:func:`repro.store.parallel.block_ranges`), so workers touch
    non-overlapping byte ranges of the file and the parent's
    block-order concatenation reproduces a serial decode exactly.
    """

    path: str
    first_block: int
    end_block: int


def run_block_decode(task: BlockRangeTask):
    """Worker: decode one block range; returns its operation list."""
    from repro.store.reader import PackedTraceReader

    ops = []
    with PackedTraceReader(task.path) as reader:
        for number in range(task.first_block, task.end_block):
            ops.extend(reader.decode_block(number))
    return ops


@dataclass(frozen=True)
class BlockListTask:
    """Decode blocks ``[first_block, end_block)``, keeping boundaries.

    Like :class:`BlockRangeTask` but returning one operation list per
    block instead of a flat concatenation: the block-granular analysis
    plane (:class:`~repro.pipeline.source.PackedTraceSource`) needs
    per-block lists so decoded blocks line up with their summaries.
    """

    path: str
    first_block: int
    end_block: int


def run_block_lists(task: BlockListTask):
    """Worker: decode one block range; returns a list per block."""
    from repro.store.reader import PackedTraceReader

    with PackedTraceReader(task.path) as reader:
        return [
            reader.decode_block(number)
            for number in range(task.first_block, task.end_block)
        ]


# ------------------------------------------------------------------ serve
@dataclass(frozen=True)
class StreamTask:
    """One (re)attempt at checking one spooled stream under serve.

    ``checkpoint_path`` is ``None`` for replay-from-origin streams
    (backend selection with no snapshot codec); the worker then runs
    without periodic checkpoints and a daemon restart deterministically
    replays the stream from its first event.

    ``memoize`` turns on region memoization inside the stream's
    supervised checker (``repro serve --memoize``); ``memo_max`` bounds
    the per-stream memo table.  The table is transient worker state —
    it is not checkpointed, a resumed stream simply re-certifies.
    """

    stream_id: str
    path: str
    format: str
    backends: tuple[str, ...]
    checkpoint_path: Optional[str]
    checkpoint_every: int
    budgets: Budgets
    on_pressure: str
    max_retained: int
    memoize: bool = False
    memo_max: int = 1024


def run_stream_task(task: StreamTask):
    """Worker: one supervised pass over one stream."""
    from repro.serve.stream import process_stream

    return process_stream(task)


# ---------------------------------------------------------- corpus replay
@dataclass(frozen=True)
class CorpusReplayTask:
    """Re-check one corpus recording across the grid."""

    path: str
    config_names: Optional[tuple[str, ...]]
    crash: bool
    seed: int
    configs: Optional[tuple[GridConfig, ...]] = None


def run_corpus_replay(task: CorpusReplayTask):
    """Worker: replay one corpus trace; returns its ``TraceCheck``."""
    from dataclasses import replace

    from repro.events.serialize import load_trace
    from repro.fuzz.faults import (
        crash_recovery_divergences,
        fault_injection_divergences,
    )
    from repro.fuzz.grid import unship_grid
    from repro.fuzz.verdicts import check_trace

    configs = unship_grid(task.config_names, task.configs)
    trace = load_trace(task.path)
    check = check_trace(trace, configs=configs)
    if task.crash:
        extra = [
            *crash_recovery_divergences(
                trace, configs=configs, seed=task.seed
            ),
            *fault_injection_divergences(
                trace, configs=configs, seed=task.seed
            ),
        ]
        if extra:
            check = replace(
                check, divergences=(*check.divergences, *extra)
            )
    return check


# ------------------------------------------------------------------- lab
@dataclass(frozen=True)
class LabCellTask:
    """One ``repro lab`` matrix cell: a recorded trace × one backend."""

    workload: str
    point: str
    backend: str
    trace_path: str
    repeats: int
    memoize: bool


@dataclass(frozen=True)
class LabCellResult:
    """Measured numbers and observed verdict of one matrix cell.

    ``peak_nodes`` is the happens-before graph's high-water mark
    (``max_alive``) and is ``None`` for graph-free backends
    (AeroDrome).  ``labels`` is the sorted set of transaction labels
    the backend warned about; empty means a serializable verdict.
    """

    workload: str
    point: str
    backend: str
    events: int
    verdict: str
    labels: tuple[str, ...]
    best_seconds: float
    events_per_sec: float
    peak_nodes: Optional[int]
    fast_forwarded: int
    memoized: int
    memo_hits: int
    memo_misses: int


def run_lab_cell(task: LabCellTask) -> LabCellResult:
    """Worker: replay one recorded trace through one fresh backend.

    Timing is best-of-``repeats`` (each repeat is a fresh backend over
    the same packed source); the verdict, labels, and counter fields
    come from the best-timed repeat, and are identical across repeats
    by determinism of the replay.
    """
    import time

    from repro.core.memo import RegionMemo
    from repro.experiments.runner import make_backend
    from repro.pipeline.core import Pipeline
    from repro.pipeline.source import PackedTraceSource

    best = None
    for _ in range(max(1, task.repeats)):
        backend = make_backend(task.backend)
        memo = RegionMemo() if task.memoize else None
        pipeline = Pipeline([backend], stats=True, memo=memo)
        started = time.perf_counter()
        pipeline.run(PackedTraceSource(task.trace_path))
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, backend, pipeline.metrics(elapsed=elapsed))
    elapsed, backend, metrics = best
    graph = getattr(backend, "graph", None)
    backend_metrics = metrics.backends[0]
    return LabCellResult(
        workload=task.workload,
        point=task.point,
        backend=task.backend,
        events=metrics.events_in,
        verdict="violating" if backend.warning_count else "serializable",
        labels=tuple(sorted(backend.warned_labels())),
        best_seconds=elapsed,
        events_per_sec=metrics.events_in / elapsed if elapsed > 0 else 0.0,
        peak_nodes=graph.stats.max_alive if graph is not None else None,
        fast_forwarded=backend_metrics.events_fast_forwarded,
        memoized=backend_metrics.events_memoized,
        memo_hits=metrics.memo_hits,
        memo_misses=metrics.memo_misses,
    )
