"""Shard-and-merge parallel execution (``--jobs N``).

The repository's expensive entry points — the differential fuzzer, the
Table 1/2 harnesses, and corpus replay — all decompose into independent
(workload x configuration x backend-set) runs.  This package fans those
runs out across worker processes and merges the results **in submission
order**, so the merged output is byte-identical to a serial run: the
parallelism changes wall-clock time and nothing else.

Design constraints (see ``docs/performance.md``):

* Work units travel as small picklable *task* dataclasses
  (:mod:`repro.parallel.tasks`); grid configurations are carried by
  *name* and rebuilt inside the worker, because
  :class:`~repro.fuzz.grid.GridConfig` holds closures.
* Per-task seeds derive from ``(base_seed, index)`` independently of
  every other task (:func:`repro.fuzz.engine.iteration_seed`), so the
  generated trace corpus is identical for any worker count and any
  scheduling order.
* A worker crash or timeout fails the *shard*, not the batch: the
  executor reports which shard died and keeps collecting the rest
  (:mod:`repro.parallel.executor`).
"""

from repro.parallel.executor import ShardError, ShardResult, run_shards

__all__ = [
    "ShardError",
    "ShardResult",
    "run_shards",
]
