"""``repro bench``: measure serial and ``--jobs`` throughput.

Produces ``BENCH_parallel.json`` with two sections:

* **stages** — single-process events/sec for each pipeline stage in
  isolation: ``generate`` (random program -> recorded trace),
  ``encode`` / ``decode`` (JSONL round trip), and ``analyze`` (the
  Table 1 fan-out lineup over a recorded trace).  These numbers track
  the hot-path event loop: dispatch tables, fan-out binding, batched
  decode.
* **fuzz** — end-to-end differential-fuzz throughput, serial versus
  ``--jobs N``, with the observed speedup.  On a single-core container
  the speedup cannot exceed ~1.0x; ``cpu_count`` is recorded alongside
  so the number can be read in context.

``--check-against BASELINE.json`` compares the new events/sec figures
to a committed baseline and exits non-zero on a regression beyond
``--threshold`` (default 30%) — the CI perf-smoke gate.

Run as a script::

    python -m repro.parallel.bench [--quick] [--jobs N]
        [--output FILE] [--check-against FILE] [--threshold F]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from typing import Callable, Optional, Sequence

#: Trace used by every stage measurement: one seed, repeated to a few
#: thousand events so per-call overhead dominates over warm-up noise.
_STAGE_SEED = 7
_STAGE_COPIES = 40
_STAGE_COPIES_QUICK = 10


def _best_of(repeats: int, thunk: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


def measure_stages(quick: bool = False) -> dict:
    """Single-process events/sec per pipeline stage."""
    from repro.baselines.atomizer import Atomizer
    from repro.baselines.empty import EmptyAnalysis
    from repro.baselines.eraser import EraserLockSet
    from repro.core.optimized import VelodromeOptimized
    from repro.events.serialize import dump_jsonl, load_jsonl
    from repro.events.trace import Trace
    from repro.fuzz.engine import trace_for_seed
    from repro.pipeline import Pipeline, TraceSource

    repeats = 3 if quick else 7
    copies = _STAGE_COPIES_QUICK if quick else _STAGE_COPIES
    base = trace_for_seed(_STAGE_SEED)
    ops = list(base) * copies
    trace = Trace(ops)
    buffer = io.StringIO()
    dump_jsonl(ops, buffer)
    text = buffer.getvalue()
    events = len(ops)

    def analyze():
        Pipeline(
            [
                EmptyAnalysis(),
                EraserLockSet(),
                Atomizer(),
                VelodromeOptimized(first_warning_per_label=True),
            ]
        ).run(TraceSource(trace))

    stages = {
        "generate": _best_of(repeats, lambda: trace_for_seed(_STAGE_SEED)),
        "encode": _best_of(
            repeats, lambda: dump_jsonl(ops, io.StringIO())
        ),
        "decode": _best_of(repeats, lambda: load_jsonl(io.StringIO(text))),
        "analyze": _best_of(repeats, analyze),
    }
    generate_events = len(base)
    report = {}
    for name, elapsed in stages.items():
        stage_events = generate_events if name == "generate" else events
        report[name] = {
            "events": stage_events,
            "best_seconds": round(elapsed, 6),
            "events_per_sec": round(stage_events / elapsed, 1),
        }
    return report


def measure_fuzz(budget: int, jobs: int, quick: bool = False) -> dict:
    """End-to-end fuzz throughput, serial versus ``--jobs``."""
    from repro.fuzz.engine import FuzzConfig, FuzzEngine
    from repro.fuzz.grid import default_grid

    configs = default_grid() if quick else None

    def run(n_jobs: int):
        report = FuzzEngine(
            FuzzConfig(budget=budget, seed=0, configs=configs, jobs=n_jobs)
        ).run()
        if not report.clean:
            raise RuntimeError(
                f"bench fuzz run not clean: {report.summary()}"
            )
        return report

    serial = run(1)
    parallel = run(jobs)
    serial_rate = serial.events / serial.elapsed if serial.elapsed else 0.0
    parallel_rate = (
        parallel.events / parallel.elapsed if parallel.elapsed else 0.0
    )
    return {
        "budget": budget,
        "grid": "quick" if quick else "full",
        "events": serial.events,
        "serial": {
            "elapsed_seconds": round(serial.elapsed, 3),
            "events_per_sec": round(serial_rate, 1),
        },
        "parallel": {
            "jobs": jobs,
            "elapsed_seconds": round(parallel.elapsed, 3),
            "events_per_sec": round(parallel_rate, 1),
        },
        "speedup": round(
            serial.elapsed / parallel.elapsed, 3
        ) if parallel.elapsed else 0.0,
    }


def run_bench(
    quick: bool = False, jobs: int = 4, budget: Optional[int] = None
) -> dict:
    """The full measurement; returns the ``BENCH_parallel.json`` dict."""
    if budget is None:
        budget = 8 if quick else 40
    return {
        "schema": 1,
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "stages": measure_stages(quick=quick),
        "fuzz": measure_fuzz(budget=budget, jobs=jobs, quick=quick),
    }


def compare_to_baseline(
    current: dict, baseline: dict, threshold: float = 0.30
) -> list[str]:
    """Regressions beyond ``threshold``, as human-readable strings.

    Compares every ``events_per_sec`` figure present in both reports;
    keys only one side has are skipped (benchmarks may gain stages).
    Faster-than-baseline is never a failure.
    """
    regressions = []
    pairs = [
        (f"stages.{name}", entry, baseline.get("stages", {}).get(name))
        for name, entry in current.get("stages", {}).items()
    ]
    pairs.append(
        (
            "fuzz.serial",
            current.get("fuzz", {}).get("serial"),
            baseline.get("fuzz", {}).get("serial"),
        )
    )
    for label, new, old in pairs:
        if not new or not old:
            continue
        new_rate = new.get("events_per_sec")
        old_rate = old.get("events_per_sec")
        if not new_rate or not old_rate:
            continue
        floor = old_rate * (1.0 - threshold)
        if new_rate < floor:
            regressions.append(
                f"{label}: {new_rate:,.0f} ev/s is "
                f"{1 - new_rate / old_rate:.0%} below baseline "
                f"{old_rate:,.0f} ev/s (allowed: {threshold:.0%})"
            )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> None:
    if argv and argv[0] == "store":
        # ``repro bench store ...`` — the packed-store benchmark.
        from repro.store.bench import main as store_main

        store_main(list(argv)[1:])
        return
    if argv and argv[0] == "backends":
        # ``repro bench backends ...`` — graph vs vector-clock.
        from repro.core.bench import main as backends_main

        backends_main(list(argv)[1:])
        return
    if argv and argv[0] == "memo":
        # ``repro bench memo ...`` — region memoization on/off.
        from repro.core.bench_memo import main as memo_main

        memo_main(list(argv)[1:])
        return
    if argv and argv[0] == "workloads":
        # ``repro bench workloads ...`` — the server-suite scaling sweep.
        from repro.experiments.bench import main as workloads_main

        workloads_main(list(argv)[1:])
        return
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller budgets (the CI perf-smoke shape)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel comparison "
                             "(default 4)")
    parser.add_argument("--budget", type=int, default=None,
                        help="fuzz iterations (default: 8 quick, 40 full)")
    parser.add_argument("--output", default="BENCH_parallel.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-against", metavar="FILE", default=None,
                        help="committed baseline to gate against")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed events/sec regression vs the "
                             "baseline (default 0.30)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, jobs=args.jobs, budget=args.budget)
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")

    for name, entry in report["stages"].items():
        print(f"{name:>9}: {entry['events_per_sec']:>12,.0f} ev/s")
    fuzz = report["fuzz"]
    print(f"fuzz serial : {fuzz['serial']['events_per_sec']:>10,.0f} ev/s "
          f"({fuzz['serial']['elapsed_seconds']}s, "
          f"budget {fuzz['budget']}, {fuzz['grid']} grid)")
    print(f"fuzz --jobs {fuzz['parallel']['jobs']}: "
          f"{fuzz['parallel']['events_per_sec']:>10,.0f} ev/s "
          f"({fuzz['parallel']['elapsed_seconds']}s)")
    print(f"speedup: {fuzz['speedup']}x on {report['cpu_count']} cpu(s)")
    print(f"wrote {args.output}")

    if args.check_against:
        with open(args.check_against, encoding="utf-8") as stream:
            baseline = json.load(stream)
        regressions = compare_to_baseline(
            report, baseline, threshold=args.threshold
        )
        if regressions:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            raise SystemExit(1)
        print(f"no regression vs {args.check_against} "
              f"(threshold {args.threshold:.0%})")


if __name__ == "__main__":
    main()
