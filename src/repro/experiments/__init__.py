"""The experiment driver: declarative matrices over server workloads.

``repro lab run`` executes a workload × backend × scale × jobs matrix
described by a :class:`~repro.experiments.spec.LabSpec` (JSON file,
CLI flags, or both), records each (workload, point) trace exactly
once, replays it through every selected sound-and-complete backend
via the block pipeline, and **asserts the workload's declared ground
truth at every cell before reporting a number**.  ``repro lab
report`` renders stored results as markdown; ``repro bench
workloads`` is the committed-baseline scaling sweep built on the same
machinery.

See ``docs/workloads.md`` for the server families and their declared
truths, and ``EXPERIMENTS.md`` for how the lab fits the experiment
pipeline.
"""

from repro.experiments.digests import (
    digest_map,
    family_for_digest,
    load_digests,
    save_digests,
)
from repro.experiments.report import render_report
from repro.experiments.runner import (
    BACKEND_FACTORIES,
    GroundTruthMismatch,
    check_cell,
    make_backend,
    record_trace,
    run_lab,
)
from repro.experiments.spec import (
    ALLOWED_BACKENDS,
    DEFAULT_BACKENDS,
    GRAPH_BACKENDS,
    LabSpec,
    SpecError,
    load_spec,
)

__all__ = [
    "ALLOWED_BACKENDS",
    "BACKEND_FACTORIES",
    "DEFAULT_BACKENDS",
    "GRAPH_BACKENDS",
    "GroundTruthMismatch",
    "LabSpec",
    "SpecError",
    "check_cell",
    "digest_map",
    "family_for_digest",
    "load_digests",
    "load_spec",
    "make_backend",
    "record_trace",
    "render_report",
    "run_lab",
    "save_digests",
]
