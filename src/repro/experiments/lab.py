"""``repro lab``: the unified server-workload experiment driver.

Subcommands:

``repro lab run``
    Execute a workload × backend × scale matrix (from ``--spec``
    JSON, CLI flags, or both), assert declared ground truth at every
    cell, and write a results JSON.  Exits 2 naming every failing
    cell on a ground-truth mismatch.

``repro lab list``
    Show the server workload families, their scale points, declared
    ground truth, and parameter knobs.

``repro lab report``
    Render a stored results JSON as a markdown table.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.digests import digest_map, save_digests
from repro.experiments.report import render_report
from repro.experiments.runner import GroundTruthMismatch, run_lab
from repro.experiments.spec import (
    ALLOWED_BACKENDS,
    LabSpec,
    SpecError,
    load_spec,
)
from repro.workloads.server import POINT_ORDER, server_families


def _csv(text: Optional[str]) -> Optional[tuple[str, ...]]:
    if text is None:
        return None
    items = tuple(part.strip() for part in text.split(",") if part.strip())
    return items or None


def cmd_run(args) -> int:
    try:
        spec = load_spec(
            args.spec,
            name=args.name,
            workloads=_csv(args.workloads),
            backends=_csv(args.backends),
            points=_csv(args.points),
            seed=args.seed,
            jobs=args.jobs,
            repeats=args.repeats,
            memoize=True if args.memoize else None,
        )
    except SpecError as exc:
        print(f"lab: {exc}", file=sys.stderr)
        return 2

    trace_dir = args.trace_dir
    scratch = None
    if trace_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-lab-")
        trace_dir = Path(scratch)
    try:
        doc = run_lab(spec, Path(trace_dir))
    except GroundTruthMismatch as exc:
        print(f"lab: GROUND TRUTH MISMATCH\n{exc}", file=sys.stderr)
        return 2
    finally:
        if scratch is not None and not args.keep_traces:
            shutil.rmtree(scratch, ignore_errors=True)

    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.output is not None:
        Path(args.output).write_text(payload + "\n")
        print(f"lab: results -> {args.output}")
    else:
        print(payload)
    if args.digests is not None:
        save_digests(Path(args.digests), digest_map(doc))
        print(f"lab: digests -> {args.digests}")
    total = len(doc["cells"])
    print(
        f"lab: {total} cell(s) clean "
        f"({doc['elapsed_seconds']:.1f}s total)"
    )
    return 0


def cmd_list(args) -> int:
    del args
    for family in server_families():
        workload = family.workload
        print(f"{family.name}  [{family.kind}]")
        print(f"  {workload.description}")
        for point in family.scale_points:
            truth = family.truth_at(point.name)
            verdict = truth.verdict
            if truth.blamed:
                verdict += f", blames {', '.join(sorted(truth.blamed))}"
            print(
                f"  {point.name:<7} scale {point.scale:>7g}  "
                f"~{point.approx_events:>9,} events  {verdict}"
            )
        for knob, meaning in family.knobs.items():
            print(f"  knob {knob}: {meaning}")
        print()
    return 0


def cmd_report(args) -> int:
    try:
        doc = json.loads(Path(args.results).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"lab: cannot load results {args.results}: {exc}",
              file=sys.stderr)
        return 2
    print(render_report(doc))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lab", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute a matrix with per-cell ground-truth gates"
    )
    run.add_argument("--spec", type=Path, default=None,
                     help="JSON experiment spec (flags override keys)")
    run.add_argument("--name", default=None, help="experiment name")
    run.add_argument("--workloads", default=None,
                     help="comma-separated families (default: all five)")
    run.add_argument("--backends", default=None,
                     help="comma-separated backends "
                          f"({', '.join(ALLOWED_BACKENDS)})")
    run.add_argument("--points", default=None,
                     help="comma-separated scale points "
                          f"({', '.join(POINT_ORDER)})")
    run.add_argument("--seed", type=int, default=None,
                     help="recording scheduler seed (default 0)")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes for the cell matrix")
    run.add_argument("--repeats", type=int, default=None,
                     help="timing repeats per cell (best-of)")
    run.add_argument("--memoize", action="store_true",
                     help="enable region memoization in every cell")
    run.add_argument("--output", type=Path, default=None,
                     help="write results JSON here (default: stdout)")
    run.add_argument("--trace-dir", type=Path, default=None,
                     help="keep recorded traces here "
                          "(default: a scratch dir, deleted)")
    run.add_argument("--digests", type=Path, default=None,
                     help="write the digest -> family map for "
                          "repro serve --lab-digests")
    run.add_argument("--keep-traces", action="store_true",
                     help="keep the scratch trace dir")
    run.set_defaults(func=cmd_run)

    lst = sub.add_parser("list", help="show families, truths, and knobs")
    lst.set_defaults(func=cmd_list)

    rep = sub.add_parser("report", help="render results JSON as markdown")
    rep.add_argument("results", type=Path, help="results JSON from lab run")
    rep.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = build_parser().parse_args(argv)
    code = args.func(args)
    if code:
        raise SystemExit(code)


if __name__ == "__main__":
    main()
