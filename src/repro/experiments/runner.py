"""Execute a :class:`~repro.experiments.spec.LabSpec` matrix.

The run splits into two halves the same way the repo's benches do:

1. **Record once.**  Each selected (workload, point) is executed once
   at the spec's scheduler seed with no backends attached, and the
   trace is saved as a packed VTRC file.  Scheduling is
   backend-independent, so every matrix cell for that pair replays the
   *identical* event stream — backends are compared on the same input,
   and the trace's content digest identifies the cell family anywhere
   the trace later shows up (see :mod:`repro.experiments.digests`).

2. **Check many.**  Every (workload, point, backend) cell replays the
   recorded trace through a fresh backend via the block pipeline
   (:class:`~repro.pipeline.source.PackedTraceSource`), best-of-N
   timed, optionally fanned out across processes with
   :func:`~repro.parallel.executor.run_shards`.

Before any number is reported, each cell's observed verdict (and, for
graph backends, the warned label set) is asserted against the
workload's declared ground truth; a mismatch raises
:class:`GroundTruthMismatch` naming every failing cell.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Optional

from repro.core.aerodrome import AeroDrome
from repro.core.backend import AnalysisBackend
from repro.core.basic import VelodromeBasic
from repro.core.compact import VelodromeCompact
from repro.core.optimized import VelodromeOptimized
from repro.experiments.spec import GRAPH_BACKENDS, LabSpec
from repro.fuzz.corpus import trace_digest
from repro.parallel.executor import run_shards
from repro.parallel.tasks import LabCellResult, LabCellTask, run_lab_cell
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tool import run_with_backends
from repro.store import save_packed
from repro.workloads.server import SERVER_FAMILIES, ServerFamily

#: Sound-and-complete checker factories the lab may instantiate.  The
#: graph backends cap warning volume at one per label — the gate
#: compares label *sets*, and large matrices would otherwise drown in
#: repeated warnings for the same seeded defect.
BACKEND_FACTORIES: dict[str, Callable[[], AnalysisBackend]] = {
    "velodrome": lambda: VelodromeOptimized(first_warning_per_label=True),
    "basic": VelodromeBasic,  # takes no warning-cap option
    "compact": lambda: VelodromeCompact(first_warning_per_label=True),
    "aerodrome": AeroDrome,
}


class GroundTruthMismatch(RuntimeError):
    """At least one matrix cell contradicted its declared ground truth."""

    def __init__(self, failures: list[str]):
        self.failures = failures
        lines = "\n  ".join(failures)
        super().__init__(
            f"{len(failures)} matrix cell(s) contradict declared "
            f"ground truth:\n  {lines}"
        )


def trace_filename(workload: str, point: str) -> str:
    return f"{workload}@{point}.vtrc"


def record_trace(
    family: ServerFamily, point_name: str, seed: int, trace_dir: Path
) -> dict:
    """Record one (workload, point) trace; returns its manifest entry."""
    trace_dir = Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    point = family.point(point_name)
    program = family.workload.build(point.scale)
    run = run_with_backends(
        program,
        [],
        scheduler=RandomScheduler(seed=seed),
        record_trace=True,
    )
    trace = run.trace
    assert trace is not None
    path = trace_dir / trace_filename(family.name, point_name)
    save_packed(trace, path)
    return {
        "workload": family.name,
        "point": point_name,
        "scale": point.scale,
        "events": len(trace),
        "digest": trace_digest(trace),
        "trace": str(path),
    }


def check_cell(
    family: ServerFamily, point: str, backend: str, result: LabCellResult
) -> Optional[str]:
    """The gate: one cell against its declaration; ``None`` when clean."""
    truth = family.truth_at(point)
    cell = f"{family.name}@{point}×{backend}"
    if result.verdict != truth.verdict:
        return (
            f"{cell}: observed {result.verdict}, "
            f"declared {truth.verdict}"
        )
    if backend in GRAPH_BACKENDS and set(result.labels) != set(truth.blamed):
        return (
            f"{cell}: blamed {sorted(result.labels)}, "
            f"declared {sorted(truth.blamed)}"
        )
    return None


def run_lab(spec: LabSpec, trace_dir: Path) -> dict:
    """Record, execute, and gate the full matrix; returns the results doc.

    Raises :class:`GroundTruthMismatch` (after completing every cell)
    if any cell's verdict or blame contradicts the declaration —
    numbers for the clean cells are still in the exception-free parts
    of the doc, but callers must treat the run as failed.
    """
    spec.validate()
    trace_dir = Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    recorded: dict[str, dict] = {}
    for workload in spec.selected_workloads:
        family = SERVER_FAMILIES[workload]
        for point in spec.points:
            entry = record_trace(family, point, spec.seed, trace_dir)
            recorded[f"{workload}@{point}"] = entry

    tasks = []
    for workload, point, backend in spec.cells():
        entry = recorded[f"{workload}@{point}"]
        tasks.append(LabCellTask(
            workload=workload,
            point=point,
            backend=backend,
            trace_path=entry["trace"],
            repeats=spec.repeats,
            memoize=spec.memoize,
        ))
    shards = run_shards(run_lab_cell, tasks, jobs=spec.jobs)

    failures: list[str] = []
    cells: list[dict] = []
    for shard in shards:
        if not shard.ok:
            task = tasks[shard.index]
            failures.append(
                f"{task.workload}@{task.point}×{task.backend}: "
                f"cell failed: {shard.error}"
            )
            continue
        result: LabCellResult = shard.value
        family = SERVER_FAMILIES[result.workload]
        problem = check_cell(family, result.point, result.backend, result)
        if problem is not None:
            failures.append(problem)
        cells.append(asdict(result))

    doc = {
        "spec": spec.to_json(),
        "recorded": recorded,
        "cells": cells,
        "elapsed_seconds": time.perf_counter() - started,
    }
    if failures:
        raise GroundTruthMismatch(failures)
    return doc


def make_backend(name: str) -> AnalysisBackend:
    try:
        return BACKEND_FACTORIES[name]()
    except KeyError:
        known = ", ".join(BACKEND_FACTORIES)
        raise KeyError(
            f"unknown lab backend {name!r}; known: {known}"
        ) from None
