"""Declarative experiment specs for the ``repro lab`` driver.

A :class:`LabSpec` names a workload × backend × scale-point matrix
plus how to execute it (recording seed, worker processes, timing
repeats, memoization).  Specs load from a JSON file, from CLI flags,
or both (flags override file keys) — the config-object style of
wiscsee's experiment framework: one frozen value describes the whole
experiment, and everything downstream (runner, bench, report) is a
pure function of it.

Only sound-and-complete checkers are allowed in the matrix: every
cell's observed verdict is asserted against the workload's declared
ground truth before any number is reported, and a heuristic checker
(Atomizer, Eraser, ...) would fail that gate by design rather than by
regression.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Optional

from repro.workloads.server import POINT_ORDER, SERVER_FAMILIES

#: Backends whose verdicts the ground-truth gate may assert, by family:
#: the graph backends also pin the blamed label set; AeroDrome reports
#: violations per label but is asserted on the verdict alone.
GRAPH_BACKENDS = ("velodrome", "basic", "compact")
VECTOR_BACKENDS = ("aerodrome",)
ALLOWED_BACKENDS = GRAPH_BACKENDS + VECTOR_BACKENDS

DEFAULT_BACKENDS = ("velodrome", "aerodrome")


class SpecError(ValueError):
    """A malformed or unsatisfiable experiment spec."""


@dataclass(frozen=True)
class LabSpec:
    """One experiment: a matrix and how to run it.

    ``workloads`` and ``points`` default to *every* server family and
    the ``smoke`` point; ``backends`` to one representative of each
    sound-and-complete family (graph Velodrome + vector-clock
    AeroDrome).
    """

    name: str = "lab"
    workloads: tuple[str, ...] = ()
    backends: tuple[str, ...] = DEFAULT_BACKENDS
    points: tuple[str, ...] = ("smoke",)
    seed: int = 0
    jobs: int = 1
    repeats: int = 1
    memoize: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(self, "points", tuple(self.points))

    def validate(self) -> "LabSpec":
        """Raise :class:`SpecError` on any unknown matrix axis value."""
        known = list(SERVER_FAMILIES)
        for workload in self.workloads:
            if workload not in SERVER_FAMILIES:
                raise SpecError(
                    f"unknown server workload {workload!r}; "
                    f"known: {', '.join(known)}"
                )
        for backend in self.backends:
            if backend not in ALLOWED_BACKENDS:
                raise SpecError(
                    f"backend {backend!r} is not a sound-and-complete "
                    f"checker; the lab asserts ground truth per cell, "
                    f"so only {', '.join(ALLOWED_BACKENDS)} qualify"
                )
        if not self.backends:
            raise SpecError("spec selects no backends")
        for point in self.points:
            if point not in POINT_ORDER:
                raise SpecError(
                    f"unknown scale point {point!r}; "
                    f"known: {', '.join(POINT_ORDER)}"
                )
        if not self.points:
            raise SpecError("spec selects no scale points")
        if self.jobs < 1:
            raise SpecError(f"jobs must be >= 1, got {self.jobs}")
        if self.repeats < 1:
            raise SpecError(f"repeats must be >= 1, got {self.repeats}")
        return self

    @property
    def selected_workloads(self) -> tuple[str, ...]:
        """The workload axis with the empty default expanded."""
        return self.workloads or tuple(SERVER_FAMILIES)

    def cells(self) -> list[tuple[str, str, str]]:
        """The full matrix as (workload, point, backend) triples."""
        return [
            (workload, point, backend)
            for workload in self.selected_workloads
            for point in self.points
            for backend in self.backends
        ]

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: dict) -> "LabSpec":
        """Build a spec from a JSON document, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise SpecError(
                f"unknown spec keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**doc)


def load_spec(
    path: Optional[Path] = None, **overrides
) -> LabSpec:
    """A validated spec from an optional JSON file plus CLI overrides.

    ``overrides`` values of ``None`` mean "flag not given" and leave
    the file (or dataclass default) value in place.
    """
    if path is not None:
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SpecError(f"cannot load spec {path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise SpecError(f"spec {path} must be a JSON object")
        spec = LabSpec.from_json(doc)
    else:
        spec = LabSpec()
    live = {k: v for k, v in overrides.items() if v is not None}
    if live:
        spec = replace(spec, **live)
    return spec.validate()
