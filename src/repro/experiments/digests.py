"""Lab trace digests: content identity for recorded workload traces.

Every trace the lab records is content-addressed with
:func:`repro.fuzz.corpus.trace_digest` (format-independent: the same
operations give the same digest whether stored as JSONL, DSL, or
packed VTRC).  ``repro lab run --digests PATH`` writes the mapping
``digest -> {workload, kind, point}``; the serve daemon loads it
(``repro serve --lab-digests PATH``) and stamps a ``workload_family``
tag on any spooled stream whose content matches a lab-recorded trace
— so ``/streams`` and ``/metrics`` can attribute daemon traffic to
the workload family that produced it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional


def digest_map(results_doc: dict) -> dict[str, dict]:
    """``digest -> {workload, kind, point}`` from a lab results doc."""
    from repro.workloads.server import SERVER_FAMILIES

    mapping: dict[str, dict] = {}
    for entry in results_doc.get("recorded", {}).values():
        family = SERVER_FAMILIES.get(entry["workload"])
        mapping[entry["digest"]] = {
            "workload": entry["workload"],
            "kind": family.kind if family is not None else "unknown",
            "point": entry["point"],
        }
    return mapping


def save_digests(path: Path, mapping: dict[str, dict]) -> None:
    Path(path).write_text(json.dumps(mapping, indent=2, sort_keys=True))


def load_digests(path: Optional[Path]) -> dict[str, dict]:
    """The digest map at ``path``; empty when ``path`` is ``None``.

    Raises ``ValueError`` on an unreadable or malformed file — a serve
    daemon configured with a digest map should fail at startup, not
    silently drop the tagging it was asked for.
    """
    if path is None:
        return {}
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot load lab digests {path}: {exc}") from exc
    if not isinstance(doc, dict) or not all(
        isinstance(v, dict) for v in doc.values()
    ):
        raise ValueError(
            f"lab digests {path} must map digest -> info object"
        )
    return doc


def family_for_digest(
    mapping: dict[str, dict], digest: str
) -> Optional[str]:
    """The workload-family tag for a stream digest, if lab-recorded."""
    entry = mapping.get(digest)
    if entry is None:
        return None
    return entry.get("workload")
