"""``repro bench workloads``: the server-suite scaling sweep.

For every server family at the selected scale points, replay the
recorded trace through the graph (Velodrome) and vector-clock
(AeroDrome) backends and report events, wall time, events/sec, and
peak graph nodes — plus the whole-matrix wall time serial vs
``--jobs 2`` (the parallel-driver sanity number).  Every cell's
verdict is gated against the workload's declared ground truth before
a single number is reported, exactly like ``repro lab run``.

The committed reference lives at
``benchmarks/baseline/BENCH_workloads.json``; ``--check-against`` it
in CI with a generous threshold (shared runners are noisy) so
order-of-magnitude throughput regressions fail the build.  Baseline
keys are ``workload@point``, so the report shape is compatible with
:func:`repro.core.bench.compare_to_baseline`.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.bench import compare_to_baseline
from repro.experiments.runner import (
    GroundTruthMismatch,
    check_cell,
    record_trace,
)
from repro.parallel.executor import run_shards
from repro.parallel.tasks import LabCellTask, run_lab_cell
from repro.workloads.server import SERVER_FAMILIES

#: The two backend families the sweep compares head-to-head.
SWEEP_BACKENDS = ("velodrome", "aerodrome")

_DEFAULT_POINTS = ("smoke", "small")


def measure_workloads(
    points: Sequence[str] = _DEFAULT_POINTS,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """The sweep report; raises on any ground-truth mismatch."""
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-workloads-"))
    try:
        recorded = []
        for name, family in SERVER_FAMILIES.items():
            for point in points:
                recorded.append(
                    (family, point, record_trace(family, point, seed, scratch))
                )
        tasks = [
            LabCellTask(
                workload=family.name,
                point=point,
                backend=backend,
                trace_path=entry["trace"],
                repeats=repeats,
                memoize=False,
            )
            for family, point, entry in recorded
            for backend in SWEEP_BACKENDS
        ]

        started = time.perf_counter()
        serial = run_shards(run_lab_cell, tasks, jobs=1)
        serial_seconds = time.perf_counter() - started
        started = time.perf_counter()
        run_shards(run_lab_cell, tasks, jobs=2)
        jobs2_seconds = time.perf_counter() - started

        failures: list[str] = []
        workloads: dict[str, dict] = {}
        for (family, point, entry), shard in zip(recorded_cells(recorded),
                                                 serial):
            if not shard.ok:
                failures.append(
                    f"{family.name}@{point}: cell failed: {shard.error}"
                )
                continue
            result = shard.value
            problem = check_cell(family, point, result.backend, result)
            if problem is not None:
                failures.append(problem)
                continue
            row = workloads.setdefault(
                f"{family.name}@{point}",
                {"events": entry["events"], "verdict": result.verdict},
            )
            row[result.backend] = {
                "seconds": result.best_seconds,
                "events_per_sec": result.events_per_sec,
                "peak_nodes": result.peak_nodes,
            }
        if failures:
            raise GroundTruthMismatch(failures)
        return {
            "config": {
                "points": list(points),
                "repeats": repeats,
                "seed": seed,
            },
            "workloads": workloads,
            "matrix": {
                "cells": len(tasks),
                "serial_seconds": serial_seconds,
                "jobs2_seconds": jobs2_seconds,
            },
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def recorded_cells(recorded):
    """Each recorded (family, point, entry), once per sweep backend."""
    for family, point, entry in recorded:
        for _ in SWEEP_BACKENDS:
            yield family, point, entry


def render(report: dict) -> str:
    lines = [
        "repro bench workloads — server-suite scaling sweep",
        f"  points: {', '.join(report['config']['points'])}; "
        f"best of {report['config']['repeats']}",
    ]
    for key, row in report["workloads"].items():
        lines.append(f"  {key}: {row['events']:,} events ({row['verdict']})")
        for backend in SWEEP_BACKENDS:
            cell = row.get(backend)
            if cell is None:
                continue
            peak = (f", peak {cell['peak_nodes']:,} nodes"
                    if cell.get("peak_nodes") is not None else "")
            lines.append(
                f"    {backend:<10} {cell['events_per_sec']:>12,.0f} ev/s "
                f"({cell['seconds']:.3f}s{peak})"
            )
    matrix = report["matrix"]
    lines.append(
        f"  matrix: {matrix['cells']} cells, "
        f"serial {matrix['serial_seconds']:.2f}s, "
        f"--jobs 2 {matrix['jobs2_seconds']:.2f}s"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke point only, 2 repeats (the CI shape)")
    parser.add_argument("--points", default=None,
                        help="comma-separated scale points to sweep")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per cell (best-of)")
    parser.add_argument("--seed", type=int, default=0,
                        help="recording scheduler seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report JSON here")
    parser.add_argument("--check-against", type=Path, default=None,
                        help="compare against a baseline report")
    parser.add_argument("--threshold", type=float, default=0.60,
                        help="allowed events/sec drop vs baseline "
                             "(default 0.60 — shared runners are noisy)")
    args = parser.parse_args(argv)

    if args.points is not None:
        points = tuple(
            p.strip() for p in args.points.split(",") if p.strip()
        )
    else:
        points = ("smoke",) if args.quick else _DEFAULT_POINTS
    repeats = args.repeats if args.repeats is not None else (
        2 if args.quick else 3
    )

    try:
        report = measure_workloads(points, repeats=repeats, seed=args.seed)
    except GroundTruthMismatch as exc:
        print(f"bench workloads: {exc}", file=sys.stderr)
        raise SystemExit(2)
    print(render(report))

    if args.output is not None:
        args.output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report -> {args.output}")
    if args.check_against is not None:
        baseline = json.loads(args.check_against.read_text())
        regressions = compare_to_baseline(
            report, baseline, threshold=args.threshold
        )
        if regressions:
            print("REGRESSIONS vs baseline:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            raise SystemExit(1)
        print(f"no regressions vs {args.check_against}")


if __name__ == "__main__":
    main()
