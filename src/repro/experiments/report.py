"""Render ``repro lab`` results as a markdown table.

The stored results JSON (see :func:`~repro.experiments.runner.
run_lab`) becomes one pipe table: a row per (workload, scale point),
a column per backend, each cell showing throughput and the observed
verdict.  Ground truth was asserted before the doc was written, so
the verdict column is a restatement, not a claim under test.
"""

from __future__ import annotations

from typing import Optional


def _rate(events_per_sec: float) -> str:
    if events_per_sec >= 1_000_000:
        return f"{events_per_sec / 1_000_000:.1f}M ev/s"
    if events_per_sec >= 1_000:
        return f"{events_per_sec / 1_000:.0f}k ev/s"
    return f"{events_per_sec:.0f} ev/s"


def _cell(result: Optional[dict]) -> str:
    if result is None:
        return "—"
    text = f"{_rate(result['events_per_sec'])} · {result['verdict']}"
    if result.get("peak_nodes") is not None:
        text += f" · peak {result['peak_nodes']:,}"
    return text


def render_report(doc: dict) -> str:
    """The results document as GitHub-flavored markdown."""
    spec = doc.get("spec", {})
    backends = list(spec.get("backends", ()))
    cells = doc.get("cells", [])
    if not backends:
        backends = sorted({c["backend"] for c in cells})

    by_key: dict[tuple[str, str, str], dict] = {
        (c["workload"], c["point"], c["backend"]): c for c in cells
    }
    rows: list[tuple[str, str]] = []
    for cell in cells:
        key = (cell["workload"], cell["point"])
        if key not in rows:
            rows.append(key)

    lines = [
        f"## lab results: {spec.get('name', 'lab')}",
        "",
        f"seed {spec.get('seed', 0)}, jobs {spec.get('jobs', 1)}, "
        f"best of {spec.get('repeats', 1)}"
        + (", memoized" if spec.get("memoize") else ""),
        "",
        "| workload | " + " | ".join(backends) + " |",
        "|" + "---|" * (len(backends) + 1),
    ]
    recorded = doc.get("recorded", {})
    for workload, point in rows:
        entry = recorded.get(f"{workload}@{point}", {})
        events = entry.get("events")
        label = f"`{workload}@{point}`"
        if events is not None:
            label += f" ({events:,} ev)"
        cells_text = [
            _cell(by_key.get((workload, point, backend)))
            for backend in backends
        ]
        lines.append("| " + " | ".join([label, *cells_text]) + " |")
    lines.append("")
    return "\n".join(lines)
