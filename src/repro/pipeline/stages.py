"""Composable filter stages of the event pipeline.

Mirrors RoadRunner's event plumbing (paper Section 5): instrumented
code produces one event per operation, and a chain of *stages* may drop
events — re-entrant lock operations, thread-local data, excluded atomic
blocks — before they reach the analysis back-ends.

Every stage is a :class:`Stage`: it sees each surviving operation in
trace order and either forwards it (possibly transformed) or drops it
by returning ``None``.  The base class keeps per-stage ``seen`` and
``dropped`` counters, surfaced by :class:`~repro.pipeline.metrics.
PipelineMetrics` so a ``--stats`` run shows exactly where event volume
goes.  Subclasses implement :meth:`Stage._apply`; the counting wrapper
:meth:`Stage.process` is the entry point callers use.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.events.operations import Operation, OpKind


class Stage:
    """Base class: transform or drop events before analysis.

    Stages are stateful (filters track lock depths, ownership, block
    nesting) and therefore single-use: build a fresh chain per run.
    """

    #: Short name used in metrics tables.
    name: str = "stage"

    def __init__(self) -> None:
        self.seen = 0
        self.dropped = 0

    def _apply(self, op: Operation) -> Optional[Operation]:
        """Return the operation to forward, or ``None`` to drop it."""
        return op

    def process(self, op: Operation) -> Optional[Operation]:
        """Apply the stage to one operation, updating drop counters."""
        self.seen += 1
        out = self._apply(op)
        if out is None:
            self.dropped += 1
        return out


class ReentrantLockFilter(Stage):
    """Drop re-entrant (and hence redundant) lock acquires/releases.

    RoadRunner performs this filtering so back-ends see each lock held
    at most once (paper Section 5).  The interpreter already filters
    its own events; this stage makes hand-written traces safe too.
    """

    name = "reentrant-lock"

    def __init__(self) -> None:
        super().__init__()
        self._depth: dict[tuple[int, str], int] = {}

    def _apply(self, op: Operation) -> Optional[Operation]:
        if op.kind is OpKind.ACQUIRE:
            key = (op.tid, op.target)
            depth = self._depth.get(key, 0)
            self._depth[key] = depth + 1
            return op if depth == 0 else None
        if op.kind is OpKind.RELEASE:
            key = (op.tid, op.target)
            depth = self._depth.get(key, 1)
            self._depth[key] = depth - 1
            return op if depth == 1 else None
        return op


class ThreadLocalFilter(Stage):
    """Drop accesses to data observed by only one thread so far.

    Dramatically reduces event volume, at the cost of being *slightly
    unsound* (paper Section 5, citing Eraser): the accesses performed
    before a variable first becomes shared are lost to the analysis.
    Enabled for the performance experiments, disabled by default.
    """

    name = "thread-local"

    def __init__(self) -> None:
        super().__init__()
        self._owner: dict[str, int] = {}
        self._shared: set[str] = set()

    def _apply(self, op: Operation) -> Optional[Operation]:
        if not op.is_access:
            return op
        var = op.target
        if var in self._shared:
            return op
        owner = self._owner.get(var)
        if owner is None:
            self._owner[var] = op.tid
            return None
        if owner == op.tid:
            return None
        self._shared.add(var)
        return op


class AtomicSpecFilter(Stage):
    """Keep only the atomic blocks of a specification.

    The Velodrome tool "takes as input a compiled Java program and a
    specification of which methods in that program should be atomic"
    (paper Section 5).  This stage implements the specification side:
    blocks whose label is *not* in the spec have their begin/end
    markers stripped, so only the specified methods are checked for
    atomicity (their operations still flow to the analyses, as data
    other transactions may conflict with).
    """

    name = "atomic-spec"

    def __init__(self, atomic_labels: Iterable[str]):
        super().__init__()
        self.atomic_labels = frozenset(atomic_labels)
        self._stacks: dict[int, list[bool]] = {}

    def _apply(self, op: Operation) -> Optional[Operation]:
        if op.kind is OpKind.BEGIN:
            keep = op.label in self.atomic_labels
            self._stacks.setdefault(op.tid, []).append(keep)
            return op if keep else None
        if op.kind is OpKind.END:
            stack = self._stacks.get(op.tid)
            if not stack:
                return op
            return op if stack.pop() else None
        return op


class UninstrumentedLockFilter(Stage):
    """Strip acquire/release events for selected locks.

    Models synchronization performed inside uninstrumented libraries
    (paper Sections 5-6): the lock still serializes the interpreter's
    threads, but no analysis sees it.  Velodrome stays precise — a
    subsequence of a serializable trace is serializable — while
    LockSet-based tools see the protected accesses as racy.
    """

    name = "uninstrumented-lock"

    def __init__(self, locks: Iterable[str]):
        super().__init__()
        self.locks = frozenset(locks)

    def _apply(self, op: Operation) -> Optional[Operation]:
        if op.is_lock_op and op.target in self.locks:
            return None
        return op


class BlockFilter(Stage):
    """Strip the begin/end events of selected atomic blocks.

    Used to reproduce the paper's Table 1 methodology: first identify
    the non-atomic methods, then re-run performance experiments
    checking only the remaining methods, by erasing the excluded
    blocks' boundaries (their operations then run non-transactionally
    unless nested inside a kept block).
    """

    name = "block-exclude"

    def __init__(self, exclude_labels: Iterable[str]):
        super().__init__()
        self.exclude_labels = frozenset(exclude_labels)
        self._stacks: dict[int, list[bool]] = {}

    def _apply(self, op: Operation) -> Optional[Operation]:
        if op.kind is OpKind.BEGIN:
            keep = op.label not in self.exclude_labels
            self._stacks.setdefault(op.tid, []).append(keep)
            return op if keep else None
        if op.kind is OpKind.END:
            stack = self._stacks.get(op.tid)
            if not stack:
                return op
            keep = stack.pop()
            return op if keep else None
        return op


#: Backward-compatible name: filters predate the Stage terminology.
EventFilter = Stage
