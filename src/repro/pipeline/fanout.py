"""Backend fan-out: one event stream feeding N analyses.

The dispatcher at the end of the pipeline.  Each surviving event is
handed to every attached :class:`~repro.core.backend.AnalysisBackend`
in order, so a single pass over the trace (live run or recording)
drives all analyses at once — the paper Section 5 architecture, where
e.g. Velodrome and the Atomizer observe the same instrumented run.

With ``timed=True`` the dispatcher accumulates per-backend wall time
(its ``process`` and ``finish`` calls), which the harnesses use to
attribute the cost of a shared run to individual analyses.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.backend import AnalysisBackend
from repro.events.operations import Operation
from repro.pipeline.metrics import BackendMetrics


class FanOut:
    """Dispatch each event to every backend, optionally timing each."""

    def __init__(
        self, backends: Sequence[AnalysisBackend], timed: bool = False
    ):
        self.backends = list(backends)
        self.timed = timed
        self.times = [0.0] * len(self.backends)

    def process(self, op: Operation) -> None:
        """Feed one operation to every backend."""
        if self.timed:
            clock = time.perf_counter
            for index, backend in enumerate(self.backends):
                started = clock()
                backend.process(op)
                self.times[index] += clock() - started
        else:
            for backend in self.backends:
                backend.process(op)

    def finish(self) -> None:
        """Signal end of stream to every backend."""
        if self.timed:
            clock = time.perf_counter
            for index, backend in enumerate(self.backends):
                started = clock()
                backend.finish()
                self.times[index] += clock() - started
        else:
            for backend in self.backends:
                backend.finish()

    def backend_metrics(self) -> tuple[BackendMetrics, ...]:
        """Per-backend snapshot (events, accumulated time, warnings)."""
        return tuple(
            BackendMetrics(
                name=backend.name,
                events=backend.events_processed,
                time=elapsed,
                warning_count=backend.warning_count,
            )
            for backend, elapsed in zip(self.backends, self.times)
        )
