"""Backend fan-out: one event stream feeding N analyses.

The dispatcher at the end of the pipeline.  Each surviving event is
handed to every attached :class:`~repro.core.backend.AnalysisBackend`
in order, so a single pass over the trace (live run or recording)
drives all analyses at once — the paper Section 5 architecture, where
e.g. Velodrome and the Atomizer observe the same instrumented run.

With ``timed=True`` the dispatcher accumulates per-backend wall time
(its ``process`` and ``finish`` calls), which the harnesses use to
attribute the cost of a shared run to individual analyses.

Hot-path notes: the timed/untimed decision is made ONCE, at
construction — ``process`` and ``finish`` are bound to the matching
implementation, so the per-event path never re-tests ``self.timed``
and never re-binds ``time.perf_counter``.  The untimed path pre-binds
the backends' ``process`` methods (a single-backend fan-out forwards
straight to it), skipping both the timing branch and the enumerate
loop entirely.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.backend import AnalysisBackend
from repro.events.operations import Operation
from repro.pipeline.metrics import BackendMetrics


class FanOut:
    """Dispatch each event to every backend, optionally timing each.

    ``process`` and ``finish`` are chosen at construction: timed mode
    accumulates per-backend wall clock into :attr:`times`; untimed mode
    dispatches over a pre-bound list of backend methods with no timing
    overhead at all.
    """

    def __init__(
        self, backends: Sequence[AnalysisBackend], timed: bool = False
    ):
        self.backends = list(backends)
        self.timed = timed
        self.times = [0.0] * len(self.backends)
        #: Per-backend events absorbed via block summaries.
        self.ff_events = [0] * len(self.backends)
        #: Per-backend events absorbed via memoized region summaries.
        self.memo_events = [0] * len(self.backends)
        self._clock = time.perf_counter  # hoisted out of the event loop
        if timed:
            self.process = self._process_timed
            self.finish = self._finish_timed
        elif len(self.backends) == 1:
            # The common `repro check` shape: forward straight to the
            # single backend, no loop, no wrapper frame.
            self.process = self.backends[0].process
            self.finish = self.backends[0].finish
        else:
            self._processors = [backend.process for backend in self.backends]
            self.process = self._process_untimed
            self.finish = self._finish_untimed

    # The class-level definitions keep the protocol documented (and the
    # instance attributes above shadow them with the bound choice).

    def process(self, op: Operation) -> None:  # pragma: no cover - shadowed
        """Feed one operation to every backend."""
        raise AssertionError("process is bound in __init__")

    def finish(self) -> None:  # pragma: no cover - shadowed
        """Signal end of stream to every backend."""
        raise AssertionError("finish is bound in __init__")

    # ------------------------------------------------------------ untimed
    def _process_untimed(self, op: Operation) -> None:
        for process in self._processors:
            process(op)

    def _finish_untimed(self) -> None:
        for backend in self.backends:
            backend.finish()

    # -------------------------------------------------------------- timed
    def _process_timed(self, op: Operation) -> None:
        clock = self._clock
        times = self.times
        for index, backend in enumerate(self.backends):
            started = clock()
            backend.process(op)
            times[index] += clock() - started

    def _finish_timed(self) -> None:
        clock = self._clock
        times = self.times
        for index, backend in enumerate(self.backends):
            started = clock()
            backend.finish()
            times[index] += clock() - started

    # -------------------------------------------------------------- blocks
    def process_block(self, summary, decode) -> bool:
        """Offer one packed block to every backend; returns True iff it
        had to be decoded.

        Each backend is first offered the block's summary via
        :meth:`~repro.core.backend.AnalysisBackend.apply_block_summary`.
        The decode thunk runs at most once, lazily, the first time a
        backend declines; decliners then replay the operations through
        their ordinary ``process``.  In timed mode the summary offer
        and the replay are attributed to the backend, the shared
        decode to none (it is store cost, not analysis cost).

        Backends see the block in backend order, not interleaved — an
        accepter is fully fast-forwarded before the next backend runs.
        Backends are independent (that is the point of the fan-out),
        so the reordering is unobservable.
        """
        ops = None
        clock = self._clock if self.timed else None
        for index, backend in enumerate(self.backends):
            if clock is not None:
                started = clock()
                accepted = backend.apply_block_summary(summary)
                self.times[index] += clock() - started
            else:
                accepted = backend.apply_block_summary(summary)
            if accepted:
                self.ff_events[index] += summary.op_count
                continue
            if ops is None:
                ops = decode()
            process = backend.process
            if clock is not None:
                started = clock()
                for op in ops:
                    process(op)
                self.times[index] += clock() - started
            else:
                for op in ops:
                    process(op)
        return ops is not None

    # ------------------------------------------------------------- regions
    def process_region(self, ops, summary) -> None:
        """Offer one memoized region to every backend.

        ``ops`` is the region's buffered operation list (already
        decoded — the assembler held it while waiting for the region
        to close) and ``summary`` its cached
        :class:`~repro.core.memo.RegionSummary`.  Each backend is
        offered the summary via
        :meth:`~repro.core.backend.AnalysisBackend.apply_region_summary`;
        decliners replay the buffered operations through their
        ordinary ``process``.  In timed mode both the offer and any
        replay are attributed to the backend.
        """
        tid = ops[0].tid
        clock = self._clock if self.timed else None
        for index, backend in enumerate(self.backends):
            started = clock() if clock is not None else 0.0
            if backend.apply_region_summary(summary, tid):
                self.memo_events[index] += summary.op_count
            else:
                process = backend.process
                for op in ops:
                    process(op)
            if clock is not None:
                self.times[index] += clock() - started

    # ------------------------------------------------------------- metrics
    def backend_metrics(self) -> tuple[BackendMetrics, ...]:
        """Per-backend snapshot (events, accumulated time, warnings)."""
        return tuple(
            BackendMetrics(
                name=backend.name,
                events=backend.events_processed,
                time=elapsed,
                warning_count=backend.warning_count,
                events_fast_forwarded=fast,
                events_memoized=memoized,
            )
            for backend, elapsed, fast, memoized in zip(
                self.backends, self.times, self.ff_events, self.memo_events
            )
        )
