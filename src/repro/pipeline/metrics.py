"""Observability for the event pipeline.

:class:`PipelineMetrics` is an immutable snapshot of one pipeline run:
how many events entered, what kinds they were, where the filter stages
dropped them, and how much wall time each analysis back-end consumed.
Every entry point (``repro check``, ``repro run``, the table1/table2/
injection harnesses) exposes these numbers behind a ``--stats`` flag.

Snapshots from many runs (e.g. the five seeded schedules of a Table 2
row) can be combined with :meth:`PipelineMetrics.aggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.events.operations import OpKind


@dataclass(frozen=True)
class StageMetrics:
    """Per-stage throughput: events seen and events dropped."""

    name: str
    seen: int
    dropped: int

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.seen if self.seen else 0.0


@dataclass(frozen=True)
class BackendMetrics:
    """Per-backend cost: events processed, time spent, warnings raised.

    ``time`` covers this backend's ``process``/``finish`` calls only
    (measured by the fan-out dispatcher); it is 0.0 when the pipeline
    ran without timing enabled.  ``events_fast_forwarded`` counts the
    events this backend absorbed via block summaries
    (:meth:`~repro.core.backend.AnalysisBackend.apply_block_summary`)
    and ``events_memoized`` those absorbed via memoized region
    summaries (:meth:`~repro.core.backend.AnalysisBackend.
    apply_region_summary`) instead of op-by-op replay; both are
    included in ``events``.
    """

    name: str
    events: int
    time: float
    warning_count: int
    events_fast_forwarded: int = 0
    events_memoized: int = 0


@dataclass(frozen=True)
class PipelineMetrics:
    """Snapshot of one (or several aggregated) pipeline runs."""

    events_in: int
    events_out: int
    by_kind: dict[str, int] = field(default_factory=dict)
    stages: tuple[StageMetrics, ...] = ()
    backends: tuple[BackendMetrics, ...] = ()
    elapsed: float = 0.0
    #: Packed blocks offered to the pipeline (0 for op-wise sources).
    blocks_in: int = 0
    #: Blocks that at least one backend required a full decode for.
    blocks_decoded: int = 0
    #: Completed regions whose shape was found in the memo table.
    memo_hits: int = 0
    #: Completed regions summarized (and certified) for the first time.
    memo_misses: int = 0
    #: Memo entries dropped by the LRU bound.
    memo_evictions: int = 0

    @property
    def events_dropped(self) -> int:
        return self.events_in - self.events_out

    @property
    def blocks_fast_forwarded(self) -> int:
        """Blocks every backend absorbed from summaries alone."""
        return self.blocks_in - self.blocks_decoded

    @property
    def events_per_second(self) -> float:
        """End-to-end throughput (input events over total wall time)."""
        return self.events_in / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def backend_time(self) -> float:
        """Total wall time spent inside analysis back-ends."""
        return sum(backend.time for backend in self.backends)

    def backend(self, name: str) -> BackendMetrics:
        """The metrics of one backend, looked up by its report name."""
        for backend in self.backends:
            if backend.name == name:
                return backend
        raise KeyError(name)

    @classmethod
    def aggregate(cls, snapshots: Iterable["PipelineMetrics"]) -> "PipelineMetrics":
        """Sum many snapshots (e.g. one per seed) into one.

        Stages and backends are matched positionally by name; snapshots
        with differing stage/backend line-ups simply union the names.
        """
        events_in = events_out = 0
        blocks_in = blocks_decoded = 0
        memo_hits = memo_misses = memo_evictions = 0
        elapsed = 0.0
        by_kind: dict[str, int] = {}
        stage_seen: dict[str, int] = {}
        stage_dropped: dict[str, int] = {}
        stage_order: list[str] = []
        backend_events: dict[str, int] = {}
        backend_time: dict[str, float] = {}
        backend_warnings: dict[str, int] = {}
        backend_ff: dict[str, int] = {}
        backend_memo: dict[str, int] = {}
        backend_order: list[str] = []
        for snap in snapshots:
            events_in += snap.events_in
            events_out += snap.events_out
            blocks_in += snap.blocks_in
            blocks_decoded += snap.blocks_decoded
            memo_hits += snap.memo_hits
            memo_misses += snap.memo_misses
            memo_evictions += snap.memo_evictions
            elapsed += snap.elapsed
            for kind, count in snap.by_kind.items():
                by_kind[kind] = by_kind.get(kind, 0) + count
            for stage in snap.stages:
                if stage.name not in stage_seen:
                    stage_order.append(stage.name)
                stage_seen[stage.name] = stage_seen.get(stage.name, 0) + stage.seen
                stage_dropped[stage.name] = (
                    stage_dropped.get(stage.name, 0) + stage.dropped
                )
            for backend in snap.backends:
                if backend.name not in backend_events:
                    backend_order.append(backend.name)
                backend_events[backend.name] = (
                    backend_events.get(backend.name, 0) + backend.events
                )
                backend_time[backend.name] = (
                    backend_time.get(backend.name, 0.0) + backend.time
                )
                backend_warnings[backend.name] = (
                    backend_warnings.get(backend.name, 0) + backend.warning_count
                )
                backend_ff[backend.name] = (
                    backend_ff.get(backend.name, 0)
                    + backend.events_fast_forwarded
                )
                backend_memo[backend.name] = (
                    backend_memo.get(backend.name, 0)
                    + backend.events_memoized
                )
        return cls(
            events_in=events_in,
            events_out=events_out,
            by_kind=by_kind,
            stages=tuple(
                StageMetrics(name, stage_seen[name], stage_dropped[name])
                for name in stage_order
            ),
            backends=tuple(
                BackendMetrics(
                    name,
                    backend_events[name],
                    backend_time[name],
                    backend_warnings[name],
                    backend_ff[name],
                    backend_memo[name],
                )
                for name in backend_order
            ),
            elapsed=elapsed,
            blocks_in=blocks_in,
            blocks_decoded=blocks_decoded,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            memo_evictions=memo_evictions,
        )

    def render(self) -> str:
        """The ``--stats`` block: counters, drops, and backend costs."""
        lines = ["pipeline stats:"]
        kinds = " ".join(
            f"{kind}={self.by_kind[kind]}"
            for kind in (k.value for k in OpKind)
            if kind in self.by_kind
        )
        lines.append(
            f"  events: in={self.events_in} out={self.events_out} "
            f"dropped={self.events_dropped}"
            + (f" ({kinds})" if kinds else "")
        )
        if self.elapsed > 0:
            lines.append(
                f"  elapsed: {self.elapsed:.3f}s "
                f"({self.events_per_second:,.0f} events/s)"
            )
        if self.blocks_in:
            lines.append(
                f"  blocks: in={self.blocks_in} "
                f"decoded={self.blocks_decoded} "
                f"fast-forwarded={self.blocks_fast_forwarded}"
            )
        if self.memo_hits or self.memo_misses or self.memo_evictions:
            lines.append(
                f"  memo: hits={self.memo_hits} "
                f"misses={self.memo_misses} "
                f"evictions={self.memo_evictions}"
            )
        for stage in self.stages:
            lines.append(
                f"  stage {stage.name}: seen={stage.seen} "
                f"dropped={stage.dropped} ({stage.drop_rate:.1%})"
            )
        for backend in self.backends:
            timing = f" time={backend.time:.3f}s" if backend.time else ""
            fast = (
                f" fast-forwarded={backend.events_fast_forwarded}"
                if backend.events_fast_forwarded else ""
            )
            memoized = (
                f" memoized={backend.events_memoized}"
                if backend.events_memoized else ""
            )
            lines.append(
                f"  backend {backend.name}: events={backend.events}"
                f"{timing}{fast}{memoized} warnings={backend.warning_count}"
            )
        return "\n".join(lines)


def snapshot_kind_counts(counts: dict[OpKind, int]) -> dict[str, int]:
    """Convert an OpKind-keyed counter to the string keys metrics use."""
    return {kind.value: count for kind, count in counts.items() if count}
