"""Event sources: where a pipeline's operations come from.

Velodrome is an *online* analysis: it consumes an event stream, not a
stored trace.  The stream can come from a live interpreted execution
(:class:`LiveSource`) or from a recording on disk / in memory
(:class:`TraceSource`); the pipeline downstream is identical.  Any
object with a ``run(sink)`` method returning a :class:`SourceResult`
satisfies the :class:`EventSource` protocol.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Protocol, runtime_checkable

from repro.events.operations import Operation
from repro.events.trace import Trace

#: An event consumer: called once per operation, in stream order.
EventSink = Callable[[Operation], None]


class SourceResult:
    """What a source reports after driving a sink to exhaustion.

    Attributes:
        events: number of operations pushed into the sink.
        run: the interpreter's :class:`~repro.runtime.interpreter.
            RunResult` for live executions, ``None`` for recordings.
        trace: the underlying trace when one exists (always for
            :class:`TraceSource`; for :class:`LiveSource` only when
            recording was requested).
    """

    def __init__(self, events: int, run=None, trace: Optional[Trace] = None):
        self.events = events
        self.run = run
        self.trace = trace


@runtime_checkable
class EventSource(Protocol):
    """Anything that can push an operation stream into a sink."""

    def run(self, sink: EventSink) -> SourceResult:
        """Drive every event through ``sink``, in order."""
        ...


class TraceSource:
    """Replay a recorded trace (or any operation iterable) into a sink."""

    def __init__(self, ops: Iterable[Operation]):
        self.ops = ops

    @classmethod
    def from_path(cls, path) -> "TraceSource":
        """A source over the recording at ``path``, any format.

        The format — packed binary, JSONL, or DSL — is sniffed from
        the file's leading bytes (:mod:`repro.store.sniff`), never
        from its extension.
        """
        # Deferred: repro.store reaches this module through
        # repro.resilience.quarantine.
        from repro.events.serialize import load_trace

        return cls(load_trace(path))

    def run(self, sink: EventSink) -> SourceResult:
        # Sinks may expose ``process_many(ops) -> count`` (the region
        # assembler does) to take the whole iterable in one call,
        # saving a Python call per operation.
        batch = getattr(sink, "process_many", None)
        if batch is not None:
            count = batch(self.ops)
        else:
            count = 0
            for op in self.ops:
                sink(op)
                count += 1
        trace = self.ops if isinstance(self.ops, Trace) else None
        return SourceResult(events=count, trace=trace)


class PackedTraceSource:
    """Stream a packed (VTRC) recording block by block.

    Satisfies :class:`EventSource` through :meth:`run`, but also
    offers :meth:`run_blocks`, which :meth:`Pipeline.run
    <repro.pipeline.core.Pipeline.run>` prefers: the sink receives
    ``(summary, decode)`` pairs — the block's stored
    :class:`~repro.store.summary.BlockSummary` (``None`` for v1 files
    and partial resume blocks) and a thunk decoding the block — so
    backends can fast-forward summarized blocks without ever paying
    for the decode.

    Args:
        path: the packed trace file (or a seekable binary stream; a
            stream disables parallel prefetch).
        start_seq: first global position to deliver (resume support).
            The containing block is delivered as a summary-less
            partial block; later blocks flow normally.
        jobs: with more than one, block decodes are prefetched by
            worker processes (disjoint block ranges, merged in block
            order), so the operation stream — and therefore every
            backend state — is byte-identical to the serial path.
    """

    def __init__(self, path, start_seq: int = 0, jobs: int = 1):
        self.path = path
        self.start_seq = start_seq
        self.jobs = jobs

    def run(self, sink: EventSink) -> SourceResult:
        # Deferred: repro.store reaches this module through
        # repro.resilience.quarantine.
        from repro.store.reader import PackedTraceReader

        count = 0
        with PackedTraceReader(self.path) as reader:
            for op in reader.seek(self.start_seq):
                sink(op)
                count += 1
        return SourceResult(events=count)

    def run_blocks(self, block_sink) -> SourceResult:
        """Drive ``block_sink(summary, decode)`` over every block."""
        from repro.store.reader import PackedTraceReader

        count = 0
        with PackedTraceReader(self.path) as reader:
            start_block = 0
            skip = 0
            if self.start_seq:
                if self.start_seq >= reader.total_ops:
                    return SourceResult(events=0)
                first = reader.block_for_seq(self.start_seq)
                start_block = first.number
                skip = self.start_seq - first.first_seq
            prefetched = self._prefetch(reader, start_block)
            for info in reader.blocks[start_block:]:
                if prefetched is not None:
                    cached = prefetched[info.number - start_block]
                    decode = (lambda ops=cached: ops)
                else:
                    decode = (
                        lambda r=reader, b=info: r.decode_block(b)
                    )
                if skip and info.number == start_block:
                    # A partial block's stored summary describes
                    # operations the sink must not see; deliver the
                    # tail summary-less.
                    tail = decode()[skip:]
                    block_sink(None, lambda ops=tail: ops)
                    count += len(tail)
                else:
                    block_sink(reader.block_summary(info.number), decode)
                    count += info.op_count
        return SourceResult(events=count)

    def _prefetch(self, reader, start_block: int):
        """Decode blocks ``start_block..`` in worker processes.

        Returns one operation list per block, or ``None`` when the
        file is too small to shard, ``jobs`` is 1, or the source wraps
        a stream (workers need a path to reopen).  Failed shards are
        re-decoded in-process, mirroring
        :func:`repro.store.parallel.load_packed_parallel`.
        """
        import os
        from pathlib import Path as _Path

        if not isinstance(self.path, (str, os.PathLike, _Path)):
            return None
        n_blocks = len(reader.blocks) - start_block
        from repro.store.parallel import (
            MIN_BLOCKS_PER_SHARD,
            block_ranges,
        )

        if self.jobs <= 1 or n_blocks < MIN_BLOCKS_PER_SHARD * 2:
            return None
        from repro.parallel.executor import run_shards
        from repro.parallel.tasks import BlockListTask, run_block_lists

        tasks = [
            BlockListTask(
                path=str(self.path),
                first_block=start_block + lo,
                end_block=start_block + hi,
            )
            for lo, hi in block_ranges(n_blocks, self.jobs)
        ]
        blocks: list[list[Operation]] = []
        for shard in run_shards(run_block_lists, tasks, jobs=self.jobs):
            if shard.ok:
                blocks.extend(shard.value)
            else:
                blocks.extend(run_block_lists(tasks[shard.index]))
        return blocks


class LiveSource:
    """Execute a program under the interpreter, streaming its events.

    Keyword arguments are forwarded to
    :class:`~repro.runtime.interpreter.Interpreter` (scheduler,
    record_trace, max_steps, array_granularity).
    """

    def __init__(self, program, **interpreter_options):
        self.program = program
        self.interpreter_options = interpreter_options

    def run(self, sink: EventSink) -> SourceResult:
        # Imported here: repro.runtime imports repro.pipeline for its
        # compatibility shims, so the reverse import must be deferred.
        from repro.runtime.interpreter import Interpreter

        interpreter = Interpreter(
            self.program, sink=sink, **self.interpreter_options
        )
        result = interpreter.run()
        return SourceResult(
            events=result.events, run=result, trace=result.trace
        )
