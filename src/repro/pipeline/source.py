"""Event sources: where a pipeline's operations come from.

Velodrome is an *online* analysis: it consumes an event stream, not a
stored trace.  The stream can come from a live interpreted execution
(:class:`LiveSource`) or from a recording on disk / in memory
(:class:`TraceSource`); the pipeline downstream is identical.  Any
object with a ``run(sink)`` method returning a :class:`SourceResult`
satisfies the :class:`EventSource` protocol.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Protocol, runtime_checkable

from repro.events.operations import Operation
from repro.events.trace import Trace

#: An event consumer: called once per operation, in stream order.
EventSink = Callable[[Operation], None]


class SourceResult:
    """What a source reports after driving a sink to exhaustion.

    Attributes:
        events: number of operations pushed into the sink.
        run: the interpreter's :class:`~repro.runtime.interpreter.
            RunResult` for live executions, ``None`` for recordings.
        trace: the underlying trace when one exists (always for
            :class:`TraceSource`; for :class:`LiveSource` only when
            recording was requested).
    """

    def __init__(self, events: int, run=None, trace: Optional[Trace] = None):
        self.events = events
        self.run = run
        self.trace = trace


@runtime_checkable
class EventSource(Protocol):
    """Anything that can push an operation stream into a sink."""

    def run(self, sink: EventSink) -> SourceResult:
        """Drive every event through ``sink``, in order."""
        ...


class TraceSource:
    """Replay a recorded trace (or any operation iterable) into a sink."""

    def __init__(self, ops: Iterable[Operation]):
        self.ops = ops

    @classmethod
    def from_path(cls, path) -> "TraceSource":
        """A source over the recording at ``path``, any format.

        The format — packed binary, JSONL, or DSL — is sniffed from
        the file's leading bytes (:mod:`repro.store.sniff`), never
        from its extension.
        """
        # Deferred: repro.store reaches this module through
        # repro.resilience.quarantine.
        from repro.events.serialize import load_trace

        return cls(load_trace(path))

    def run(self, sink: EventSink) -> SourceResult:
        count = 0
        for op in self.ops:
            sink(op)
            count += 1
        trace = self.ops if isinstance(self.ops, Trace) else None
        return SourceResult(events=count, trace=trace)


class LiveSource:
    """Execute a program under the interpreter, streaming its events.

    Keyword arguments are forwarded to
    :class:`~repro.runtime.interpreter.Interpreter` (scheduler,
    record_trace, max_steps, array_granularity).
    """

    def __init__(self, program, **interpreter_options):
        self.program = program
        self.interpreter_options = interpreter_options

    def run(self, sink: EventSink) -> SourceResult:
        # Imported here: repro.runtime imports repro.pipeline for its
        # compatibility shims, so the reverse import must be deferred.
        from repro.runtime.interpreter import Interpreter

        interpreter = Interpreter(
            self.program, sink=sink, **self.interpreter_options
        )
        result = interpreter.run()
        return SourceResult(
            events=result.events, run=result, trace=result.trace
        )
