"""The pipeline: source → filter stages → backend fan-out, with metrics.

One :class:`Pipeline` wires a chain of :class:`~repro.pipeline.stages.
Stage` filters into a :class:`~repro.pipeline.fanout.FanOut` over N
analysis back-ends.  It is itself an event sink (callable), so it can
be handed to the interpreter directly, and it can pull from any
:class:`~repro.pipeline.source.EventSource` via :meth:`Pipeline.run` —
which is the single-pass path every entry point uses: each workload or
trace is traversed once, no matter how many analyses are attached.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.backend import AnalysisBackend
from repro.core.memo import RegionAssembler, RegionMemo
from repro.events.operations import Operation, OpKind
from repro.pipeline.fanout import FanOut
from repro.pipeline.metrics import (
    PipelineMetrics,
    StageMetrics,
    snapshot_kind_counts,
)
from repro.pipeline.source import EventSource, SourceResult
from repro.pipeline.stages import Stage

#: Block-summary histogram slots, in on-disk kind-code order.  Kept in
#: lockstep with ``repro.store.summary.HISTOGRAM_KINDS`` (pinned by
#: tests) but defined locally: the store package reaches this module
#: through the resilience layer, so importing back would cycle.
_HISTOGRAM_KINDS = (
    OpKind.READ, OpKind.WRITE, OpKind.ACQUIRE,
    OpKind.RELEASE, OpKind.BEGIN, OpKind.END,
)


class Pipeline:
    """Filter stages plus backend fan-out; callable as an event sink.

    Args:
        backends: the analyses to feed (in order).
        stages: filter chain applied before fan-out, in order.
        stats: collect per-kind counters and per-backend wall time.
            Off by default: the stat hooks cost two clock reads per
            backend per event, which is measurable on hot paths.
        memo: a :class:`~repro.core.memo.RegionMemo` enabling region
            memoization (``--memoize``): a
            :class:`~repro.core.memo.RegionAssembler` buffers each
            transaction-bounded region behind the stage chain and
            offers repeated shapes to the backends as summaries.
            ``None`` (the default) keeps the plain per-event sink.
    """

    def __init__(
        self,
        backends: Sequence[AnalysisBackend],
        stages: Sequence[Stage] = (),
        stats: bool = False,
        memo: Optional[RegionMemo] = None,
    ):
        self.stages = list(stages)
        self.fanout = FanOut(backends, timed=stats)
        # The fan-out's process hook is fixed at its construction, so
        # it can be bound once here instead of resolved per event.
        self._sink = self.fanout.process
        self.memo = memo
        self._assembler: Optional[RegionAssembler] = None
        if memo is not None:
            self._assembler = RegionAssembler(
                self.fanout.process, self.fanout.process_region, memo
            )
            self._sink = self._assembler.process
        self.stats = stats
        self.events_in = 0
        self.events_out = 0
        self.blocks_in = 0
        self.blocks_decoded = 0
        self.elapsed = 0.0
        self._kind_counts: dict[OpKind, int] = {}

    @property
    def backends(self) -> list[AnalysisBackend]:
        return self.fanout.backends

    def process(self, op: Operation) -> None:
        """Run one event through the stages, then every backend."""
        self.events_in += 1
        if self.stats:
            self._kind_counts[op.kind] = self._kind_counts.get(op.kind, 0) + 1
        if self.stages:
            current: Optional[Operation] = op
            for stage in self.stages:
                current = stage.process(current)
                if current is None:
                    return
            op = current
        self.events_out += 1
        self._sink(op)

    __call__ = process

    def process_block(self, summary, decode) -> None:
        """Run one packed block through the fan-out.

        ``summary`` is the block's
        :class:`~repro.store.summary.BlockSummary` (or ``None`` when
        the source has none — v1 files, partial resume blocks), and
        ``decode`` a thunk producing the block's operations.  Blocks
        bypass the stage chain, so :meth:`run` only routes to this
        method when no stages are attached.
        """
        self.blocks_in += 1
        if summary is None:
            self.blocks_decoded += 1
            process = self.process
            for op in decode():
                process(op)
            return
        assembler = self._assembler
        if assembler is not None and (
            assembler.buffering
            or summary.histogram[4]  # BEGIN ops in the block
            or summary.histogram[5]  # END ops in the block
        ):
            # Regions may start, continue, or close inside this block —
            # and while the assembler holds buffered operations the
            # backends lag the stream, so a summary fold must not be
            # offered.  Decode and route through the assembler.
            self.blocks_decoded += 1
            count = summary.op_count
            self.events_in += count
            self.events_out += count
            if self.stats:
                counts = self._kind_counts
                for kind, n in zip(_HISTOGRAM_KINDS, summary.histogram):
                    if n:
                        counts[kind] = counts.get(kind, 0) + n
            sink = self._sink
            for op in decode():
                sink(op)
            return
        count = summary.op_count
        self.events_in += count
        self.events_out += count
        if self.stats:
            counts = self._kind_counts
            for kind, n in zip(_HISTOGRAM_KINDS, summary.histogram):
                if n:
                    counts[kind] = counts.get(kind, 0) + n
        if self.fanout.process_block(summary, decode):
            self.blocks_decoded += 1

    def finish(self) -> None:
        """Signal end of stream to every backend.

        With memoization on, the assembler's buffer (a region still
        open at end of stream) is drained first so no operation is
        lost.
        """
        if self._assembler is not None:
            self._assembler.flush()
        self.fanout.finish()

    def run(self, source: EventSource) -> SourceResult:
        """Drain ``source`` through this pipeline, then finish.

        Sources that can serve whole packed blocks (``run_blocks``,
        e.g. :class:`~repro.pipeline.source.PackedTraceSource`) are
        drained block-wise so backends may fast-forward; a stage chain
        forces the op-wise path (stages see individual operations).

        Records total wall time in :attr:`elapsed` (and therefore in
        the metrics snapshot), regardless of the ``stats`` setting.
        """
        started = time.perf_counter()
        run_blocks = getattr(source, "run_blocks", None)
        if run_blocks is not None and not self.stages:
            result = run_blocks(self.process_block)
        elif not self.stages and not self.stats:
            # Nothing filters and nothing needs per-kind counts, so the
            # per-event :meth:`process` wrapper would only relay to the
            # sink; drive the sink directly and settle the event
            # counters in bulk from the source's own tally.  The
            # assembler is handed over as an object (not a bound
            # method) so sources that hold a full operation list can
            # find its batched ``process_many`` entry point.
            assembler = self._assembler
            result = source.run(
                self._sink if assembler is None else assembler
            )
            self.events_in += result.events
            self.events_out += result.events
        else:
            result = source.run(self.process)
        self.finish()
        self.elapsed += time.perf_counter() - started
        return result

    def warnings(self) -> list:
        """All warnings from all backends, in backend order."""
        collected = []
        for backend in self.backends:
            collected.extend(backend.warnings)
        return collected

    @property
    def warning_count(self) -> int:
        """Total warnings across backends, without copying any lists."""
        return sum(backend.warning_count for backend in self.backends)

    def metrics(self, elapsed: Optional[float] = None) -> PipelineMetrics:
        """Snapshot the pipeline's counters.

        Args:
            elapsed: wall time to report; defaults to the time
                accumulated by :meth:`run`.
        """
        return PipelineMetrics(
            events_in=self.events_in,
            events_out=self.events_out,
            by_kind=snapshot_kind_counts(self._kind_counts),
            stages=tuple(
                StageMetrics(stage.name, stage.seen, stage.dropped)
                for stage in self.stages
            ),
            backends=self.fanout.backend_metrics(),
            elapsed=self.elapsed if elapsed is None else elapsed,
            blocks_in=self.blocks_in,
            blocks_decoded=self.blocks_decoded,
            memo_hits=self.memo.hits if self.memo is not None else 0,
            memo_misses=self.memo.misses if self.memo is not None else 0,
            memo_evictions=(
                self.memo.evictions if self.memo is not None else 0
            ),
        )
