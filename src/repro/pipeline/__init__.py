"""The composable event pipeline (paper Section 5 architecture).

Events flow ``source → stages → fan-out → backends``:

* an :class:`EventSource` produces the operation stream — a live
  interpreted execution (:class:`LiveSource`) or a recorded trace
  (:class:`TraceSource`);
* :class:`Stage` filters drop events before analysis (re-entrant lock
  elision, thread-local filtering, atomic-block exclusion);
* :class:`FanOut` feeds every surviving event to N analysis back-ends
  in a single pass over the stream;
* :class:`PipelineMetrics` reports per-kind event counts, per-stage
  drops, and per-backend cost — the ``--stats`` output.

See ``docs/pipeline.md`` for the architecture guide.
"""

from repro.pipeline.core import Pipeline
from repro.pipeline.fanout import FanOut
from repro.pipeline.metrics import (
    BackendMetrics,
    PipelineMetrics,
    StageMetrics,
)
from repro.pipeline.source import (
    EventSink,
    EventSource,
    LiveSource,
    SourceResult,
    TraceSource,
)
from repro.pipeline.stages import (
    AtomicSpecFilter,
    BlockFilter,
    EventFilter,
    ReentrantLockFilter,
    Stage,
    ThreadLocalFilter,
    UninstrumentedLockFilter,
)

__all__ = [
    "AtomicSpecFilter",
    "BackendMetrics",
    "BlockFilter",
    "EventFilter",
    "EventSink",
    "EventSource",
    "FanOut",
    "LiveSource",
    "Pipeline",
    "PipelineMetrics",
    "ReentrantLockFilter",
    "SourceResult",
    "Stage",
    "StageMetrics",
    "ThreadLocalFilter",
    "TraceSource",
    "UninstrumentedLockFilter",
]
