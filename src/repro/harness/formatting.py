"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    Columns are sized to their widest cell; numeric-looking cells are
    right-aligned, everything else left-aligned.
    """
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if _is_numeric(cell) and index > 0:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append("  ".join("-" * width for width in widths))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    return stripped.isdigit() and bool(stripped)


def ratio(measured: float, base: float) -> float:
    """A slowdown ratio guarded against a zero base."""
    if base <= 0:
        return float("nan")
    return measured / base
