"""Experiments E1 and E2: reproduce Table 1.

E1 — per-benchmark analysis overhead: run each workload uninstrumented
(the base time), then once per backend (Empty, Eraser, Atomizer,
Velodrome), reporting each backend's slowdown.  Following the paper's
methodology, the run excludes (via a block filter) the atomic blocks of
methods known to be non-atomic, mimicking a program that satisfies its
atomicity specification.

E2 — happens-before graph statistics: run the optimized Velodrome
analysis with the Figure 4 merge rules disabled (the naive [INS
OUTSIDE] allocation) and enabled, reporting nodes allocated and the
maximum simultaneously alive — the "Transactions Without/With Merge"
columns.

Run as a script::

    python -m repro.harness.table1 [--scale S] [--seed N]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.baselines.atomizer import Atomizer
from repro.baselines.empty import EmptyAnalysis
from repro.baselines.eraser import EraserLockSet
from repro.core.backend import AnalysisBackend
from repro.core.optimized import VelodromeOptimized
from repro.harness.formatting import ratio, render_table
from repro.runtime.instrument import BlockFilter
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tool import run_uninstrumented, run_with_backends
from repro.workloads.base import Workload, all_workloads

#: The Table 1 backend columns, in paper order.
BACKENDS: list[tuple[str, Callable[[], AnalysisBackend]]] = [
    ("empty", EmptyAnalysis),
    ("eraser", EraserLockSet),
    ("atomizer", Atomizer),
    (
        "velodrome",
        lambda: VelodromeOptimized(first_warning_per_label=True),
    ),
]


@dataclass
class Table1Row:
    """Measured Table 1 numbers for one benchmark."""

    name: str
    events: int
    base_time: float
    slowdowns: dict[str, float] = field(default_factory=dict)
    nodes_allocated_without_merge: int = 0
    max_alive_without_merge: int = 0
    nodes_allocated_with_merge: int = 0
    max_alive_with_merge: int = 0


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        headers = (
            ["Program", "Events", "Base(s)"]
            + [name.capitalize() for name, _factory in BACKENDS]
            + ["Alloc w/o merge", "Alive w/o", "Alloc w/ merge", "Alive w/"]
        )
        rows = []
        for row in self.rows:
            rows.append(
                [
                    row.name,
                    row.events,
                    f"{row.base_time:.3f}",
                ]
                + [f"{row.slowdowns[name]:.1f}" for name, _f in BACKENDS]
                + [
                    row.nodes_allocated_without_merge,
                    row.max_alive_without_merge,
                    row.nodes_allocated_with_merge,
                    row.max_alive_with_merge,
                ]
            )
        return render_table(
            headers, rows,
            title="Table 1: slowdowns and happens-before graph statistics",
        )

    def mean_slowdown(self, backend: str) -> float:
        values = [row.slowdowns[backend] for row in self.rows]
        return sum(values) / len(values) if values else 0.0


def _perf_filters(workload: Workload, scale: float):
    """The paper's configuration: skip checking known-non-atomic methods."""
    program = workload.program(scale)
    return BlockFilter(program.non_atomic_methods)


def measure_workload(
    workload: Workload,
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 1,
) -> Table1Row:
    """Measure base time, per-backend slowdowns, and node statistics."""
    # Base (uninstrumented) time: best of `repeats`.
    base_time = float("inf")
    events = 0
    for _ in range(repeats):
        run, elapsed = run_uninstrumented(
            workload.program(scale), scheduler=RandomScheduler(seed)
        )
        base_time = min(base_time, elapsed)
        events = run.events
    row = Table1Row(workload.name, events, base_time)
    for name, factory in BACKENDS:
        best = float("inf")
        for _ in range(repeats):
            program = workload.program(scale)
            tool_run = run_with_backends(
                program,
                [factory()],
                scheduler=RandomScheduler(seed),
                filters=[BlockFilter(program.non_atomic_methods)],
            )
            best = min(best, tool_run.elapsed)
        row.slowdowns[name] = ratio(best, base_time)
    # E2: node statistics, under the same configuration as the timing
    # runs (known-non-atomic methods excluded), matching the Table 1
    # transaction-count columns.
    for merge_unary, alloc_attr, alive_attr in (
        (False, "nodes_allocated_without_merge", "max_alive_without_merge"),
        (True, "nodes_allocated_with_merge", "max_alive_with_merge"),
    ):
        program = workload.program(scale)
        tool_run = run_with_backends(
            program,
            [
                VelodromeOptimized(
                    merge_unary=merge_unary, first_warning_per_label=True
                )
            ],
            scheduler=RandomScheduler(seed),
            filters=[BlockFilter(program.non_atomic_methods)],
        )
        stats = tool_run.graph_stats()
        setattr(row, alloc_attr, stats.allocated)
        setattr(row, alive_attr, stats.max_alive)
    return row


def run_table1(
    workloads: Optional[Sequence[Workload]] = None,
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 1,
) -> Table1Result:
    """Measure every benchmark; see the module docstring."""
    result = Table1Result()
    for workload in workloads if workloads is not None else all_workloads():
        result.rows.append(
            measure_workload(workload, scale=scale, seed=seed, repeats=repeats)
        )
    return result


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--workload", action="append", default=None)
    args = parser.parse_args(argv)
    selected = None
    if args.workload:
        from repro.workloads.base import get

        selected = [get(name) for name in args.workload]
    result = run_table1(
        selected, scale=args.scale, seed=args.seed, repeats=args.repeats
    )
    print(result.render())
    print(
        "Mean slowdowns: "
        + ", ".join(
            f"{name}={result.mean_slowdown(name):.2f}x"
            for name, _f in BACKENDS
        )
    )


if __name__ == "__main__":
    main()
