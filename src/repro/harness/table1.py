"""Experiments E1 and E2: reproduce Table 1.

E1 — per-benchmark analysis overhead: run each workload uninstrumented
(the base time), then ONCE under instrumentation with every backend
(Empty, Eraser, Atomizer, Velodrome) attached to the same fan-out
pipeline.  Each backend's slowdown is the shared run cost (interpreter
plus event plumbing) plus that backend's own per-event processing
time, over the base time — so one pass per workload replaces the old
run-per-backend replays.  Following the paper's methodology, the run
excludes (via a block filter) the atomic blocks of methods known to be
non-atomic, mimicking a program that satisfies its atomicity
specification.

E2 — happens-before graph statistics: the same fan-out run also
carries the optimized Velodrome analysis with the Figure 4 merge rules
disabled (the naive [INS OUTSIDE] allocation), reporting nodes
allocated and the maximum simultaneously alive for both configurations
— the "Transactions Without/With Merge" columns.

Run as a script::

    python -m repro.harness.table1 [--scale S] [--seed N] [--stats]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.baselines.atomizer import Atomizer
from repro.baselines.empty import EmptyAnalysis
from repro.baselines.eraser import EraserLockSet
from repro.core.backend import AnalysisBackend
from repro.core.optimized import VelodromeOptimized
from repro.harness.formatting import ratio, render_table
from repro.pipeline import BlockFilter, PipelineMetrics
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tool import run_uninstrumented, run_with_backends
from repro.workloads.base import Workload, paper_workloads

#: The Table 1 backend columns, in paper order.
BACKENDS: list[tuple[str, Callable[[], AnalysisBackend]]] = [
    ("empty", EmptyAnalysis),
    ("eraser", EraserLockSet),
    ("atomizer", Atomizer),
    (
        "velodrome",
        lambda: VelodromeOptimized(first_warning_per_label=True),
    ),
]


@dataclass
class Table1Row:
    """Measured Table 1 numbers for one benchmark."""

    name: str
    events: int
    base_time: float
    slowdowns: dict[str, float] = field(default_factory=dict)
    nodes_allocated_without_merge: int = 0
    max_alive_without_merge: int = 0
    nodes_allocated_with_merge: int = 0
    max_alive_with_merge: int = 0
    metrics: Optional[PipelineMetrics] = None


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        headers = (
            ["Program", "Events", "Base(s)"]
            + [name.capitalize() for name, _factory in BACKENDS]
            + ["Alloc w/o merge", "Alive w/o", "Alloc w/ merge", "Alive w/"]
        )
        rows = []
        for row in self.rows:
            rows.append(
                [
                    row.name,
                    row.events,
                    f"{row.base_time:.3f}",
                ]
                + [f"{row.slowdowns[name]:.1f}" for name, _f in BACKENDS]
                + [
                    row.nodes_allocated_without_merge,
                    row.max_alive_without_merge,
                    row.nodes_allocated_with_merge,
                    row.max_alive_with_merge,
                ]
            )
        return render_table(
            headers, rows,
            title="Table 1: slowdowns and happens-before graph statistics",
        )

    def mean_slowdown(self, backend: str) -> float:
        values = [row.slowdowns[backend] for row in self.rows]
        return sum(values) / len(values) if values else 0.0


def measure_workload(
    workload: Workload,
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 1,
) -> Table1Row:
    """Measure base time, per-backend slowdowns, and node statistics.

    The instrumented measurement is one fan-out run per repeat: all
    Table 1 backends plus the no-merge Velodrome of E2 observe the
    same event stream.  The scheduler is seed-deterministic and blind
    to the sink, so each backend sees exactly the stream it saw when
    it ran alone — warnings and node statistics are unchanged; only
    the wall-clock attribution differs (shared run cost plus the
    backend's own processing time).
    """
    # Base (uninstrumented) time: best of `repeats`.
    base_time = float("inf")
    events = 0
    for _ in range(repeats):
        run, elapsed = run_uninstrumented(
            workload.program(scale), scheduler=RandomScheduler(seed)
        )
        base_time = min(base_time, elapsed)
        events = run.events
    row = Table1Row(workload.name, events, base_time)
    best = {name: float("inf") for name, _factory in BACKENDS}
    snapshots: list[PipelineMetrics] = []
    velodrome = no_merge = None
    for _ in range(repeats):
        program = workload.program(scale)
        backends = [factory() for _name, factory in BACKENDS]
        velodrome = backends[-1]
        no_merge = VelodromeOptimized(
            merge_unary=False, first_warning_per_label=True
        )
        no_merge.name = "VELODROME-NOMERGE"
        tool_run = run_with_backends(
            program,
            backends + [no_merge],
            scheduler=RandomScheduler(seed),
            filters=[BlockFilter(program.non_atomic_methods)],
            stats=True,
        )
        metrics = tool_run.metrics
        snapshots.append(metrics)
        # Attribute the shared cost (interpreter + filter stages +
        # dispatch) to every backend, plus its own processing time:
        # what a solo run of that backend would have cost.
        shared = max(tool_run.elapsed - metrics.backend_time, 0.0)
        for (name, _factory), backend_metrics in zip(
            BACKENDS, metrics.backends
        ):
            best[name] = min(best[name], shared + backend_metrics.time)
    for name, _factory in BACKENDS:
        row.slowdowns[name] = ratio(best[name], base_time)
    # E2: node statistics from the same fan-out run (known-non-atomic
    # methods excluded), matching the Table 1 transaction-count columns.
    with_merge = velodrome.graph.stats
    without_merge = no_merge.graph.stats
    row.nodes_allocated_with_merge = with_merge.allocated
    row.max_alive_with_merge = with_merge.max_alive
    row.nodes_allocated_without_merge = without_merge.allocated
    row.max_alive_without_merge = without_merge.max_alive
    row.metrics = PipelineMetrics.aggregate(snapshots)
    return row


def run_table1(
    workloads: Optional[Sequence[Workload]] = None,
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 1,
    jobs: int = 1,
) -> Table1Result:
    """Measure every benchmark; see the module docstring.

    ``jobs`` > 1 measures workloads in parallel worker processes (one
    shard per benchmark) and merges rows in benchmark order, so the
    rendered table is identical to a serial run.  Every shard must
    succeed — a table with missing rows is not a Table 1 — so a dead
    worker raises :class:`~repro.parallel.executor.ShardError`.

    Caveat: parallel workers contend for CPU, so the measured
    *slowdown ratios* stay meaningful (base and instrumented runs sit
    in the same shard) but absolute times inflate under oversubscription.
    """
    selected = list(workloads) if workloads is not None else paper_workloads()
    result = Table1Result()
    if jobs > 1 and len(selected) > 1:
        from repro.parallel.executor import require_all, run_shards
        from repro.parallel.tasks import Table1Task, run_table1_workload

        tasks = [
            Table1Task(
                workload=workload.name, scale=scale, seed=seed,
                repeats=repeats,
            )
            for workload in selected
        ]
        result.rows.extend(
            require_all(run_shards(run_table1_workload, tasks, jobs=jobs))
        )
        return result
    for workload in selected:
        result.rows.append(
            measure_workload(workload, scale=scale, seed=seed, repeats=repeats)
        )
    return result


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--workload", action="append", default=None)
    parser.add_argument("--jobs", type=int, default=1,
                        help="measure benchmarks in N parallel worker "
                             "processes (rows merge in benchmark order)")
    parser.add_argument("--stats", action="store_true",
                        help="print aggregated pipeline metrics")
    args = parser.parse_args(argv)
    selected = None
    if args.workload:
        from repro.workloads.base import get

        selected = [get(name) for name in args.workload]
    result = run_table1(
        selected, scale=args.scale, seed=args.seed, repeats=args.repeats,
        jobs=args.jobs,
    )
    print(result.render())
    print(
        "Mean slowdowns: "
        + ", ".join(
            f"{name}={result.mean_slowdown(name):.2f}x"
            for name, _f in BACKENDS
        )
    )
    if args.stats:
        aggregated = PipelineMetrics.aggregate(
            row.metrics for row in result.rows if row.metrics is not None
        )
        print()
        print(aggregated.render())


if __name__ == "__main__":
    main()
