"""Experiment harnesses regenerating every table and figure (DESIGN.md §4)."""

from repro.harness.formatting import render_table
from repro.harness.injection import InjectionResult, run_injection
from repro.harness.report import generate_report
from repro.harness.sensitivity import SensitivityResult, measure as measure_sensitivity
from repro.harness.table1 import Table1Result, measure_workload, run_table1
from repro.harness.table2 import Table2Result, run_table2, score_workload

__all__ = [
    "InjectionResult",
    "Table1Result",
    "Table2Result",
    "measure_workload",
    "render_table",
    "generate_report",
    "run_injection",
    "run_table1",
    "run_table2",
    "SensitivityResult",
    "measure_sensitivity",
    "score_workload",
]
