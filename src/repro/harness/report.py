"""One-shot evaluation report: every experiment, paper vs. measured.

Runs E1-E4 and writes a single markdown report comparing measured
numbers to the paper's published ones — a regenerable EXPERIMENTS.md.

Run as a script::

    python -m repro.harness.report [--out report.md] [--scale S] [--seeds N]
"""

from __future__ import annotations

import argparse
import io
from typing import Optional, Sequence

from repro.harness.injection import run_injection
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2
from repro.workloads import paper_workloads


def generate_report(
    scale: float = 1.0,
    seeds: int = 5,
    repeats: int = 2,
    workload_names: Optional[Sequence[str]] = None,
) -> str:
    """Run all experiments and render the markdown report.

    ``workload_names`` restricts E1-E3 to a subset (tests use this);
    the injection study always runs both families.
    """
    from repro.workloads.base import get

    selected = (
        None
        if workload_names is None
        else [get(name) for name in workload_names]
    )
    out = io.StringIO()
    write = out.write
    write("# Velodrome reproduction — evaluation report\n\n")
    write(f"Configuration: scale={scale}, seeds={seeds}, repeats={repeats}.\n")
    write("Shapes, not absolute numbers, are the reproducible quantity "
          "(see DESIGN.md).\n\n")

    # ---------------------------------------------------------------- E1/E2
    write("## E1/E2 — Table 1 (slowdowns and node counts)\n\n```\n")
    table1 = run_table1(selected, scale=scale, repeats=repeats)
    write(table1.render())
    write("\n```\n\n")
    write("Mean slowdowns: "
          + ", ".join(
              f"{name}={table1.mean_slowdown(name):.2f}x"
              for name in ("empty", "eraser", "atomizer", "velodrome"))
          + " — paper ordering Empty <= Eraser <= Atomizer ~ Velodrome.\n\n")
    write("| program | merge ratio (measured) | merge ratio (paper) |\n")
    write("|---|---|---|\n")
    reported = selected if selected is not None else paper_workloads()
    for row, workload in zip(table1.rows, reported):
        paper = workload.table1
        measured = row.nodes_allocated_without_merge / max(
            1, row.nodes_allocated_with_merge
        )
        published = paper.nodes_allocated_without_merge / max(
            1, paper.nodes_allocated_with_merge
        )
        write(f"| {row.name} | {measured:.1f}x | {published:.1f}x |\n")
    write("\n")

    # ------------------------------------------------------------------ E3
    write("## E3 — Table 2 (warnings)\n\n```\n")
    table2 = run_table2(selected, seeds=range(seeds), scale=scale)
    write(table2.render())
    write("\n```\n\n")
    write("| metric | measured | paper |\n|---|---|---|\n")
    totals = table2.totals()
    write(f"| Atomizer non-serial | {totals.atomizer_non_serial} | 154 |\n")
    write(f"| Atomizer false alarms | {totals.atomizer_false_alarms} | 84 |\n")
    write(f"| Velodrome non-serial | {totals.velodrome_non_serial} | 133 |\n")
    write(f"| Velodrome false alarms | {totals.velodrome_false_alarms} | 0 |\n")
    write(f"| Velodrome missed | {totals.velodrome_missed} | 21 |\n")
    write(f"| recall vs Atomizer | {table2.recall_vs_atomizer:.0%} | 85% |\n")
    write(f"| blame rate | {table2.blame_rate:.0%} | >80% |\n\n")

    # ------------------------------------------------------------------ E4
    write("## E4 — defect injection (Section 6)\n\n```\n")
    injection = run_injection(seeds=range(seeds))
    write(injection.render())
    write("\n```\n")
    return out.getvalue()


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the report here (default: stdout)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    report = generate_report(
        scale=args.scale, seeds=args.seeds, repeats=args.repeats
    )
    if args.out:
        with open(args.out, "w") as stream:
            stream.write(report)
        print(f"report written to {args.out}")
    else:
        print(report)


if __name__ == "__main__":
    main()
