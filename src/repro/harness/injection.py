"""Experiment E4: the defect-injection study (paper Section 6).

For each injection family (elevator-like and colt-like), corrupt one
synchronization site at a time and run Velodrome once per variant per
seed, with and without Atomizer-guided adversarial scheduling.  A run
*detects* the defect when it warns about the corrupted method.  The
paper reports roughly 30% single-run detection without scheduler
adjustment and roughly 70% with it.

Every variant run goes through the fan-out pipeline (in adversarial
mode Velodrome and the guiding Atomizer share one event stream), and
``--stats`` aggregates the pipeline metrics over the whole study.

Run as a script::

    python -m repro.harness.injection [--seeds N] [--pause-steps K]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.harness.formatting import render_table
from repro.pipeline import PipelineMetrics
from repro.runtime.tool import run_velodrome
from repro.workloads.injection import FAMILIES, build_variant, site_label


@dataclass
class InjectionRow:
    """Detection statistics for one family and one scheduling mode."""

    family: str
    adversarial: bool
    trials: int = 0
    detections: int = 0

    @property
    def rate(self) -> float:
        return self.detections / self.trials if self.trials else 0.0


@dataclass
class InjectionResult:
    rows: list[InjectionRow] = field(default_factory=list)
    metrics: Optional[PipelineMetrics] = None

    def rate(self, family: str, adversarial: bool) -> float:
        for row in self.rows:
            if row.family == family and row.adversarial == adversarial:
                return row.rate
        raise KeyError((family, adversarial))

    def overall(self, adversarial: bool) -> float:
        trials = sum(r.trials for r in self.rows if r.adversarial == adversarial)
        hits = sum(r.detections for r in self.rows if r.adversarial == adversarial)
        return hits / trials if trials else 0.0

    def render(self) -> str:
        headers = ["Family", "Scheduling", "Detected", "Trials", "Rate"]
        rows = [
            [
                row.family,
                "adversarial" if row.adversarial else "plain",
                row.detections,
                row.trials,
                f"{row.rate:.0%}",
            ]
            for row in self.rows
        ]
        body = render_table(
            headers, rows, title="Defect injection study (measured)"
        )
        return (
            f"{body}\n"
            f"Overall: plain {self.overall(False):.0%} (paper ~30%), "
            f"adversarial {self.overall(True):.0%} (paper ~70%)"
        )


def run_injection(
    families: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = range(5),
    pause_steps: int = 120,
    max_pauses_per_thread: int = 8,
    stats: bool = False,
) -> InjectionResult:
    """Run the full study; see the module docstring."""
    result = InjectionResult()
    seeds = list(seeds)
    snapshots: list[PipelineMetrics] = []
    for family_name in families if families is not None else sorted(FAMILIES):
        family = FAMILIES[family_name]
        for adversarial in (False, True):
            row = InjectionRow(family_name, adversarial)
            for site in range(family.n_sites):
                target = site_label(family, site)
                for seed in seeds:
                    program = build_variant(family, site)
                    run = run_velodrome(
                        program,
                        seed=seed,
                        adversarial=adversarial,
                        pause_steps=pause_steps,
                        max_pauses_per_thread=max_pauses_per_thread,
                        stats=stats,
                    )
                    if stats:
                        snapshots.append(run.metrics)
                    row.trials += 1
                    # Score Velodrome's warnings only: in adversarial
                    # mode the guiding Atomizer also reports, and its
                    # schedule-independent warnings must not count.
                    if target in run.labels_from("VELODROME"):
                        row.detections += 1
            result.rows.append(row)
    if snapshots:
        result.metrics = PipelineMetrics.aggregate(snapshots)
    return result


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--pause-steps", type=int, default=120)
    parser.add_argument("--max-pauses", type=int, default=8)
    parser.add_argument("--family", action="append", default=None)
    parser.add_argument("--stats", action="store_true",
                        help="print aggregated pipeline metrics")
    args = parser.parse_args(argv)
    result = run_injection(
        args.family,
        seeds=range(args.seeds),
        pause_steps=args.pause_steps,
        max_pauses_per_thread=args.max_pauses,
        stats=args.stats,
    )
    print(result.render())
    if result.metrics is not None:
        print()
        print(result.metrics.render())


if __name__ == "__main__":
    main()
