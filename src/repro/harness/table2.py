"""Experiment E3: reproduce Table 2 (warning precision and recall).

For each benchmark, run the Atomizer and Velodrome over five seeded
schedules (the paper uses five runs), take the union of warned method
labels, and score against the workload's ground truth:

* *non-serial*: warned labels that are genuinely non-atomic methods,
* *false alarms*: warned labels that are actually atomic,
* *missed* (Velodrome): non-atomic methods the Atomizer reported but
  Velodrome never observed violated.

Each benchmark/seed pair is executed ONCE: Velodrome and the Atomizer
share the event stream through the fan-out pipeline, so the two
analyses' verdicts come from the same observed schedule.

Run as a script::

    python -m repro.harness.table2 [--scale S] [--seeds N] [--stats]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.baselines.atomizer import Atomizer
from repro.core.blame import summarize_blame
from repro.core.optimized import VelodromeOptimized
from repro.core.reports import Warning
from repro.harness.formatting import render_table
from repro.pipeline import PipelineMetrics
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tool import run_with_backends
from repro.workloads.base import Workload, paper_workloads


@dataclass
class Table2Row:
    """Measured Table 2 numbers for one benchmark."""

    name: str
    atomizer_non_serial: int
    atomizer_false_alarms: int
    velodrome_non_serial: int
    velodrome_false_alarms: int
    velodrome_missed: int
    ground_truth: int
    blame_total: int = 0
    blame_assigned: int = 0
    metrics: Optional[PipelineMetrics] = None


@dataclass
class Table2Result:
    """All rows plus aggregate statistics."""

    rows: list[Table2Row] = field(default_factory=list)

    def totals(self) -> Table2Row:
        total = Table2Row("Total", 0, 0, 0, 0, 0, 0)
        for row in self.rows:
            total.atomizer_non_serial += row.atomizer_non_serial
            total.atomizer_false_alarms += row.atomizer_false_alarms
            total.velodrome_non_serial += row.velodrome_non_serial
            total.velodrome_false_alarms += row.velodrome_false_alarms
            total.velodrome_missed += row.velodrome_missed
            total.ground_truth += row.ground_truth
            total.blame_total += row.blame_total
            total.blame_assigned += row.blame_assigned
        return total

    @property
    def recall_vs_atomizer(self) -> float:
        """Fraction of Atomizer-found non-atomic methods Velodrome also
        found (the paper's 85% headline)."""
        total = self.totals()
        if total.atomizer_non_serial == 0:
            return 1.0
        return total.velodrome_non_serial / total.atomizer_non_serial

    @property
    def atomizer_false_alarm_rate(self) -> float:
        """Fraction of Atomizer warnings that are false (paper: ~40%)."""
        total = self.totals()
        warned = total.atomizer_non_serial + total.atomizer_false_alarms
        return total.atomizer_false_alarms / warned if warned else 0.0

    @property
    def blame_rate(self) -> float:
        """Fraction of Velodrome warnings with certified blame (>80%)."""
        total = self.totals()
        return (
            total.blame_assigned / total.blame_total if total.blame_total else 0.0
        )

    def render(self) -> str:
        headers = [
            "Program",
            "A:non-serial", "A:false-alarms",
            "V:non-serial", "V:false-alarms", "V:missed",
        ]
        rows = [
            [
                row.name,
                row.atomizer_non_serial, row.atomizer_false_alarms,
                row.velodrome_non_serial, row.velodrome_false_alarms,
                row.velodrome_missed,
            ]
            for row in self.rows + [self.totals()]
        ]
        body = render_table(headers, rows, title="Table 2: warnings (measured)")
        return (
            f"{body}\n"
            f"Velodrome recall vs Atomizer: {self.recall_vs_atomizer:.0%} "
            f"(paper: 85%)\n"
            f"Atomizer false-alarm rate: {self.atomizer_false_alarm_rate:.0%} "
            f"(paper: ~40%); Velodrome false alarms: "
            f"{self.totals().velodrome_false_alarms} (paper: 0)\n"
            f"Velodrome blame rate: {self.blame_rate:.0%} (paper: >80%)"
        )


def score_workload(
    workload: Workload,
    seeds: Iterable[int] = range(5),
    scale: float = 1.0,
    stats: bool = False,
) -> Table2Row:
    """Run one benchmark across seeds and score against ground truth.

    Each seed is one fan-out run: Velodrome and the Atomizer analyse
    the same schedule in a single pass over its event stream.
    """
    velodrome_labels: set[str] = set()
    atomizer_labels: set[str] = set()
    velodrome_warnings: list[Warning] = []
    ground_truth: set[str] = set()
    snapshots: list[PipelineMetrics] = []
    for seed in seeds:
        program = workload.program(scale)
        ground_truth = program.non_atomic_methods
        run = run_with_backends(
            program,
            [
                VelodromeOptimized(first_warning_per_label=True),
                Atomizer(),
            ],
            scheduler=RandomScheduler(seed),
            stats=stats,
        )
        velodrome, atomizer = run.backends
        velodrome_labels |= velodrome.warned_labels()
        atomizer_labels |= atomizer.warned_labels()
        velodrome_warnings.extend(velodrome.warnings)
        if stats:
            snapshots.append(run.metrics)
    blame = summarize_blame(velodrome_warnings)
    metrics = PipelineMetrics.aggregate(snapshots) if snapshots else None
    return Table2Row(
        name=workload.name,
        atomizer_non_serial=len(atomizer_labels & ground_truth),
        atomizer_false_alarms=len(atomizer_labels - ground_truth),
        velodrome_non_serial=len(velodrome_labels & ground_truth),
        velodrome_false_alarms=len(velodrome_labels - ground_truth),
        velodrome_missed=len((atomizer_labels & ground_truth) - velodrome_labels),
        ground_truth=len(ground_truth),
        blame_total=blame.total,
        blame_assigned=blame.blamed,
        metrics=metrics,
    )


def run_table2(
    workloads: Optional[Sequence[Workload]] = None,
    seeds: Iterable[int] = range(5),
    scale: float = 1.0,
    stats: bool = False,
    jobs: int = 1,
) -> Table2Result:
    """Score every benchmark; see the module docstring.

    ``jobs`` > 1 scores benchmarks in parallel worker processes (one
    shard per benchmark, carrying all its seeds) and merges rows in
    benchmark order.  Verdicts are schedule-deterministic per seed, so
    the rendered table is byte-identical to a serial run.  A dead
    worker raises :class:`~repro.parallel.executor.ShardError` — a
    table with missing rows would be silently wrong.
    """
    seeds = list(seeds)
    selected = list(workloads) if workloads is not None else paper_workloads()
    result = Table2Result()
    if jobs > 1 and len(selected) > 1:
        from repro.parallel.executor import require_all, run_shards
        from repro.parallel.tasks import Table2Task, run_table2_workload

        tasks = [
            Table2Task(
                workload=workload.name, seeds=tuple(seeds), scale=scale,
                stats=stats,
            )
            for workload in selected
        ]
        result.rows.extend(
            require_all(run_shards(run_table2_workload, tasks, jobs=jobs))
        )
        return result
    for workload in selected:
        result.rows.append(
            score_workload(workload, seeds=seeds, scale=scale, stats=stats)
        )
    return result


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--workload", action="append", default=None)
    parser.add_argument("--jobs", type=int, default=1,
                        help="score benchmarks in N parallel worker "
                             "processes (rows merge in benchmark order)")
    parser.add_argument("--stats", action="store_true",
                        help="print aggregated pipeline metrics")
    args = parser.parse_args(argv)
    selected = None
    if args.workload:
        from repro.workloads.base import get

        selected = [get(name) for name in args.workload]
    result = run_table2(selected, seeds=range(args.seeds), scale=args.scale,
                        stats=args.stats, jobs=args.jobs)
    print(result.render())
    if args.stats:
        aggregated = PipelineMetrics.aggregate(
            row.metrics for row in result.rows if row.metrics is not None
        )
        print()
        print(aggregated.render())


if __name__ == "__main__":
    main()
