"""Experiment E8: scheduling sensitivity (paper Section 6, last part).

The paper notes that warning counts were "fairly uniform when these
experiments were repeated using only a single core, despite Velodrome
being more sensitive to scheduling than other tools".  The analogue
here: vary the scheduler's context-switch granularity —

* ``fine``: switch candidates at every operation (multicore-like,
  maximal interleaving),
* ``default``: the geometric bursts used everywhere else,
* ``coarse``: long bursts (single-core-like, threads run far between
  preemptions),

and compare the number of non-atomic methods Velodrome and the
Atomizer report on each benchmark.  The expected shape: the Atomizer
is nearly schedule-independent (it generalizes), Velodrome loses a
little recall as interleavings coarsen but stays close — and never
gains a false alarm.

Run as a script::

    python -m repro.harness.sensitivity [--seeds N] [--scale S]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.baselines.atomizer import Atomizer
from repro.core.optimized import VelodromeOptimized
from repro.harness.formatting import render_table
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tool import run_with_backends
from repro.workloads.base import Workload, paper_workloads

#: Scheduler granularities: name -> switch probability per operation.
GRANULARITIES: dict[str, float] = {
    "fine": 1.0,
    "default": 0.35,
    "coarse": 0.05,
}


@dataclass
class SensitivityRow:
    """Warning counts for one benchmark under one granularity."""

    name: str
    granularity: str
    velodrome_non_serial: int
    velodrome_false_alarms: int
    atomizer_non_serial: int
    atomizer_false_alarms: int
    ground_truth: int


@dataclass
class SensitivityResult:
    rows: list[SensitivityRow] = field(default_factory=list)

    def totals(self, granularity: str) -> SensitivityRow:
        total = SensitivityRow("Total", granularity, 0, 0, 0, 0, 0)
        for row in self.rows:
            if row.granularity != granularity:
                continue
            total.velodrome_non_serial += row.velodrome_non_serial
            total.velodrome_false_alarms += row.velodrome_false_alarms
            total.atomizer_non_serial += row.atomizer_non_serial
            total.atomizer_false_alarms += row.atomizer_false_alarms
            total.ground_truth += row.ground_truth
        return total

    def render(self) -> str:
        headers = ["Granularity", "V:non-serial", "V:false-alarms",
                   "A:non-serial", "A:false-alarms", "Truth"]
        rows = []
        for granularity in GRANULARITIES:
            total = self.totals(granularity)
            rows.append([
                granularity,
                total.velodrome_non_serial,
                total.velodrome_false_alarms,
                total.atomizer_non_serial,
                total.atomizer_false_alarms,
                total.ground_truth,
            ])
        body = render_table(
            headers, rows,
            title="Scheduling sensitivity (totals across benchmarks)",
        )
        fine = self.totals("fine").velodrome_non_serial
        coarse = self.totals("coarse").velodrome_non_serial
        stability = coarse / fine if fine else 1.0
        return (
            f"{body}\n"
            f"Velodrome recall at coarse vs fine granularity: "
            f"{stability:.0%} (paper: 'fairly uniform' on one core)"
        )


def measure(
    workloads: Optional[Sequence[Workload]] = None,
    seeds: Iterable[int] = range(5),
    scale: float = 1.0,
) -> SensitivityResult:
    """Score every benchmark under every scheduler granularity."""
    result = SensitivityResult()
    seeds = list(seeds)
    for workload in workloads if workloads is not None else paper_workloads():
        for granularity, switch_probability in GRANULARITIES.items():
            velodrome_labels: set[str] = set()
            atomizer_labels: set[str] = set()
            truth: set[str] = set()
            for seed in seeds:
                program = workload.program(scale)
                truth = program.non_atomic_methods
                run = run_with_backends(
                    program,
                    [
                        VelodromeOptimized(first_warning_per_label=True),
                        Atomizer(),
                    ],
                    scheduler=RandomScheduler(
                        seed, switch_probability=switch_probability
                    ),
                )
                velodrome, atomizer = run.backends
                velodrome_labels |= velodrome.warned_labels()
                atomizer_labels |= atomizer.warned_labels()
            result.rows.append(
                SensitivityRow(
                    workload.name,
                    granularity,
                    len(velodrome_labels & truth),
                    len(velodrome_labels - truth),
                    len(atomizer_labels & truth),
                    len(atomizer_labels - truth),
                    len(truth),
                )
            )
    return result


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--workload", action="append", default=None)
    args = parser.parse_args(argv)
    selected = None
    if args.workload:
        from repro.workloads.base import get

        selected = [get(name) for name in args.workload]
    print(measure(selected, seeds=range(args.seeds), scale=args.scale).render())


if __name__ == "__main__":
    main()
