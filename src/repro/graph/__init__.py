"""Happens-before graph machinery: nodes, steps, edges, GC, encoding."""

from repro.graph.dot import graph_to_dot
from repro.graph.hbgraph import Cycle, CycleStrategy, GraphStats, HBGraph
from repro.graph.node import EdgeInfo, Step, TxNode, deref
from repro.graph.stepcode import (
    NIL,
    MAX_SLOTS,
    NODE_BITS,
    TIMESTAMP_BITS,
    NodePool,
    SlotsExhausted,
    pack,
    unpack,
)

__all__ = [
    "Cycle",
    "CycleStrategy",
    "EdgeInfo",
    "GraphStats",
    "HBGraph",
    "MAX_SLOTS",
    "NIL",
    "NODE_BITS",
    "NodePool",
    "SlotsExhausted",
    "Step",
    "TIMESTAMP_BITS",
    "TxNode",
    "deref",
    "graph_to_dot",
    "pack",
    "unpack",
]
