"""Compact 64-bit step encoding with node recycling (paper Section 5).

The Velodrome prototype represents each step as a 64-bit integer whose
top 16 bits identify a node slot and whose low 48 bits are a timestamp
within that node.  Node slots are recycled when nodes are collected;
to keep recycled slots from resurrecting dead steps, the pool records
the last timestamp each slot used before collection, and a dereference
of a step whose timestamp falls at or below that watermark reads as
absent (the conceptual node it named is gone).

Timestamps on a slot therefore increase monotonically across recycles:
a slot's next incarnation starts numbering after the watermark.

Both resources are finite and both exhaust with a diagnosable
:class:`SlotsExhausted` (never a bare overflow from ``pack``):

* more live nodes than slots — every slot resident and the free list
  empty;
* a slot's watermark reaching the timestamp capacity — the slot is
  *retired* on detach instead of recycled (a fresh incarnation would
  have no timestamps left), and a biased timestamp overflowing the
  capacity while encoding raises immediately.

``timestamp_capacity`` exists so tests can drive the 48-bit watermark
path without 2**48 operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.node import Step, TxNode

NODE_BITS = 16
TIMESTAMP_BITS = 48
MAX_SLOTS = 1 << NODE_BITS
TIMESTAMP_MASK = (1 << TIMESTAMP_BITS) - 1

#: The packed representation of the absent step (the paper's bottom).
NIL = -1


def pack(slot: int, timestamp: int) -> int:
    """Pack a (slot, timestamp) pair into one 64-bit integer."""
    if not 0 <= slot < MAX_SLOTS:
        raise ValueError(f"node slot {slot} out of range")
    if not 0 <= timestamp <= TIMESTAMP_MASK:
        raise ValueError(f"timestamp {timestamp} out of range")
    return (slot << TIMESTAMP_BITS) | timestamp


def unpack(code: int) -> tuple[int, int]:
    """Unpack a 64-bit step code into its (slot, timestamp) pair."""
    if code < 0:
        raise ValueError("cannot unpack NIL")
    return code >> TIMESTAMP_BITS, code & TIMESTAMP_MASK


class SlotsExhausted(RuntimeError):
    """Raised when the encoding runs out of slots or timestamps."""


@dataclass(frozen=True)
class PoolStats:
    """One consistent snapshot of a pool's slot accounting.

    The four slot populations partition the slot space::

        live + free + retired + unallocated == max_slots

    ``min_recycle_headroom`` is the smallest number of timestamps a
    recycled slot on the free list can still hand to its next
    incarnation (``None`` when the free list is empty); unallocated
    slots always offer the full ``timestamp_capacity + 1``.  The
    resource governor reads these to decide when to compact before the
    pool would otherwise raise :class:`SlotsExhausted`.
    """

    live: int
    free: int
    retired: int
    unallocated: int
    max_slots: int
    timestamp_capacity: int
    min_recycle_headroom: Optional[int]

    @property
    def attachable(self) -> int:
        """Slots an ``attach`` call could use right now."""
        return self.free + self.unallocated


class NodePool:
    """Allocates node slots and resolves packed steps to live nodes.

    The pool tracks, per slot, the currently-resident :class:`TxNode`
    (if any) and the timestamp watermark below which steps are dead.
    ``encode``/``decode`` convert between object-level :class:`Step`
    values and packed integers; ``decode`` returns ``None`` for steps
    of collected nodes, implementing the weak-reference discipline
    without per-step back-pointers.

    Args:
        max_slots: how many node slots the encoding can name.
        timestamp_capacity: largest biased timestamp a slot may carry.
            The default is the full 48-bit range; tests lower it to
            exercise watermark exhaustion and slot retirement cheaply.
    """

    def __init__(
        self,
        max_slots: int = MAX_SLOTS,
        timestamp_capacity: int = TIMESTAMP_MASK,
    ):
        if not 1 <= max_slots <= MAX_SLOTS:
            raise ValueError(f"max_slots {max_slots} out of range")
        if not 0 <= timestamp_capacity <= TIMESTAMP_MASK:
            raise ValueError(
                f"timestamp_capacity {timestamp_capacity} out of range"
            )
        self.max_slots = max_slots
        self.timestamp_capacity = timestamp_capacity
        self._resident: list[Optional[TxNode]] = []
        self._watermark: list[int] = []
        self._base: list[int] = []
        self._free: list[int] = []
        self._live = 0
        self._retired = 0

    @property
    def slots_in_use(self) -> int:
        """Number of slots currently holding a live node."""
        return self._live

    @property
    def retired_slots(self) -> int:
        """Slots permanently taken out of service by watermark overflow."""
        return self._retired

    def _exhausted(self, detail: str) -> SlotsExhausted:
        return SlotsExhausted(
            f"{detail} ({self._live} live nodes, "
            f"{self._retired} of {self.max_slots} slots retired)"
        )

    def attach(self, node: TxNode) -> int:
        """Assign a slot to a freshly-allocated node.

        The node's timestamps (starting at its local 0) are biased by
        the slot's watermark so that packed timestamps keep increasing
        across recycles.  Raises :class:`SlotsExhausted` when every
        slot is resident or retired.
        """
        if node.slot is not None and (
            node.slot < len(self._resident)
            and self._resident[node.slot] is node
        ):
            raise ValueError("node is already resident in this pool")
        if self._free:
            slot = self._free.pop()
        else:
            if len(self._resident) >= self.max_slots:
                raise self._exhausted("no node slot available")
            slot = len(self._resident)
            self._resident.append(None)
            self._watermark.append(-1)
            self._base.append(0)
        self._resident[slot] = node
        self._base[slot] = self._watermark[slot] + 1
        self._live += 1
        node.slot = slot
        return slot

    def detach(self, node: TxNode) -> None:
        """Release a collected node's slot.

        The slot returns to the free list with its watermark advanced
        past every timestamp the node used — unless the watermark has
        reached the timestamp capacity, in which case the slot is
        retired: a fresh incarnation would have no room to number its
        steps, and handing the slot out again would make ``encode``
        fail at an arbitrary later operation instead of here.
        """
        slot = node.slot
        if slot is None or self._resident[slot] is not node:
            raise ValueError("node is not resident in this pool")
        self._watermark[slot] = self._base[slot] + node.last_timestamp
        self._resident[slot] = None
        self._live -= 1
        # The node no longer names a slot: a stale ``slot`` here would
        # let a retained step of this node encode against whatever node
        # the slot hosts next (a silent resurrection), and would let a
        # second detach corrupt the live counter once the slot is
        # rehosted.  Retirement and recycling both clear it.
        node.slot = None
        if self._watermark[slot] >= self.timestamp_capacity:
            self._retired += 1
        else:
            self._free.append(slot)

    def pool_stats(self) -> PoolStats:
        """A consistent :class:`PoolStats` snapshot.

        Checks the slot-partition invariant before reporting, so a
        bookkeeping bug surfaces here (where the governor and
        ``--stats`` read the counters) instead of as a mis-raised
        :class:`SlotsExhausted` arbitrarily later.
        """
        allocated = len(self._resident)
        resident = sum(1 for node in self._resident if node is not None)
        if resident != self._live:
            raise AssertionError(
                f"live-slot counter drift: counter {self._live}, "
                f"resident {resident}"
            )
        if self._live + len(self._free) + self._retired != allocated:
            raise AssertionError(
                f"slot partition violated: {self._live} live + "
                f"{len(self._free)} free + {self._retired} retired != "
                f"{allocated} allocated"
            )
        return PoolStats(
            live=self._live,
            free=len(self._free),
            retired=self._retired,
            unallocated=self.max_slots - allocated,
            max_slots=self.max_slots,
            timestamp_capacity=self.timestamp_capacity,
            min_recycle_headroom=(
                min(
                    self.timestamp_capacity - self._watermark[slot]
                    for slot in self._free
                )
                if self._free
                else None
            ),
        )

    def encode(self, step: Optional[Step]) -> int:
        """Pack a step; absent (or collected-node) steps pack to NIL.

        Raises :class:`SlotsExhausted` when the biased timestamp
        overflows the slot's capacity (the 48-bit field in the full
        encoding).
        """
        if step is None or step.node.collected:
            return NIL
        slot = step.node.slot
        if slot is None:
            raise ValueError("node has no slot; call attach() first")
        biased = self._base[slot] + step.timestamp
        if biased > self.timestamp_capacity:
            raise self._exhausted(
                f"slot {slot} timestamp watermark overflow: biased "
                f"timestamp {biased} exceeds capacity "
                f"{self.timestamp_capacity} "
                f"(slot watermark {self._watermark[slot]}, "
                f"base {self._base[slot]})"
            )
        return pack(slot, biased)

    def decode(self, code: int) -> Optional[Step]:
        """Unpack a step code; dead or NIL codes decode to ``None``."""
        if code == NIL:
            return None
        slot, biased = unpack(code)
        if slot >= len(self._resident):
            return None
        if biased <= self._watermark[slot]:
            return None
        node = self._resident[slot]
        if node is None:
            return None
        return Step(node, biased - self._base[slot])
