"""Compact 64-bit step encoding with node recycling (paper Section 5).

The Velodrome prototype represents each step as a 64-bit integer whose
top 16 bits identify a node slot and whose low 48 bits are a timestamp
within that node.  Node slots are recycled when nodes are collected;
to keep recycled slots from resurrecting dead steps, the pool records
the last timestamp each slot used before collection, and a dereference
of a step whose timestamp falls at or below that watermark reads as
absent (the conceptual node it named is gone).

Timestamps on a slot therefore increase monotonically across recycles:
a slot's next incarnation starts numbering after the watermark.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.node import Step, TxNode

NODE_BITS = 16
TIMESTAMP_BITS = 48
MAX_SLOTS = 1 << NODE_BITS
TIMESTAMP_MASK = (1 << TIMESTAMP_BITS) - 1

#: The packed representation of the absent step (the paper's bottom).
NIL = -1


def pack(slot: int, timestamp: int) -> int:
    """Pack a (slot, timestamp) pair into one 64-bit integer."""
    if not 0 <= slot < MAX_SLOTS:
        raise ValueError(f"node slot {slot} out of range")
    if not 0 <= timestamp <= TIMESTAMP_MASK:
        raise ValueError(f"timestamp {timestamp} out of range")
    return (slot << TIMESTAMP_BITS) | timestamp


def unpack(code: int) -> tuple[int, int]:
    """Unpack a 64-bit step code into its (slot, timestamp) pair."""
    if code < 0:
        raise ValueError("cannot unpack NIL")
    return code >> TIMESTAMP_BITS, code & TIMESTAMP_MASK


class SlotsExhausted(RuntimeError):
    """Raised when more live nodes exist than the encoding can name."""


class NodePool:
    """Allocates node slots and resolves packed steps to live nodes.

    The pool tracks, per slot, the currently-resident :class:`TxNode`
    (if any) and the timestamp watermark below which steps are dead.
    ``encode``/``decode`` convert between object-level :class:`Step`
    values and packed integers; ``decode`` returns ``None`` for steps
    of collected nodes, implementing the weak-reference discipline
    without per-step back-pointers.
    """

    def __init__(self, max_slots: int = MAX_SLOTS):
        self.max_slots = max_slots
        self._resident: list[Optional[TxNode]] = []
        self._watermark: list[int] = []
        self._base: list[int] = []
        self._free: list[int] = []

    @property
    def slots_in_use(self) -> int:
        """Number of slots currently holding a live node."""
        return sum(1 for node in self._resident if node is not None)

    def attach(self, node: TxNode) -> int:
        """Assign a slot to a freshly-allocated node.

        The node's timestamps (starting at its local 0) are biased by
        the slot's watermark so that packed timestamps keep increasing
        across recycles.
        """
        if self._free:
            slot = self._free.pop()
        else:
            if len(self._resident) >= self.max_slots:
                raise SlotsExhausted(
                    f"all {self.max_slots} node slots hold live nodes"
                )
            slot = len(self._resident)
            self._resident.append(None)
            self._watermark.append(-1)
            self._base.append(0)
        self._resident[slot] = node
        self._base[slot] = self._watermark[slot] + 1
        node.slot = slot
        return slot

    def detach(self, node: TxNode) -> None:
        """Release a collected node's slot for recycling."""
        slot = node.slot
        if slot is None or self._resident[slot] is not node:
            raise ValueError("node is not resident in this pool")
        self._watermark[slot] = self._base[slot] + node.last_timestamp
        self._resident[slot] = None
        self._free.append(slot)

    def encode(self, step: Optional[Step]) -> int:
        """Pack a step; absent (or collected-node) steps pack to NIL."""
        if step is None or step.node.collected:
            return NIL
        slot = step.node.slot
        if slot is None:
            raise ValueError("node has no slot; call attach() first")
        return pack(slot, self._base[slot] + step.timestamp)

    def decode(self, code: int) -> Optional[Step]:
        """Unpack a step code; dead or NIL codes decode to ``None``."""
        if code == NIL:
            return None
        slot, biased = unpack(code)
        if slot >= len(self._resident):
            return None
        if biased <= self._watermark[slot]:
            return None
        node = self._resident[slot]
        if node is None:
            return None
        return Step(node, biased - self._base[slot])
