"""The transactional happens-before graph.

This is the central data structure of the Velodrome analysis (paper
Sections 3-5).  Nodes are transactions; edges are happens-before
constraints induced by conflicting operations, annotated with the
timestamps of the operations at their tail and head.  The graph

* is kept *acyclic*: an edge whose addition would create a cycle is the
  analysis's error signal, is reported as a :class:`Cycle`, and is not
  inserted (paper Section 5);
* stores at most one edge per ordered node pair, with later edges
  replacing earlier timestamps (the ``H (+) G`` operator of Section 4.3);
* is garbage collected by reference counting: a finished node with no
  incoming edges can never join a cycle and is collected immediately,
  cascading to successors (Section 4.1);
* answers reachability queries either via incrementally-maintained
  ancestor sets (the paper's choice, Section 5) or via on-demand DFS
  (kept as an ablation baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Optional

from repro.graph.node import EdgeInfo, Step, TxNode

CycleStrategy = Literal["ancestors", "dfs"]


@dataclass(slots=True)
class GraphStats:
    """Counters exposed for the Table 1 node-count experiment."""

    allocated: int = 0
    collected: int = 0
    live: int = 0
    max_alive: int = 0
    edges_added: int = 0
    edges_replaced: int = 0
    cycle_checks: int = 0
    cycles_found: int = 0
    merges: int = 0

    def note_alloc(self) -> None:
        self.allocated += 1
        self.live += 1
        if self.live > self.max_alive:
            self.max_alive = self.live

    def note_collect(self) -> None:
        self.collected += 1
        self.live -= 1


@dataclass(frozen=True)
class Cycle:
    """A happens-before cycle found when adding ``closing_src -> closing_dst``.

    ``path`` is the pre-existing chain of edges from the closing edge's
    destination node back to its source node, so the full cycle reads::

        dst --path edges--> src --closing edge--> dst

    The node whose thread performed the cycle-closing operation is
    ``dst`` (incoming edges are only ever added to the thread's current
    transaction), so ``dst`` is the blame candidate ``D`` of Section 4.3.
    """

    closing_src: Step
    closing_dst: Step
    closing_reason: str
    path: tuple[tuple[TxNode, TxNode, EdgeInfo], ...]

    @property
    def blamed_candidate(self) -> TxNode:
        """The current transaction ``D`` that completed the cycle."""
        return self.closing_dst.node

    @property
    def nodes(self) -> tuple[TxNode, ...]:
        """Cycle nodes in order, starting at the blame candidate."""
        return (self.closing_dst.node,) + tuple(v for _u, v, _e in self.path)

    @property
    def root_timestamp(self) -> int:
        """Timestamp of the root operation ``d'`` inside ``D``.

        The tail of the first path edge — the earlier operation of the
        blamed transaction that the rest of the cycle happens-after.
        """
        return self.path[0][2].tail_timestamp

    @property
    def target_timestamp(self) -> int:
        """Timestamp of the target operation ``d`` that closed the cycle."""
        return self.closing_dst.timestamp

    def is_increasing(self) -> bool:
        """The increasing-cycle test of Section 4.3.

        For every node ``m`` other than the blame candidate, the
        timestamp on the cycle's incoming edge to ``m`` must be at most
        the timestamp on its outgoing edge.  When this holds, the
        transactional cycle reflects an operation-level happens-before
        path ``d' < ... < d`` with both endpoints in ``D``, so ``D`` is
        not self-serializable and can be blamed.
        """
        # Edge sequence around the cycle: path edges then the closing edge.
        infos = [info for _u, _v, info in self.path]
        closing = EdgeInfo(
            self.closing_src.timestamp, self.closing_dst.timestamp,
            self.closing_reason,
        )
        infos.append(closing)
        # Interior node m = path[i] target; incoming edge infos[i],
        # outgoing edge infos[i + 1].
        for i in range(len(infos) - 1):
            if infos[i].head_timestamp > infos[i + 1].tail_timestamp:
                return False
        return True

    def edge_descriptions(self) -> list[tuple[str, str, str]]:
        """(source name, destination name, reason) per edge, in order."""
        rows = [
            (u.display_name(), v.display_name(), info.reason)
            for u, v, info in self.path
        ]
        rows.append(
            (
                self.closing_src.node.display_name(),
                self.closing_dst.node.display_name(),
                self.closing_reason,
            )
        )
        return rows

    def __str__(self) -> str:
        names = " -> ".join(n.display_name() for n in self.nodes)
        return f"Cycle[{names} -> {self.nodes[0].display_name()}]"


class HBGraph:
    """Acyclic transactional happens-before graph with GC.

    Args:
        cycle_strategy: ``"ancestors"`` maintains per-node ancestor sets
            for O(1) reachability (the paper's implementation);
            ``"dfs"`` answers reachability by search (ablation A1).
        collect_garbage: disable to measure GC's effect (ablation A2).
    """

    def __init__(
        self,
        cycle_strategy: CycleStrategy = "ancestors",
        collect_garbage: bool = True,
    ):
        if cycle_strategy not in ("ancestors", "dfs"):
            raise ValueError(f"unknown cycle strategy: {cycle_strategy!r}")
        self.cycle_strategy = cycle_strategy
        self.collect_garbage = collect_garbage
        self.stats = GraphStats()
        self._next_seq = 0
        self._live: set[TxNode] = set()
        #: Optional hooks invoked on node allocation and collection —
        #: the compact state representation uses them to assign and
        #: recycle NodePool slots.
        self.on_alloc: Optional[callable] = None
        self.on_collect: Optional[callable] = None

    # ---------------------------------------------------------------- nodes
    def new_node(self, tid: int, label: Optional[str] = None) -> TxNode:
        """Allocate a fresh, current transaction node for thread ``tid``.

        The allocation hook runs *before* the node is registered: if it
        raises (the compact pool's :class:`~repro.graph.stepcode.
        SlotsExhausted`), the graph is unchanged — no phantom node in
        the live set, no stats drift, and the sequence number is reused
        by the retry the resource governor makes after relieving
        pressure.
        """
        node = TxNode(self._next_seq, tid, label=label)
        if self.on_alloc is not None:
            self.on_alloc(node)
        self._next_seq += 1
        self._live.add(node)
        self.stats.note_alloc()
        return node

    def finish(self, node: TxNode) -> None:
        """Mark ``node``'s transaction as ended; collect if possible."""
        node.current = False
        if self.collect_garbage and node.collectible:
            self._collect(node)

    @property
    def live_nodes(self) -> frozenset[TxNode]:
        """A snapshot of the currently live nodes.

        Copies the live set into a frozenset on every access — use it
        when a stable snapshot is wanted (e.g. asserting over nodes
        while mutating the graph).  Hot paths and statistics callers
        should use :attr:`live_count` (no copy) or :meth:`iter_live`
        (direct iteration) instead.
        """
        return frozenset(self._live)

    @property
    def live_count(self) -> int:
        """Number of live nodes, without copying the set."""
        return len(self._live)

    def iter_live(self) -> Iterable[TxNode]:
        """Iterate the live nodes without copying the set.

        The graph must not be mutated (no allocation, collection, or
        edge insertion) while iterating; take :attr:`live_nodes` for a
        stable snapshot in that case.
        """
        return iter(self._live)

    # ---------------------------------------------------------------- edges
    def add_edge(self, src: Step, dst: Step, reason: str = "") -> Optional[Cycle]:
        """Add the happens-before edge ``src -> dst``.

        Self edges (same node) are filtered, matching the paper's
        ``H (+) E`` operator.  If the edge would create a cycle, the
        graph is left unchanged and the :class:`Cycle` is returned;
        otherwise returns ``None``.  An existing edge between the same
        node pair has its timestamps and reason replaced.
        """
        src_node, dst_node = src.node, dst.node
        if src_node is dst_node:
            return None
        if src_node.collected or dst_node.collected:
            raise ValueError("edge endpoint has been garbage collected")
        self.stats.cycle_checks += 1
        if self._reaches(dst_node, src_node):
            self.stats.cycles_found += 1
            return self._build_cycle(src, dst, reason)
        info = src_node.out_edges.get(dst_node)
        if info is not None:
            info.tail_timestamp = src.timestamp
            info.head_timestamp = dst.timestamp
            info.reason = reason
            self.stats.edges_replaced += 1
            return None
        src_node.out_edges[dst_node] = EdgeInfo(src.timestamp, dst.timestamp, reason)
        dst_node.incoming += 1
        self.stats.edges_added += 1
        if self.cycle_strategy == "ancestors":
            self._propagate_ancestors(src_node, dst_node)
        return None

    # ---------------------------------------------------------- reachability
    def reaches(self, a: Optional[TxNode], b: Optional[TxNode]) -> bool:
        """True iff ``a`` happens-before-or-equals ``b`` (``a == b`` counts)."""
        if a is None or b is None:
            return False
        if a is b:
            return True
        return self._reaches(a, b)

    def _reaches(self, a: TxNode, b: TxNode) -> bool:
        """Strict reachability ``a ->+ b`` (excluding ``a is b``)."""
        if a is b:
            return False
        if self.cycle_strategy == "ancestors":
            return a in b.ancestors
        stack = [a]
        seen = {a}
        while stack:
            node = stack.pop()
            for succ in node.out_edges:
                if succ is b:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def _propagate_ancestors(self, src: TxNode, dst: TxNode) -> None:
        """Fold ``ancestors(src) + {src}`` into ``dst`` and its descendants."""
        fresh = src.ancestors | {src}
        worklist = [(dst, fresh)]
        while worklist:
            node, incoming = worklist.pop()
            missing = incoming - node.ancestors
            if not missing:
                continue
            node.ancestors |= missing
            for succ in node.out_edges:
                worklist.append((succ, missing))

    # --------------------------------------------------------------- cycles
    def _build_cycle(self, src: Step, dst: Step, reason: str) -> Cycle:
        """Recover a shortest path ``dst.node ->* src.node`` (BFS)."""
        start, goal = dst.node, src.node
        parents: dict[TxNode, TxNode] = {}
        frontier = [start]
        seen = {start}
        found = False
        while frontier and not found:
            next_frontier: list[TxNode] = []
            for node in frontier:
                for succ in node.out_edges:
                    if succ in seen:
                        continue
                    parents[succ] = node
                    if succ is goal:
                        found = True
                        break
                    seen.add(succ)
                    next_frontier.append(succ)
                if found:
                    break
            frontier = next_frontier
        if not found:
            raise AssertionError("cycle reported but no path found")
        # Walk back from goal to start.
        chain = [goal]
        while chain[-1] is not start:
            chain.append(parents[chain[-1]])
        chain.reverse()
        path = tuple(
            (u, v, u.out_edges[v]) for u, v in zip(chain, chain[1:])
        )
        return Cycle(src, dst, reason, path)

    # ------------------------------------------------------------------- GC
    def sweep(self) -> int:
        """Force-collect every currently collectible node.

        Rung one of the resource governor's degradation ladder: applies
        the Section 4.1 GC rule to the whole live set at once, *even
        when* ``collect_garbage`` is off (the GC ablations accumulate
        collectible nodes by design; under memory pressure reclaiming
        them is sound — a finished node with no incoming edges can
        never join a cycle).  Returns the number of nodes collected.
        """
        collected_before = self.stats.collected
        for node in list(self._live):
            if node.collectible:
                self._collect(node)
        return self.stats.collected - collected_before

    def reset_history(self) -> int:
        """Drop every edge, then collect all finished nodes.

        The final rung of the resource governor's degradation ladder
        (the *window reset*): every happens-before constraint recorded
        so far is forgotten, after which only the current transactions
        remain live.  Sound — any cycle found later uses only
        post-reset edges, each a genuine constraint, so reported
        violations are still real — but incomplete: cycles spanning the
        reset are missed, which is why the supervisor flags the run as
        having degraded completeness.  Returns the number of nodes
        collected.
        """
        for node in list(self._live):
            node.out_edges.clear()
            node.ancestors.clear()
            node.incoming = 0
        collected_before = self.stats.collected
        for node in list(self._live):
            if node.collectible:
                self._collect(node)
        return self.stats.collected - collected_before

    def maybe_collect(self, node: TxNode) -> None:
        """Collect ``node`` now if the GC rule permits it."""
        if self.collect_garbage and node.collectible:
            self._collect(node)

    def _collect(self, root: TxNode) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            if not node.collectible:
                continue
            node.collected = True
            self._live.discard(node)
            self.stats.note_collect()
            if self.on_collect is not None:
                self.on_collect(node)
            if self.cycle_strategy == "ancestors":
                self._prune_ancestor(node)
            for succ in node.out_edges:
                succ.incoming -= 1
                if succ.collectible:
                    stack.append(succ)
            node.out_edges.clear()
            node.ancestors.clear()

    def _prune_ancestor(self, node: TxNode) -> None:
        """Remove a dying node from its descendants' ancestor sets.

        A node is only collected once it has no incoming edges, so every
        path through it starts at it; removing it from descendants keeps
        the live ancestor sets exact.
        """
        worklist = list(node.out_edges)
        while worklist:
            desc = worklist.pop()
            if node in desc.ancestors:
                desc.ancestors.discard(node)
                worklist.extend(desc.out_edges)

    # -------------------------------------------------------------- queries
    def check_acyclic(self) -> None:
        """Assert the live graph is acyclic (test/debug helper)."""
        colour: dict[TxNode, int] = {}

        def visit(node: TxNode) -> None:
            colour[node] = 1
            for succ in node.out_edges:
                state = colour.get(succ, 0)
                if state == 1:
                    raise AssertionError(f"cycle through {succ!r}")
                if state == 0:
                    visit(succ)
            colour[node] = 2

        for node in list(self._live):
            if colour.get(node, 0) == 0:
                visit(node)

    def edge_list(self) -> list[tuple[TxNode, TxNode, EdgeInfo]]:
        """All live edges (for tests and error-graph rendering)."""
        return [
            (u, v, info)
            for u in self._live
            for v, info in u.out_edges.items()
        ]
