"""Transaction nodes and steps of the happens-before graph.

A :class:`TxNode` represents one transaction in the transactional
happens-before graph (paper Sections 3-4).  A :class:`Step` pairs a node
with a timestamp identifying a particular operation within that
transaction; the optimized analysis of Figure 4 stores steps (not bare
nodes) in its state components so that blame assignment can recover the
operations inducing each graph edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class TxNode:
    """A node of the transactional happens-before graph.

    Node lifecycle (paper Section 4.1): a node is *current* while its
    thread is still executing the transaction; incoming edges can only
    be added while it is current.  Once the transaction finishes and the
    node has no incoming edges it can never lie on a cycle, so it is
    *collected*.  Collected nodes are permanently dead; the analysis's
    weak references to them (from L, U, R, W) are interpreted as absent.

    Attributes:
        seq: global allocation sequence number (diagnostics and stats).
        tid: the thread that executed this transaction.
        label: atomic-block label for error reporting, or ``None``.
        current: True while the owning thread is inside the transaction.
        collected: True once garbage collected.
        incoming: number of happens-before edges targeting this node.
        out_edges: successor node -> :class:`EdgeInfo`.
        ancestors: every live node with a happens-before path to this
            node.  Maintained incrementally; membership gives O(1)
            cycle and reachability checks.
        last_timestamp: highest timestamp handed out inside this
            transaction (used by the compact step encoding).
    """

    __slots__ = (
        "seq",
        "tid",
        "label",
        "current",
        "collected",
        "incoming",
        "out_edges",
        "ancestors",
        "last_timestamp",
        "slot",
    )

    def __init__(self, seq: int, tid: int, label: Optional[str] = None):
        self.seq = seq
        self.tid = tid
        self.label = label
        self.current = True
        self.collected = False
        self.incoming = 0
        self.out_edges: dict[TxNode, EdgeInfo] = {}
        self.ancestors: set[TxNode] = set()
        self.last_timestamp = 0
        self.slot: Optional[int] = None

    @property
    def alive(self) -> bool:
        """True while the node has not been collected."""
        return not self.collected

    @property
    def collectible(self) -> bool:
        """True when the GC rule permits collecting this node.

        A node is collectible once it is finished (not current) and has
        no incoming edges — it can then never appear on a cycle.
        """
        return not self.current and self.incoming == 0 and not self.collected

    def display_name(self) -> str:
        base = self.label or "tx"
        return f"{base}#{self.seq}(t{self.tid})"

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (
                ("c", self.current),
                ("x", self.collected),
            )
            if on
        )
        return f"<TxNode {self.display_name()} in={self.incoming} {flags}>"


@dataclass(slots=True)
class EdgeInfo:
    """Metadata attached to one happens-before edge.

    The paper stores, with each edge, the timestamps of the operations
    at its tail and head (Section 4.3); at most one edge exists per
    ordered node pair, and a later edge between the same pair replaces
    the earlier timestamps.  ``reason`` records the operations inducing
    the edge, for error-graph rendering.
    """

    tail_timestamp: int
    head_timestamp: int
    reason: str = ""


@dataclass(frozen=True, slots=True)
class Step:
    """A (transaction node, timestamp) pair — one operation's identity.

    Timestamps count operations within a transaction, starting at 0 for
    the operation that created the node.  ``step.next()`` is the paper's
    ``L(t)+1`` notation.
    """

    node: TxNode
    timestamp: int

    def next(self) -> "Step":
        """The step one operation later in the same transaction."""
        return Step(self.node, self.timestamp + 1)

    def deref(self) -> Optional["Step"]:
        """This step, or ``None`` if its node has been collected.

        Implements the weak-reference discipline of Section 4.1: state
        components L, U, R, W may retain steps of collected nodes, which
        must then read as absent.
        """
        return None if self.node.collected else self

    def __repr__(self) -> str:
        return f"{self.node.display_name()}@{self.timestamp}"


def deref(step: Optional[Step]) -> Optional[Step]:
    """Dereference an optional weak step reference (None-propagating)."""
    if step is None or step.node.collected:
        return None
    return step
