"""Render a live happens-before graph in Graphviz dot format.

Complements :func:`repro.core.reports.cycle_to_dot` (which renders one
warning's cycle): this renders the *entire* live graph — every
uncollected transaction node and every edge with its inducing operation
and timestamps — which is the view you want when debugging the analysis
itself or demonstrating the GC behaviour (the live graph stays tiny).
"""

from __future__ import annotations

from repro.graph.hbgraph import HBGraph


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def graph_to_dot(
    graph: HBGraph,
    title: str = "",
    show_timestamps: bool = True,
) -> str:
    """The live graph as a dot digraph.

    Current transactions are drawn with a bold border, finished ones
    plain; each edge label carries the inducing operation and, when
    ``show_timestamps``, the ``tail@ts -> head@ts`` pair used by blame
    assignment.
    """
    lines = ["digraph happens_before {"]
    if title:
        lines.append(f'  label="{_escape(title)}"; labelloc=t;')
    lines.append("  node [shape=box];")
    # Direct iteration: sorted() materializes its own list, so the
    # frozenset copy live_nodes would make is pure overhead here.
    nodes = sorted(graph.iter_live(), key=lambda node: node.seq)
    for node in nodes:
        attrs = [f'label="{_escape(node.display_name())}"']
        if node.current:
            attrs.append("penwidth=2")
        lines.append(f'  n{node.seq} [{", ".join(attrs)}];')
    for node in nodes:
        for successor, info in sorted(
            node.out_edges.items(), key=lambda item: item[0].seq
        ):
            label = info.reason
            if show_timestamps:
                label = (
                    f"{label} [{info.tail_timestamp}->{info.head_timestamp}]"
                )
            lines.append(
                f'  n{node.seq} -> n{successor.seq} '
                f'[label="{_escape(label)}"];'
            )
    lines.append("}")
    return "\n".join(lines)
