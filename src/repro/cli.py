"""Command-line interface.

::

    python -m repro check TRACE_FILE [--backend NAME]... [--dot DIR]
                          [--jobs N]
                          [--checkpoint FILE [--checkpoint-every N]]
                          [--resume FILE] [--max-nodes N]
                          [--on-pressure {degrade,fail}]
    python -m repro run WORKLOAD [--seed N] [--scale S] [--adversarial]
    python -m repro random [--seed N] [--record FILE]
    python -m repro fuzz [--budget N] [--seed S] [--shrink] [--stats]
    python -m repro serve SPOOL_DIR [--jobs N] [--http-port P]
                          [--socket PATH] [--oneshot]
    python -m repro trace pack/unpack/info/cat ...
    python -m repro workloads
    python -m repro table1 / table2 / inject ...

``check`` analyses a recorded trace — packed binary (``.vtrc``),
``.jsonl``, or the textual DSL, told apart by content sniffing (see
``docs/traces.md``); ``--backend`` may be given several times (or as
``--backend all``) and the trace is loaded and traversed ONCE, fanned
out to every selected analysis.  ``--jobs N`` decodes a packed trace's
blocks across N worker processes before the (serial) analysis.  ``run`` executes one of the fifteen benchmark models under
the tool; ``table1``/``table2``/``inject`` regenerate the paper's
experiments (forwarding to :mod:`repro.harness`).  ``check`` and
``run`` accept ``--stats`` to print pipeline metrics (event counts by
kind, per-stage drops, per-backend cost).

``check`` with any of ``--checkpoint`` / ``--checkpoint-every`` /
``--resume`` / ``--max-nodes`` runs under the supervised runtime
(:mod:`repro.resilience`): the analysis state checkpoints to a
versioned snapshot file, resumes byte-identically from one, and
resource pressure degrades gracefully instead of crashing (see
``docs/resilience.md``).

``fuzz`` runs the differential fuzzer (:mod:`repro.fuzz`): seeded
random traces replayed across the full ablation grid and compared
against the serialization-graph oracle, with optional delta-debugging
shrinking (``--shrink``) and corpus persistence (``--corpus DIR``);
``fuzz --replay DIR`` re-checks an existing corpus instead of
generating new traces.  Exit status 1 signals a divergence.

``serve`` runs the always-on checking daemon (:mod:`repro.serve`):
every stable trace file dropped into the spool directory becomes one
supervised stream, sharded across ``--jobs`` workers, with per-stream
checkpoints, quarantine, retry-then-park, and a localhost metrics
endpoint.  ``kill -9`` at any instant is recoverable: restarting
against the same spool reproduces the exact verdicts of an
uninterrupted run (``fuzz --serve`` continuously tests this; see
``docs/serving.md``).  SIGTERM/SIGINT exit gracefully with status 75
after a final checkpoint; the same applies to long ``check
--checkpoint`` and ``fuzz`` runs.

``trace`` groups the packed-store utilities: ``pack`` re-encodes any
readable recording as packed VTRC, ``unpack`` converts back (or
between formats), ``info`` prints the block layout, and ``cat``
streams operations from an arbitrary position using the block index
(only the blocks actually shown are decoded).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Optional, Sequence

from repro.baselines import (
    Atomizer,
    BlockBasedChecker,
    EraserLockSet,
    HappensBeforeRaces,
    LockOrderMonitor,
    TwoPhaseLocking,
)
from repro.core import (
    VelodromeBasic,
    VelodromeCompact,
    VelodromeOptimized,
    explain_all,
    summarize_blame,
    warning_to_dot,
)
from repro.core.aerodrome import AeroDrome
from repro.core.backend import AnalysisBackend
from repro.core.memo import DEFAULT_MEMO_MAX
from repro.events.render import render_with_transactions
from repro.events.serialize import load_trace, save_trace
from repro.fuzz import (
    DEFAULT_CORPUS,
    FuzzConfig,
    FuzzEngine,
    default_grid,
    replay_corpus,
)
from repro.harness import injection as harness_injection
from repro.harness import report as harness_report
from repro.harness import sensitivity as harness_sensitivity
from repro.harness import table1 as harness_table1
from repro.harness import table2 as harness_table2
from repro.parallel import bench as parallel_bench
from repro.pipeline import Pipeline, TraceSource
from repro.resilience import (
    EXIT_INTERRUPTED,
    Budgets,
    GracefulShutdown,
    ShutdownRequested,
    SupervisedChecker,
)
from repro.resilience.snapshot import supports as snapshot_supports
from repro.runtime.tool import run_velodrome
from repro.workloads import all_workloads, get
from repro.workloads.randomgen import random_program

BACKENDS: dict[str, Callable[[], AnalysisBackend]] = {
    "velodrome": VelodromeOptimized,
    "basic": VelodromeBasic,
    "compact": VelodromeCompact,
    "aerodrome": AeroDrome,
    "atomizer": Atomizer,
    "block-based": BlockBasedChecker,
    "eraser": EraserLockSet,
    "hb-races": HappensBeforeRaces,
    "2pl": TwoPhaseLocking,
    "lock-order": LockOrderMonitor,
}


def resolve_backend(name: str) -> Callable[[], AnalysisBackend]:
    """Look up a backend factory by CLI name.

    Argparse validates ``--backend`` against ``choices``, but
    programmatic callers (the fuzz grid, scripts) hit the registry
    directly; a bare ``KeyError`` from ``BACKENDS[name]`` names
    neither the problem nor the alternatives.
    """
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; valid backends: "
            f"{', '.join(sorted(BACKENDS))}"
        ) from None


def _selected_backends(names: Optional[Sequence[str]]) -> list[str]:
    """Expand/deduplicate the ``--backend`` selection, keeping order."""
    if not names:
        return ["velodrome"]
    if "all" in names:
        return sorted(BACKENDS)
    selected: list[str] = []
    for name in names:
        if name not in selected:
            selected.append(name)
    return selected


def _report_warnings(args: argparse.Namespace, trace, backends) -> int:
    """Print each backend's warnings (and dot files); returns the count.

    ``trace`` may be a :class:`~repro.events.trace.Trace` or a
    zero-argument callable producing one — the resume path hands in a
    lazy loader so a packed recording's prefix is only decoded when
    ``--render``/``--explain`` actually need the full trace.
    """
    if callable(trace) and (args.render or args.explain):
        trace = trace()
    if args.render:
        print(render_with_transactions(trace))
        print()
    dot_index = 0
    out_dir = None
    if args.dot:
        out_dir = pathlib.Path(args.dot)
        out_dir.mkdir(parents=True, exist_ok=True)
    total = 0
    for backend in backends:
        if backend.warning_count == 0:
            print(f"{backend.name}: no warnings "
                  f"({backend.events_processed} events)")
            continue
        warnings = backend.warnings
        total += len(warnings)
        if args.explain:
            explained = explain_all(trace, warnings)
            if explained:
                print(explained)
                print()
        for warning in warnings:
            print(warning)
        atomicity = summarize_blame(warnings)
        if atomicity.total:
            print(atomicity)
        if out_dir is not None:
            for warning in warnings:
                if warning.cycle is None:
                    continue
                path = out_dir / f"warning_{dot_index}.dot"
                path.write_text(warning_to_dot(warning) + "\n")
                dot_index += 1
    if out_dir is not None:
        print(f"wrote {dot_index} dot file(s) to {out_dir}")
    return total


def _is_packed(path) -> bool:
    """True when ``path``'s magic bytes identify a VTRC packed trace."""
    from repro.store.sniff import FORMAT_PACKED, sniff_path

    return sniff_path(path) == FORMAT_PACKED


def _load_check_trace(path, jobs: int = 1):
    """Load a trace for analysis, fanning packed decode out to workers."""
    if jobs and jobs > 1 and _is_packed(path):
        from repro.store.parallel import load_packed_parallel

        return load_packed_parallel(path, jobs=jobs)
    return load_trace(path)


def _stream_trace_tail(path, position: int):
    """The operations of a non-packed trace from ``position`` on.

    JSONL recordings stream line by line
    (:func:`~repro.events.serialize.stream_jsonl`), so skipping the
    prefix is O(1) memory however large the recording — resuming
    must not cost a full materialization just to slice.  The textual
    DSL needs whole-file parsing anyway (it is a small hand-written
    format), so it loads eagerly and slices lazily.
    """
    import itertools

    from repro.store.sniff import FORMAT_JSONL, sniff_path

    if sniff_path(path) == FORMAT_JSONL:
        from repro.events.serialize import stream_jsonl

        return itertools.islice(stream_jsonl(path), position, None)
    return itertools.islice(iter(load_trace(path)), position, None)


def _packed_checkpoint_meta(path):
    """A ``checkpoint_meta`` callable for supervised runs over a
    packed trace (shared with the serve daemon's stream worker)."""
    from repro.serve.stream import packed_checkpoint_meta

    return packed_checkpoint_meta(path)


def _check_supervised(args: argparse.Namespace) -> int:
    """The supervised `check` path: checkpoints, budgets, resume."""
    if args.checkpoint_every and not (args.checkpoint or args.resume):
        print("error: --checkpoint-every requires --checkpoint",
              file=sys.stderr)
        return 2
    if args.checkpoint:
        unsupported = [
            name for name in _selected_backends(args.backend)
            if not snapshot_supports(resolve_backend(name)())
        ]
        if unsupported:
            print(f"error: backend(s) {', '.join(unsupported)} have no "
                  f"snapshot codec and cannot be checkpointed",
                  file=sys.stderr)
            return 2
    # Probe roughly once per budget's worth of events: with a tight
    # node budget the default interval (256) would never fire on a
    # short trace, leaving everything to the exhaustion handler.
    budgets = Budgets(
        max_live_nodes=args.max_nodes,
        check_interval=(
            min(256, max(1, args.max_nodes)) if args.max_nodes else 256
        ),
    )
    packed = _is_packed(args.trace)
    with GracefulShutdown() as shutdown:
        return _check_supervised_body(args, budgets, packed, shutdown)


def _check_supervised_body(
    args: argparse.Namespace, budgets: Budgets, packed: bool,
    shutdown: GracefulShutdown,
) -> int:
    options = dict(
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
        budgets=budgets,
        on_pressure=args.on_pressure,
        checkpoint_meta=(
            _packed_checkpoint_meta(args.trace) if packed else None
        ),
        stop_check=shutdown.check,
        memo=_region_memo(args),
    )
    fast_forward = packed and not args.no_fast_forward
    packed_reader = None
    checker = None
    try:
        if args.resume:
            checker = SupervisedChecker.resume(args.resume, **{
                key: value for key, value in options.items()
                if key != "checkpoint_path"
            })
            print(f"resumed {len(checker.backends)} backend(s) at event "
                  f"{checker.position} from {args.resume}")
            if fast_forward:
                # Block-granular seek: the checkpoint's block is
                # replayed from its first op, later blocks may
                # fast-forward from their summaries.
                from repro.pipeline.source import PackedTraceSource

                checker.run(PackedTraceSource(
                    args.trace, start_seq=checker.position
                ))
            else:
                if packed:
                    # Seek via the block index: only the block
                    # containing the checkpoint position and its
                    # successors are read.
                    from repro.store.reader import PackedTraceReader

                    packed_reader = PackedTraceReader(args.trace)
                    remaining = packed_reader.seek(checker.position)
                else:
                    remaining = _stream_trace_tail(
                        args.trace, checker.position
                    )
                checker.run(TraceSource(remaining))
        else:
            names = _selected_backends(args.backend)
            checker = SupervisedChecker(
                [resolve_backend(name)() for name in names], **options
            )
            if fast_forward:
                from repro.pipeline.source import PackedTraceSource

                checker.run(PackedTraceSource(args.trace, jobs=args.jobs))
            else:
                checker.run(TraceSource(
                    iter(_load_check_trace(args.trace, args.jobs))
                ))
    except ShutdownRequested as exc:
        # Interrupted at a safe point: persist progress, exit clean.
        if checker is not None and (args.checkpoint or args.resume):
            written = checker.checkpoint()
            print(f"interrupted by signal {exc.signum} at event "
                  f"{checker.position}; checkpoint written to {written}",
                  file=sys.stderr)
        else:
            print(f"interrupted by signal {exc.signum}", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if packed_reader is not None:
            packed_reader.close()
    if args.checkpoint and not args.resume:
        written = checker.checkpoint()
        print(f"final checkpoint written to {written}")
    warning_count = _report_warnings(
        args, lambda: _load_check_trace(args.trace, args.jobs),
        checker.backends,
    )
    report = checker.report()
    print(report.summary())
    for event in report.degradations:
        print(f"  event {event.position}: {event.rung} "
              f"({event.trigger}) -> {event.detail}")
    return 1 if warning_count else 0


def _fast_forward_enabled(args: argparse.Namespace) -> bool:
    """Packed input + fast-forward not disabled on the command line."""
    return not args.no_fast_forward and _is_packed(args.trace)


def _region_memo(args: argparse.Namespace):
    """The ``--memoize`` memo table, or ``None`` when the flag is off."""
    if not getattr(args, "memoize", False):
        return None
    from repro.core.memo import RegionMemo

    return RegionMemo(max_entries=args.memo_max)


def cmd_check(args: argparse.Namespace) -> int:
    if (
        args.resume
        or args.checkpoint
        or args.checkpoint_every
        or args.max_nodes
    ):
        return _check_supervised(args)
    names = _selected_backends(args.backend)
    backends = [resolve_backend(name)() for name in names]
    pipeline = Pipeline(backends, stats=args.stats, memo=_region_memo(args))
    if _fast_forward_enabled(args):
        # Block-granular source: backends fast-forward summarized
        # blocks, and the full trace is only decoded if the warning
        # report actually needs it (--render/--explain).
        from repro.pipeline.source import PackedTraceSource

        pipeline.run(PackedTraceSource(args.trace, jobs=args.jobs))
        trace = lambda: _load_check_trace(args.trace, args.jobs)
    else:
        trace = _load_check_trace(args.trace, args.jobs)
        pipeline.run(TraceSource(trace))
    warning_count = _report_warnings(args, trace, backends)
    if args.stats:
        print(pipeline.metrics().render())
    return 1 if warning_count else 0


def cmd_run(args: argparse.Namespace) -> int:
    program = get(args.workload).program(args.scale)
    result = run_velodrome(
        program,
        seed=args.seed,
        adversarial=args.adversarial,
        record_trace=args.record is not None,
        stats=args.stats,
    )
    labels = sorted(result.labels_from("VELODROME"))
    truth = program.non_atomic_methods
    print(f"{program.name}: {result.run.events} events, "
          f"{result.run.threads} threads, {result.elapsed:.3f}s")
    print(f"velodrome warnings: {labels or 'none'}")
    if labels:
        real = [label for label in labels if label in truth]
        print(f"  genuinely non-atomic: {len(real)}/{len(labels)} "
              f"(ground truth has {len(truth)})")
    if args.record is not None:
        count = save_trace(result.trace, args.record)
        print(f"recorded {count} events to {args.record}")
    if args.stats and result.metrics is not None:
        print(result.metrics.render())
    return 0 if not labels else 1


def cmd_random(args: argparse.Namespace) -> int:
    # Shares the fuzzer's seed-to-program mapping (including the
    # server-workload pool draw) so `repro random --seed N --record F`
    # reproduces fuzz iteration recordings byte-identically.
    from repro.fuzz.engine import program_for_seed

    program = program_for_seed(args.seed)
    result = run_velodrome(program, seed=args.seed, record_trace=True)
    print(f"{program.name}: {result.run.events} events, "
          f"{len(result.warnings)} warning(s)")
    if args.record is not None:
        count = save_trace(result.trace, args.record)
        print(f"recorded {count} events to {args.record}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    if args.serve:
        return _fuzz_serve(args)
    if args.replay is not None:
        checks = replay_corpus(args.replay, crash=args.crash, seed=args.seed,
                               jobs=args.jobs)
        if not checks:
            print(f"no corpus traces under {args.replay}")
            return 0
        dirty = 0
        for path, check in checks.items():
            verdict = "serializable" if check.serializable else "not serializable"
            if check.clean:
                print(f"{path}: agreement ({verdict})")
            else:
                dirty += 1
                print(f"{path}: DIVERGES ({verdict})")
                for divergence in check.divergences:
                    print(f"  {divergence}")
        print(f"replayed {len(checks)} trace(s), {dirty} diverging")
        return 1 if dirty else 0

    config = FuzzConfig(
        budget=args.budget,
        seed=args.seed,
        shrink=args.shrink,
        stats=args.stats,
        crash=args.crash,
        corpus_dir=pathlib.Path(args.corpus) if args.corpus else None,
        corpus_format=args.corpus_format,
        configs=default_grid() if args.quick else None,
        jobs=args.jobs,
    )

    def on_finding(finding):
        print(f"iteration {finding.index} (seed {finding.seed}): "
              f"{len(finding.divergences)} divergence(s)")
        for divergence in finding.divergences:
            print(f"  {divergence}")
        if finding.shrunk is not None:
            shrunk = finding.shrunk
            print(f"  shrunk {shrunk.original_events} -> {shrunk.events} "
                  f"events ({shrunk.evaluations} evaluations)")
        if finding.corpus_path is not None:
            print(f"  repro saved to {finding.corpus_path}")

    with GracefulShutdown() as shutdown:
        report = FuzzEngine(config).run(
            on_finding=on_finding, stop_check=shutdown.check
        )
        interrupted = shutdown.triggered
    print(report.summary())
    if args.stats and report.metrics is not None:
        print(report.metrics.render())
    if interrupted:
        print("fuzz campaign interrupted; report covers completed "
              "iterations only", file=sys.stderr)
        return EXIT_INTERRUPTED
    return 0 if report.clean else 1


def _fuzz_serve(args: argparse.Namespace) -> int:
    """The ``fuzz --serve`` lane: daemon crash-equivalence per seed.

    Each iteration builds a throwaway spool, runs a reference oneshot
    daemon, then a daemon that is ``kill -9``'d mid-ingest and
    restarted, and requires stream-for-stream identical verdicts (see
    :func:`repro.fuzz.faults.serve_crash_divergences`).  Odd
    iterations add the snapshot-less ``aerodrome`` backend to exercise
    the replay-from-origin path.
    """
    from repro.fuzz.engine import iteration_seeds
    from repro.fuzz.faults import serve_crash_divergences

    dirty = 0
    interrupted = False
    with GracefulShutdown() as shutdown:
        for index, seed in enumerate(
            iteration_seeds(args.seed, args.budget)
        ):
            if shutdown.triggered:
                interrupted = True
                break
            backends = (
                ("velodrome",) if index % 2 == 0
                else ("velodrome", "aerodrome")
            )
            divergences = serve_crash_divergences(
                seed, backends=backends, crash=args.crash
            )
            if divergences:
                dirty += 1
                print(f"iteration {index} (seed {seed}, "
                      f"backends {','.join(backends)}): "
                      f"{len(divergences)} divergence(s)")
                for divergence in divergences:
                    print(f"  {divergence}")
    print(f"serve equivalence: {args.budget} iteration(s), "
          f"{dirty} diverging")
    if interrupted:
        return EXIT_INTERRUPTED
    return 1 if dirty else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import RetryPolicy, ServeConfig, ServeDaemon

    names = _selected_backends(args.backend)
    budgets = Budgets(
        max_live_nodes=args.max_nodes,
        check_interval=(
            min(256, max(1, args.max_nodes)) if args.max_nodes else 256
        ),
    )
    config = ServeConfig(
        spool_dir=pathlib.Path(args.spool),
        state_dir=(
            pathlib.Path(args.state_dir) if args.state_dir else None
        ),
        backends=tuple(names),
        jobs=args.jobs,
        checkpoint_every=args.checkpoint_every,
        budgets=budgets,
        on_pressure=args.on_pressure,
        no_snapshot=args.no_snapshot,
        retry=RetryPolicy(max_attempts=args.retry_attempts),
        poll_interval=args.poll_interval,
        settle_seconds=args.settle_seconds,
        http_port=args.http_port,
        socket_path=(
            pathlib.Path(args.socket) if args.socket else None
        ),
        memoize=args.memoize,
        memo_max=args.memo_max,
        lab_digests=(
            pathlib.Path(args.lab_digests) if args.lab_digests else None
        ),
    )
    with GracefulShutdown() as shutdown:
        daemon = ServeDaemon(config, shutdown=shutdown)
        daemon.start_endpoints()
        if daemon.metrics_server is not None:
            print(f"metrics on http://127.0.0.1:"
                  f"{daemon.metrics_server.port}/metrics", flush=True)
        if config.socket_path is not None:
            print(f"ingest socket at {config.socket_path}", flush=True)
        code = daemon.run(oneshot=args.oneshot,
                          max_rounds=args.max_rounds)
    counts = daemon.registry.counts()
    summary = ", ".join(
        f"{status}={count}" for status, count in sorted(counts.items())
    ) or "no streams"
    print(f"serve: {summary}", flush=True)
    return code


def cmd_trace_pack(args: argparse.Namespace) -> int:
    from repro.store.writer import save_packed

    trace = load_trace(args.source)
    written = save_packed(
        list(trace), args.dest,
        block_ops=args.block_size, compress_level=args.level,
    )
    src_bytes = pathlib.Path(args.source).stat().st_size
    dst_bytes = pathlib.Path(args.dest).stat().st_size
    ratio = src_bytes / dst_bytes if dst_bytes else 0.0
    print(f"packed {written} ops: {src_bytes} -> {dst_bytes} bytes "
          f"({ratio:.1f}x)")
    return 0


def cmd_trace_unpack(args: argparse.Namespace) -> int:
    if args.tolerant:
        from repro.resilience.quarantine import LENIENT
        from repro.store.reader import load_packed_tolerant

        trace, quarantine = load_packed_tolerant(args.source, LENIENT)
        if quarantine.faults:
            print(quarantine.summary(), file=sys.stderr)
    else:
        trace = _load_check_trace(args.source, args.jobs)
    count = save_trace(trace, args.dest)
    print(f"unpacked {count} ops to {args.dest}")
    return 0


def _summary_json(summary) -> dict:
    """One block summary as a JSON-ready dict (``trace info --json``)."""
    return {
        "block": summary.number,
        "first_seq": summary.first_seq,
        "last_seq": summary.last_seq,
        "ops": summary.op_count,
        "tids": list(summary.tids),
        "histogram": {
            "read": summary.reads, "write": summary.writes,
            "acquire": summary.acquires, "release": summary.releases,
            "begin": summary.begins, "end": summary.ends,
        },
        "variables": len(summary.variables),
        "locks": len(summary.locks),
        "foldable": summary.foldable,
    }


def _region_scan_json(scan) -> dict:
    """A :class:`~repro.core.memo.RegionScan` as a JSON-ready dict."""
    return {
        "regions": scan.regions,
        "repeated": scan.repeated,
        "contiguous": scan.contiguous,
        "region_events": scan.region_events,
        "total_events": scan.total_events,
        "repetition_ratio": round(scan.repetition_ratio, 4),
        "region_event_ratio": round(scan.region_event_ratio, 4),
        "top": [
            {
                "digest": digest, "count": count,
                "ops": op_count, "label": label,
            }
            for digest, count, op_count, label in scan.top
        ],
    }


def _render_region_scan(scan) -> str:
    """The ``trace info --regions`` table."""
    lines = [
        f"  regions: {scan.regions} "
        f"({scan.repeated} repeat occurrences, "
        f"{scan.contiguous} contiguous), "
        f"repetition {scan.repetition_ratio:.1%}, "
        f"{scan.region_events}/{scan.total_events} events in regions "
        f"({scan.region_event_ratio:.1%})",
    ]
    if scan.top:
        lines.append(f"  {'digest':>14} {'count':>7} {'ops':>5}  label")
        for digest, count, op_count, label in scan.top:
            lines.append(f"  {digest:>14} {count:>7} {op_count:>5}  "
                         f"{label or '-'}")
    return "\n".join(lines)


def cmd_trace_info(args: argparse.Namespace) -> int:
    import json

    from repro.store.reader import PackedTraceReader

    scan = None
    if args.regions:
        from repro.core.memo import scan_regions

        with PackedTraceReader(args.file) as reader:
            scan = scan_regions(reader.seek(0), top=args.top)
    with PackedTraceReader(args.file) as reader:
        if args.json:
            # v1 files have no stored summaries; reconstruct them from
            # one decode pass per block.
            info = reader.info()
            payload = {
                "path": str(args.file),
                "version": info.version,
                "block_ops": info.block_ops,
                "blocks": info.blocks,
                "ops": info.ops,
                "payload_bytes": info.payload_bytes,
                "summaries": [
                    _summary_json(
                        reader.block_summary(b.number, reconstruct=True)
                    )
                    for b in reader.blocks
                ],
            }
            if scan is not None:
                payload["regions"] = _region_scan_json(scan)
            print(json.dumps(payload, indent=2))
            return 0
        print(reader.info().render())
        if scan is not None:
            print(_render_region_scan(scan))
        if args.blocks:
            print(f"  {'block':>5} {'offset':>10} {'bytes':>8} "
                  f"{'ops':>6} {'seqs':>15}")
            for block in reader.blocks:
                print(f"  {block.number:>5} {block.byte_offset:>10} "
                      f"{block.comp_len:>8} {block.op_count:>6} "
                      f"{block.first_seq:>6}..{block.last_seq}")
        if args.summaries:
            print(f"  {'block':>5} {'seqs':>15} {'tids':>12} "
                  f"{'vars':>5} {'locks':>5} "
                  f"{'rd':>6} {'wr':>6} {'acq':>5} {'rel':>5} "
                  f"{'beg':>5} {'end':>5}  fold")
            for block in reader.blocks:
                s = reader.block_summary(block.number, reconstruct=True)
                seqs = f"{s.first_seq}..{s.last_seq}"
                tids = ",".join(str(t) for t in s.tids)
                if len(tids) > 12:
                    tids = tids[:9] + "..."
                print(f"  {s.number:>5} {seqs:>15} {tids:>12} "
                      f"{len(s.variables):>5} {len(s.locks):>5} "
                      f"{s.reads:>6} {s.writes:>6} {s.acquires:>5} "
                      f"{s.releases:>5} {s.begins:>5} {s.ends:>5}  "
                      f"{'yes' if s.foldable else 'no'}")
    return 0


def cmd_trace_cat(args: argparse.Namespace) -> int:
    from repro.store.reader import PackedTraceReader

    shown = 0
    with PackedTraceReader(args.file) as reader:
        start = args.start
        if start >= reader.total_ops:
            print(f"position {start} past the last operation "
                  f"({reader.total_ops} total)", file=sys.stderr)
            return 2
        for seq, op in enumerate(reader.seek(start), start=start):
            print(f"{seq}: {op}")
            shown += 1
            if args.limit is not None and shown >= args.limit:
                break
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.workloads.server import SERVER_FAMILIES

    for workload in all_workloads():
        table2 = workload.table2
        if workload.name in SERVER_FAMILIES:
            # Server families carry scale points and ground truth
            # instead of paper rows; `repro lab list` shows those.
            print(f"{workload.name:12s} {workload.description:40s} "
                  f"(server family; see `repro lab list`)")
            continue
        if table2 is None:
            # Synthetic workloads (e.g. request_loop) have no paper row.
            print(f"{workload.name:12s} {workload.description:40s} "
                  f"(synthetic; no paper row)")
            continue
        print(f"{workload.name:12s} {workload.description:40s} "
              f"(paper: {table2.velodrome_non_serial} non-atomic, "
              f"{table2.atomizer_false_alarms} Atomizer FAs)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Velodrome: sound and complete dynamic atomicity checking",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="analyse a recorded trace file")
    check.add_argument("trace",
                       help="trace file (.vtrc packed, .jsonl, or DSL "
                            "text; format sniffed from content)")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="decode a packed trace's blocks across N "
                            "worker processes (default 1; no effect on "
                            "other formats)")
    check.add_argument("--backend", action="append",
                       choices=sorted(BACKENDS) + ["all"], default=None,
                       help="analysis to run; repeatable, 'all' selects "
                            "every backend (default: velodrome)")
    check.add_argument("--dot", metavar="DIR",
                       help="write dot error graphs into DIR")
    check.add_argument("--render", action="store_true",
                       help="print the thread-column trace diagram")
    check.add_argument("--explain", action="store_true",
                       help="print full explanations (cycle story, "
                            "marked diagram) for each warning")
    check.add_argument("--no-fast-forward", action="store_true",
                       help="always decode packed blocks and replay "
                            "op-by-op, ignoring stored block summaries")
    check.add_argument("--stats", action="store_true",
                       help="print pipeline metrics after the analysis")
    check.add_argument("--memoize", action="store_true",
                       help="memoize repeated transaction regions: the "
                            "first occurrence of a region shape is "
                            "certified op-by-op and summarized; later "
                            "occurrences apply the cached summary when "
                            "the backend's dynamic preconditions hold "
                            "(verdicts are replay-identical; see "
                            "docs/performance.md)")
    check.add_argument("--memo-max", type=int, default=DEFAULT_MEMO_MAX,
                       metavar="N",
                       help="memo table capacity in region shapes; least-"
                            "recently-used shapes evict beyond it, and 0 "
                            "disables caching while keeping the counters "
                            f"(default {DEFAULT_MEMO_MAX})")
    check.add_argument("--checkpoint", metavar="FILE",
                       help="snapshot file for the supervised runtime; a "
                            "final checkpoint is always written, and "
                            "--checkpoint-every adds periodic ones")
    check.add_argument("--checkpoint-every", type=int, metavar="N",
                       help="write a checkpoint every N events "
                            "(requires --checkpoint)")
    check.add_argument("--resume", metavar="FILE",
                       help="resume the analysis from a snapshot file; "
                            "the trace is skipped up to the snapshot's "
                            "position and verdicts match an "
                            "uninterrupted run")
    check.add_argument("--max-nodes", type=int, metavar="N",
                       help="budget on live happens-before nodes; "
                            "crossing it climbs the degradation ladder "
                            "instead of failing")
    check.add_argument("--on-pressure", choices=("degrade", "fail"),
                       default="degrade",
                       help="what the ladder's last rung may do: reset "
                            "the happens-before window (sound, flagged) "
                            "or re-raise the exhaustion (default: "
                            "degrade)")
    check.set_defaults(func=cmd_check)

    run = commands.add_parser("run", help="run a benchmark workload")
    run.add_argument("workload")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--adversarial", action="store_true")
    run.add_argument("--record", metavar="FILE",
                     help="save the observed trace")
    run.add_argument("--stats", action="store_true",
                     help="print pipeline metrics after the run")
    run.set_defaults(func=cmd_run)

    rand = commands.add_parser("random", help="run a random program")
    rand.add_argument("--seed", type=int, default=0)
    rand.add_argument("--record", metavar="FILE")
    rand.set_defaults(func=cmd_random)

    fz = commands.add_parser(
        "fuzz", help="differential-fuzz the ablation grid vs the oracle"
    )
    fz.add_argument("--budget", type=int, default=100,
                    help="number of random traces to generate (default 100)")
    fz.add_argument("--seed", type=int, default=0,
                    help="base seed; every iteration seed derives from it")
    fz.add_argument("--shrink", action="store_true",
                    help="delta-debug diverging traces to a minimal repro")
    fz.add_argument("--crash", action="store_true",
                    help="also kill each configuration at a random event "
                         "and resume it from a checkpoint file, and replay "
                         "fault-laced recordings through the hardened "
                         "reader; recovered runs must match exactly")
    fz.add_argument("--quick", action="store_true",
                    help="sweep the four-configuration smoke grid instead "
                         "of the full ablation grid")
    fz.add_argument("--stats", action="store_true",
                    help="print aggregated pipeline metrics after the run")
    fz.add_argument("--corpus", metavar="DIR",
                    help="persist (shrunken) repros into DIR "
                         f"(conventionally {DEFAULT_CORPUS})")
    fz.add_argument("--corpus-format", choices=("jsonl", "vtrc"),
                    default="jsonl",
                    help="on-disk format for persisted repros; entries "
                         "dedupe by content hash across formats "
                         "(default jsonl)")
    fz.add_argument("--replay", metavar="DIR",
                    help="re-check the corpus under DIR instead of fuzzing")
    fz.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="shard iterations (or replayed files) across N "
                         "worker processes; output is byte-identical to "
                         "a serial run (default 1)")
    fz.add_argument("--serve", action="store_true",
                    help="fuzz the serve daemon instead: per seed, build "
                         "a spool, kill -9 a daemon mid-ingest, restart "
                         "it, and require verdicts identical to an "
                         "uninterrupted run (--crash adds checker-level "
                         "crash/fault lanes per stream)")
    fz.set_defaults(func=cmd_fuzz)

    serve = commands.add_parser(
        "serve", help="always-on checking daemon over a spool directory"
    )
    serve.add_argument("spool",
                       help="watched directory; every stable trace file "
                            "dropped into it becomes one checked stream")
    serve.add_argument("--state-dir", metavar="DIR",
                       help="registry/checkpoint/quarantine state "
                            "(default: SPOOL/.serve)")
    serve.add_argument("--backend", action="append",
                       choices=sorted(BACKENDS) + ["all"], default=None,
                       help="analysis each stream runs under; repeatable "
                            "(default: velodrome)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard concurrent streams across N worker "
                            "processes (default 1: serial, in-process)")
    serve.add_argument("--checkpoint-every", type=int, default=1024,
                       metavar="N",
                       help="events between periodic checkpoints within "
                            "each stream (default 1024)")
    serve.add_argument("--max-nodes", type=int, metavar="N",
                       help="global live-node budget, divided across "
                            "active streams each round")
    serve.add_argument("--on-pressure", choices=("degrade", "fail"),
                       default="degrade",
                       help="per-stream degradation ladder ceiling, as "
                            "in 'check' (default: degrade)")
    serve.add_argument("--no-snapshot", choices=("replay", "fail"),
                       default="replay",
                       help="policy when the backend selection cannot be "
                            "checkpointed: declare streams "
                            "replay-from-origin, or reject them up "
                            "front (default: replay)")
    serve.add_argument("--retry-attempts", type=int, default=3,
                       metavar="N",
                       help="attempts per stream before it is parked "
                            "(default 3; backoff doubles in between)")
    serve.add_argument("--poll-interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="spool scan interval when idle (default 0.25)")
    serve.add_argument("--settle-seconds", type=float, default=1.0,
                       metavar="SECONDS",
                       help="age before a still-changing file is "
                            "considered fully written (default 1.0)")
    serve.add_argument("--http-port", type=int, metavar="PORT",
                       help="serve /metrics, /streams, /healthz on this "
                            "localhost port (0 = ephemeral, printed on "
                            "startup)")
    serve.add_argument("--socket", metavar="PATH",
                       help="accept trace uploads on this unix socket "
                            "(one connection = one complete trace)")
    serve.add_argument("--memoize", action="store_true",
                       help="memoize repeated transaction regions inside "
                            "every stream's checker (as in 'check "
                            "--memoize'); memo counters appear on "
                            "/metrics")
    serve.add_argument("--memo-max", type=int, default=DEFAULT_MEMO_MAX,
                       metavar="N",
                       help="per-stream memo table capacity "
                            f"(default {DEFAULT_MEMO_MAX})")
    serve.add_argument("--lab-digests", metavar="FILE",
                       help="digest map from 'repro lab run --digests'; "
                            "streams whose content matches a lab trace "
                            "are tagged with their workload_family on "
                            "/streams and counted on /metrics")
    serve.add_argument("--oneshot", action="store_true",
                       help="exit once every known stream is terminal "
                            "instead of polling forever")
    serve.add_argument("--max-rounds", type=int, metavar="N",
                       help=argparse.SUPPRESS)
    serve.set_defaults(func=cmd_serve)

    tr = commands.add_parser(
        "trace", help="packed trace store utilities (pack/unpack/info/cat)"
    )
    verbs = tr.add_subparsers(dest="verb", required=True)

    pack = verbs.add_parser(
        "pack", help="re-encode a recording as a packed .vtrc file"
    )
    pack.add_argument("source", help="input recording (any format)")
    pack.add_argument("dest", help="output packed trace file")
    pack.add_argument("--block-size", type=int, default=512, metavar="N",
                      help="operations per block (default 512); smaller "
                           "blocks seek finer, larger compress better")
    pack.add_argument("--level", type=int, default=6, metavar="L",
                      help="zlib compression level 0-9 (default 6)")
    pack.set_defaults(func=cmd_trace_pack)

    unpack = verbs.add_parser(
        "unpack", help="convert a recording to the format DEST's "
                       "extension selects (.jsonl/.vtrc, else DSL)"
    )
    unpack.add_argument("source", help="input recording (any format)")
    unpack.add_argument("dest", help="output trace file")
    unpack.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="decode packed blocks across N workers")
    unpack.add_argument("--tolerant", action="store_true",
                        help="salvage a damaged packed trace: skip "
                             "quarantined blocks instead of failing "
                             "(prints the fault summary to stderr)")
    unpack.set_defaults(func=cmd_trace_unpack)

    info = verbs.add_parser(
        "info", help="print a packed trace's layout summary"
    )
    info.add_argument("file", help="packed .vtrc trace file")
    info.add_argument("--summaries", action="store_true",
                      help="print the per-block summary table (tids, "
                           "footprint sizes, op histogram, seq range); "
                           "v1 files reconstruct summaries by decoding")
    info.add_argument("--json", action="store_true",
                      help="emit layout and per-block summaries as JSON")
    info.add_argument("--blocks", action="store_true",
                      help="also list every block (offset, size, seqs)")
    info.add_argument("--regions", action="store_true",
                      help="scan for repeated transaction regions: "
                           "occurrence counts per region shape, "
                           "repetition ratio, and the top shapes — the "
                           "numbers that predict --memoize's payoff "
                           "(decodes the whole trace)")
    info.add_argument("--top", type=int, default=10, metavar="K",
                      help="shapes listed by --regions (default 10)")
    info.set_defaults(func=cmd_trace_info)

    cat = verbs.add_parser(
        "cat", help="print operations, seeking via the block index"
    )
    cat.add_argument("file", help="packed .vtrc trace file")
    cat.add_argument("--start", type=int, default=0, metavar="SEQ",
                     help="first stream position to print (default 0); "
                          "only the blocks shown are decoded")
    cat.add_argument("--limit", type=int, default=None, metavar="N",
                     help="stop after N operations")
    cat.set_defaults(func=cmd_trace_cat)

    wl = commands.add_parser("workloads", help="list benchmark workloads")
    wl.set_defaults(func=cmd_workloads)

    for name, module in (
        ("table1", harness_table1),
        ("table2", harness_table2),
        ("inject", harness_injection),
        ("report", harness_report),
        ("sensitivity", harness_sensitivity),
    ):
        sub = commands.add_parser(
            name, help=f"regenerate the paper's {name} experiment",
            add_help=False,
        )
        sub.set_defaults(func=None, harness_main=module.main)

    bench = commands.add_parser(
        "bench",
        help="measure serial and --jobs throughput (writes "
             "BENCH_parallel.json); 'bench store' measures the packed "
             "trace store (writes BENCH_store.json); 'bench backends' "
             "races the graph vs vector-clock checkers (writes "
             "BENCH_backends.json); 'bench memo' races region "
             "memoization on vs off (writes BENCH_memo.json)",
        add_help=False,
    )
    bench.set_defaults(func=None, harness_main=parallel_bench.main)

    lab = commands.add_parser(
        "lab",
        help="server-workload experiment driver: 'lab run' executes a "
             "workload × backend × scale matrix with per-cell "
             "ground-truth gates, 'lab list' shows the families, "
             "'lab report' renders stored results as markdown",
        add_help=False,
    )
    lab.set_defaults(func=None, harness_main=_lab_main)
    return parser


def _lab_main(argv):
    # Imported lazily: the experiments package pulls the parallel
    # executor and the server families, none of which the lightweight
    # CLI paths (check/run/random) need.
    from repro.experiments.lab import main as lab_main

    lab_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    # Harness subcommands forward their remaining arguments untouched.
    if argv and argv[0] in ("table1", "table2", "inject", "report",
                            "sensitivity", "bench", "lab"):
        args, rest = parser.parse_known_args(argv[:1])
        args.harness_main(argv[1:])
        return 0
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
