"""Graceful SIGTERM/SIGINT handling for long-running commands.

``repro serve``, ``repro check --checkpoint``, and ``repro fuzz`` can
run for hours; an operator stopping one (or an orchestrator draining a
node) sends SIGTERM and expects the process to *finish cleanly*: take a
final checkpoint, flush its reports, and exit with a code that says
"interrupted on request" rather than "crashed" or "found warnings".

:class:`GracefulShutdown` installs handlers that only set a flag — no
work happens in signal context — and the long-running loops poll it at
their natural safe points (between events for the supervised checker,
between iterations for the fuzzer, between rounds for the serve
daemon).  :meth:`GracefulShutdown.check` raises
:class:`ShutdownRequested` from those points; callers catch it, finish
their shutdown work, and exit with :data:`EXIT_INTERRUPTED`.

The previous handlers are restored on exit, so nesting (a supervised
check inside a test harness) behaves.
"""

from __future__ import annotations

import signal
import threading
from typing import Optional

#: Exit status of a command stopped by SIGTERM/SIGINT after a clean
#: shutdown (final checkpoint written, reports flushed).  Distinct from
#: 0 (completed), 1 (warnings/divergences), and 2 (usage error);
#: 75 is EX_TEMPFAIL — "try again later", which a checkpointed
#: interruption literally is.
EXIT_INTERRUPTED = 75

#: Signals a graceful shutdown responds to.
SHUTDOWN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class ShutdownRequested(Exception):
    """A shutdown signal arrived; unwind to the cleanup point."""

    def __init__(self, signum: int):
        super().__init__(f"shutdown requested by signal {signum}")
        self.signum = signum


class GracefulShutdown:
    """Context manager: latch shutdown signals instead of dying.

    Usage::

        with GracefulShutdown() as shutdown:
            for item in work:
                shutdown.check()   # raises ShutdownRequested
                process(item)

    or poll :attr:`triggered` where an exception is inconvenient.
    Handlers are process-global, so enter this only from the main
    thread (Python delivers signals there); worker threads share the
    latch through the instance.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signum: Optional[int] = None
        self._previous: dict[int, object] = {}

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "GracefulShutdown":
        for signum in SHUTDOWN_SIGNALS:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous.clear()

    def _handle(self, signum, _frame) -> None:
        # Only latch; all real work happens at the caller's safe point.
        self.signum = signum
        self._event.set()

    # ---------------------------------------------------------------- status
    @property
    def triggered(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`ShutdownRequested` if a signal has arrived."""
        if self._event.is_set():
            raise ShutdownRequested(self.signum or 0)

    def wait(self, timeout: float) -> bool:
        """Sleep up to ``timeout`` seconds, waking early on a signal."""
        return self._event.wait(timeout)

    def request(self, signum: int = signal.SIGTERM) -> None:
        """Trigger programmatically (tests, in-process embedding)."""
        self._handle(signum, None)
