"""A bounded append-only log: keeps the newest entries, counts the rest.

Long-lived deployments accumulate diagnostic records without bound —
quarantine faults on a garbage stream, governor interventions on a
thrashing workload, per-stream activity samples in the serve daemon.
Each record is small, but "small times forever" is how one pathological
tenant exhausts a daemon's memory.  :class:`RingLog` is the shared
answer: a list-like container that retains at most ``maxlen`` entries,
silently evicting the *oldest* when full, while :attr:`total` and
:attr:`dropped` keep exact counts so reports never mistake a capped log
for a short one.

Unlike :class:`collections.deque`, a :class:`RingLog` supports slicing
and remembers how much it forgot — both of which the existing fault and
degradation reports rely on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar

from collections import deque

T = TypeVar("T")

#: Default retention for diagnostic logs.  Big enough that any
#: plausible debugging session sees the interesting tail; small enough
#: that a million-fault stream costs kilobytes, not gigabytes.
DEFAULT_RETAINED = 1024


class RingLog:
    """An append-only log retaining only the newest ``maxlen`` entries.

    Attributes:
        maxlen: retention cap (``None`` = unbounded, behaves as a list).
        total: entries ever appended, including evicted ones.
        dropped: entries evicted to honor the cap.
    """

    __slots__ = ("_entries", "maxlen", "total")

    def __init__(self, maxlen: int | None = DEFAULT_RETAINED,
                 entries: Iterable[T] = ()):
        if maxlen is not None and maxlen < 1:
            raise ValueError("maxlen must be >= 1 when set")
        self.maxlen = maxlen
        self._entries: deque = deque(maxlen=maxlen)
        self.total = 0
        for entry in entries:
            self.append(entry)

    @property
    def dropped(self) -> int:
        return self.total - len(self._entries)

    def append(self, entry: T) -> None:
        # deque's own maxlen does the eviction; total keeps the truth.
        self._entries.append(entry)
        self.total += 1

    def extend(self, entries: Iterable[T]) -> None:
        for entry in entries:
            self.append(entry)

    def clear(self) -> None:
        """Forget everything, counters included (a fresh log)."""
        self._entries.clear()
        self.total = 0

    def __len__(self) -> int:
        """Retained entries (use :attr:`total` for the true count)."""
        return len(self._entries)

    def __iter__(self) -> Iterator[T]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._entries)[index]
        return self._entries[index]

    def __eq__(self, other) -> bool:
        """Equal to any sequence of the *retained* entries."""
        if isinstance(other, RingLog):
            return self._entries == other._entries
        if isinstance(other, (list, tuple)):
            return list(self._entries) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        cap = "unbounded" if self.maxlen is None else f"cap {self.maxlen}"
        return (f"RingLog({len(self._entries)} retained of {self.total}, "
                f"{cap})")
