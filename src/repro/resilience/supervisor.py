"""The supervised checker runtime: checkpoints, recovery, budgets.

:class:`SupervisedChecker` wraps a group of analysis backends the way
:class:`~repro.pipeline.core.Pipeline` does — it is an event sink and
can drain any :class:`~repro.pipeline.source.EventSource` — but adds
the machinery a long-lived deployment needs:

* **periodic checkpoints** — every ``checkpoint_every`` events the
  complete analysis state is written atomically to
  ``checkpoint_path`` (:func:`~repro.resilience.snapshot.
  write_snapshot`); a killed process resumes from the last checkpoint
  with :meth:`SupervisedChecker.resume` and produces byte-identical
  verdicts to an uninterrupted run;
* **exhaustion recovery** — a :class:`~repro.graph.stepcode.
  SlotsExhausted` from a backend no longer kills the run.  The
  supervisor keeps an in-memory *recovery boundary* (a snapshot plus
  the operations seen since); on exhaustion it rolls the failed
  backend back to the boundary with a compacted pool and replays,
  escalating through the governor's degradation ladder if replay hits
  the wall again;
* **resource governance** — between events, each backend's
  :class:`~repro.resilience.governor.ResourceGovernor` probes its
  budgets and intervenes before hard failures happen.

Failures are contained per backend: one exhausted analysis degrades
alone while the others continue unperturbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.core.backend import AnalysisBackend
from repro.core.memo import RegionAssembler, RegionMemo
from repro.events.operations import Operation
from repro.graph.stepcode import SlotsExhausted
from repro.pipeline.source import EventSource, SourceResult
from repro.resilience.governor import (
    Budgets,
    DegradationEvent,
    GovernorError,
    ResourceGovernor,
)
from repro.resilience.snapshot import (
    SnapshotError,
    adopt_state,
    capture_backend,
    previous_snapshot_path,
    read_snapshot,
    restore_backend,
    supports,
    write_snapshot,
)

PathLike = Union[str, Path]

#: How many ladder round-trips one replayed operation may trigger
#: before the supervisor concludes nothing can save it.
MAX_REPLAY_ATTEMPTS = 3


class _BlockEntry:
    """A buffered packed block, decoded only if a recovery replays it.

    Fully fast-forwarded blocks were never decoded; buffering the
    summary plus the decode thunk keeps that saving unless an
    exhaustion later in the window actually forces a replay.
    """

    __slots__ = ("summary", "_decode", "_ops")

    def __init__(self, summary, decode, ops=None):
        self.summary = summary
        self._decode = decode
        self._ops = ops

    def ops(self):
        if self._ops is None:
            self._ops = self._decode()
        return self._ops


@dataclass(frozen=True)
class SupervisedReport:
    """What happened during a supervised run."""

    events: int
    checkpoints_written: int
    recoveries: int
    degraded: bool
    degradations: tuple[DegradationEvent, ...]

    def summary(self) -> str:
        flag = " [DEGRADED COMPLETENESS]" if self.degraded else ""
        return (
            f"supervised: {self.events} events, "
            f"{self.checkpoints_written} checkpoints, "
            f"{self.recoveries} recoveries, "
            f"{len(self.degradations)} interventions{flag}"
        )


class SupervisedChecker:
    """Run backends under supervision; an event sink like a pipeline.

    Args:
        backends: the analyses to feed, in order.
        checkpoint_every: write a snapshot every this many events
            (``None`` disables periodic checkpoints).
        checkpoint_path: where snapshots go; required when
            ``checkpoint_every`` is set, optional otherwise (a final
            checkpoint can still be requested with :meth:`checkpoint`).
        budgets: resource budgets enforced per backend.
        on_pressure: ``"degrade"`` lets the governor's final rung reset
            the happens-before window (sound, flagged, run completes);
            ``"fail"`` re-raises the original exhaustion instead.
        recovery_window: events between in-memory recovery boundaries.
            Defaults to ``checkpoint_every`` when set, else 256.
            Smaller windows make exhaustion recovery cheaper but
            capture state more often.
        start_position: stream position of the first event this
            instance will see (non-zero when resuming).
        checkpoint_meta: optional provenance stored in every snapshot
            envelope — a JSON-serializable dict, or a callable
            receiving the checkpoint position and returning one (used
            to record the packed trace's block-aligned resume offset,
            which depends on the position being checkpointed).
        stop_check: optional zero-argument callable invoked before
            each event (and each block) is processed.  It may raise
            :class:`~repro.resilience.shutdown.ShutdownRequested` to
            unwind the run at a consistent cut — no event
            half-processed — so the caller can take a final checkpoint
            and exit cleanly (graceful SIGTERM handling).
        memo: a :class:`~repro.core.memo.RegionMemo` enabling region
            memoization: a :class:`~repro.core.memo.RegionAssembler`
            buffers transaction-bounded regions in front of the per-op
            path and offers repeated shapes to the backends as
            summaries (decliners replay).  Positions, checkpoints, and
            recovery are unaffected: operations still held by the
            assembler are not counted in :attr:`position`, so a resume
            re-reads them from the source and re-assembles — verdicts
            stay byte-identical to an unmemoized run.  The memo table
            itself is transient (rebuilt cold after a resume), never
            part of a snapshot.
    """

    def __init__(
        self,
        backends: Sequence[AnalysisBackend],
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[PathLike] = None,
        budgets: Optional[Budgets] = None,
        on_pressure: str = "degrade",
        recovery_window: Optional[int] = None,
        start_position: int = 0,
        checkpoint_meta=None,
        stop_check: Optional[Callable[[], None]] = None,
        memo: Optional[RegionMemo] = None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError(
                "checkpoint_every requires a checkpoint_path"
            )
        self.backends = list(backends)
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.budgets = budgets if budgets is not None else Budgets()
        self.governors = [
            ResourceGovernor(backend, self.budgets, on_pressure=on_pressure)
            for backend in self.backends
        ]
        self.on_pressure = on_pressure
        if recovery_window is None:
            recovery_window = (
                checkpoint_every if checkpoint_every is not None else 256
            )
        if recovery_window < 1:
            raise ValueError("recovery_window must be >= 1")
        self.recovery_window = recovery_window
        self.checkpoint_meta = checkpoint_meta
        self.stop_check = stop_check
        #: Which checkpoint file this run was rebuilt from (``None``
        #: for a fresh run); the fallback resume sets it to the
        #: ``.prev`` generation when the primary was unreadable.
        self.resumed_from: Optional[Path] = None
        self.position = start_position
        #: Position of the newest on-disk checkpoint; ``position``
        #: minus this is the re-work bound ("checkpoint lag") a crash
        #: right now would cost.
        self.last_checkpoint_position = start_position
        self.checkpoints_written = 0
        self.recoveries = 0
        # Backends without a snapshot codec (e.g. AeroDrome) can still
        # run supervised — governor budgets and stop checks apply —
        # but they have no recovery boundary: exhaustion re-raises
        # instead of rolling back, and checkpoint() rejects them.
        self._boundary: list[Optional[dict]] = [
            capture_backend(backend) if supports(backend) else None
            for backend in self.backends
        ]
        #: Operations (and undecoded block entries) since the boundary.
        self._buffer: list = []
        self._buffered_ops = 0
        #: [first_seq, last_seq] spans every backend absorbed from
        #: summaries alone — recorded into checkpoint meta so a resumed
        #: run can see which stretches were never decoded.
        self._ff_ranges: list[list[int]] = []
        self.memo = memo
        self._assembler: Optional[RegionAssembler] = None
        if memo is not None:
            # The assembler fronts the per-op path: ``self.process``
            # (an instance attribute shadowing the method) buffers
            # regions and delivers through the original method, which
            # keeps positions, recovery buffers, governor probes, and
            # checkpoint triggers exactly as without memoization.
            deliver = self.process  # the class method, bound
            self._assembler = RegionAssembler(
                deliver, self.process_region, memo
            )
            self.process = self._assembler.process

    # -------------------------------------------------------------- resuming
    @classmethod
    def resume(
        cls, checkpoint_path: PathLike, **options
    ) -> "SupervisedChecker":
        """Rebuild a supervised run from its last checkpoint file.

        The returned checker expects the event stream to continue at
        :attr:`position`; feed it ``ops[checker.position:]`` (or seek
        the recording) and the completed run is byte-identical to one
        that was never interrupted.
        """
        snapshot = read_snapshot(checkpoint_path)
        checker = cls(
            snapshot.restore(),
            checkpoint_path=checkpoint_path,
            start_position=snapshot.position,
            **options,
        )
        checker.resumed_from = Path(checkpoint_path)
        return checker

    @classmethod
    def resume_with_fallback(
        cls, checkpoint_path: PathLike, **options
    ) -> "SupervisedChecker":
        """Resume, falling back to the previous checkpoint generation.

        :meth:`checkpoint` rotates the prior snapshot to
        ``<path>.prev`` before installing a new one, so a checkpoint
        file that was torn or corrupted *after* its atomic write (bad
        disk, truncated copy, bit flips) does not strand the stream:
        this constructor tries the primary file, and on a
        :class:`~repro.resilience.snapshot.SnapshotError` (or a
        missing/unreadable file) restores the ``.prev`` generation
        instead — losing at most one checkpoint interval of progress,
        never restarting from scratch silently.  Check
        :attr:`resumed_from` to see which generation was used.  When
        both generations are bad the error names each one and its
        failure, loudly.
        """
        primary = Path(checkpoint_path)
        failures: list[str] = []
        for candidate in (primary, previous_snapshot_path(primary)):
            try:
                snapshot = read_snapshot(candidate)
                backends = snapshot.restore()
            except (SnapshotError, OSError) as exc:
                failures.append(f"{candidate}: {exc}")
                continue
            checker = cls(
                backends,
                checkpoint_path=primary,
                start_position=snapshot.position,
                **options,
            )
            checker.resumed_from = candidate
            return checker
        raise SnapshotError(
            "no usable checkpoint generation: " + "; ".join(failures)
        )

    # ------------------------------------------------------------ event sink
    def process(self, op: Operation) -> None:
        """Feed one operation to every backend, with recovery."""
        if self.stop_check is not None:
            self.stop_check()
        for index, backend in enumerate(self.backends):
            try:
                backend.process(op)
            except SlotsExhausted as exc:
                self._recover(index, exc, (op,))
        self.position += 1
        self._buffer.append(op)
        self._buffered_ops += 1
        for governor in self.governors:
            if governor.should_check(self.position):
                governor.intervene(self.position)
        if (
            self.checkpoint_every is not None
            and self.position % self.checkpoint_every == 0
        ):
            self.checkpoint()
        elif self._buffered_ops >= self.recovery_window:
            self._refresh_boundary()

    __call__ = process

    def process_block(self, summary, decode) -> None:
        """Feed one packed block to every backend, with recovery.

        Summary-less blocks (v1 recordings, partial resume blocks) are
        replayed through :meth:`process`, op for op.  Otherwise each
        backend is offered the summary
        (:meth:`~repro.core.backend.AnalysisBackend.apply_block_summary`)
        and decliners replay the decoded operations, exactly like the
        pipeline fan-out — plus the supervisor's guarantees: an
        exhaustion anywhere (even inside the fold itself) rolls the
        backend back to the recovery boundary and replays forward.

        Checkpoints and governor probes fire on *interval crossings*
        rather than exact positions — a block advance can jump over a
        multiple of ``checkpoint_every`` — so a block-fed run may
        checkpoint at slightly different positions than an op-fed one.
        Every checkpoint is still a consistent cut; resumes from either
        produce identical verdicts.
        """
        if summary is None:
            for op in decode():
                self.process(op)
            return
        assembler = self._assembler
        if assembler is not None and (
            assembler.buffering
            or summary.histogram[4]  # BEGIN ops (store histogram order)
            or summary.histogram[5]  # END ops
        ):
            # Regions may start, continue, or close inside this block —
            # and while the assembler buffers, the backends lag the
            # stream, so a summary fold must not be offered.  Route the
            # decoded operations through the assembler (self.process).
            process = self.process
            for op in decode():
                process(op)
            return
        if self.stop_check is not None:
            self.stop_check()
        ops = None
        for index, backend in enumerate(self.backends):
            try:
                accepted = backend.apply_block_summary(summary)
            except SlotsExhausted as exc:
                # The fold may have half-applied; the rollback
                # discards it, then the block replays op-wise below.
                self._recover(index, exc)
                accepted = False
            if accepted:
                continue
            if ops is None:
                ops = decode()
            for done, op in enumerate(ops):
                try:
                    backend.process(op)
                except SlotsExhausted as exc:
                    self._recover(index, exc, ops[: done + 1])
        before = self.position
        self.position += summary.op_count
        if ops is None:
            self._record_fast_forward(summary)
        self._buffer.append(_BlockEntry(summary, decode, ops))
        self._buffered_ops += summary.op_count
        for governor in self.governors:
            if governor.should_check_span(before, self.position):
                governor.intervene(self.position)
        if self.checkpoint_every is not None and (
            before // self.checkpoint_every
            != self.position // self.checkpoint_every
        ):
            self.checkpoint()
        elif self._buffered_ops >= self.recovery_window:
            self._refresh_boundary()

    def process_region(self, ops, summary) -> None:
        """Feed one memoized region to every backend, with recovery.

        The region-memoization analog of :meth:`process_block`: each
        backend is offered the cached
        :class:`~repro.core.memo.RegionSummary`
        (:meth:`~repro.core.backend.AnalysisBackend.
        apply_region_summary`); decliners — and any backend whose
        offer raised an exhaustion, after its rollback — replay the
        buffered operations.  Position advances by the whole region,
        so checkpoints and governor probes fire on interval crossings,
        exactly like block advances; the buffered operations join the
        recovery buffer as plain ops.
        """
        if self.stop_check is not None:
            self.stop_check()
        tid = ops[0].tid
        for index, backend in enumerate(self.backends):
            try:
                accepted = backend.apply_region_summary(summary, tid)
            except SlotsExhausted as exc:
                # The offer may have half-applied; the rollback
                # discards it, then the region replays op-wise below.
                self._recover(index, exc)
                accepted = False
            if accepted:
                continue
            for done, op in enumerate(ops):
                try:
                    backend.process(op)
                except SlotsExhausted as exc:
                    self._recover(index, exc, ops[: done + 1])
        before = self.position
        self.position += len(ops)
        self._buffer.extend(ops)
        self._buffered_ops += len(ops)
        for governor in self.governors:
            if governor.should_check_span(before, self.position):
                governor.intervene(self.position)
        if self.checkpoint_every is not None and (
            before // self.checkpoint_every
            != self.position // self.checkpoint_every
        ):
            self.checkpoint()
        elif self._buffered_ops >= self.recovery_window:
            self._refresh_boundary()

    def _record_fast_forward(self, summary) -> None:
        spans = self._ff_ranges
        if spans and spans[-1][1] + 1 == summary.first_seq:
            spans[-1][1] = summary.last_seq
        else:
            spans.append([summary.first_seq, summary.last_seq])

    def finish(self) -> None:
        """Signal end of stream to every backend.

        With memoization on, the assembler's buffer (a region still
        open at end of stream) is drained first so no operation is
        lost — and so the final :attr:`position` counts every event.
        """
        if self._assembler is not None:
            self._assembler.flush()
        for backend in self.backends:
            backend.finish()

    def run(self, source: EventSource) -> SourceResult:
        """Drain ``source`` through the supervised backends.

        Sources offering whole packed blocks (``run_blocks``) are
        drained block-wise so backends may fast-forward.
        """
        run_blocks = getattr(source, "run_blocks", None)
        if run_blocks is not None:
            result = run_blocks(self.process_block)
        else:
            result = source.run(self.process)
        self.finish()
        return result

    # ----------------------------------------------------------- checkpoints
    def checkpoint(self, path: Optional[PathLike] = None) -> Path:
        """Write a snapshot now; returns the file written.

        The prior snapshot is rotated to ``<path>.prev`` first
        (:func:`~repro.resilience.snapshot.previous_snapshot_path`),
        so :meth:`resume_with_fallback` always has one known-good
        generation behind the newest.  Also refreshes the in-memory
        recovery boundary — the state just captured is the newest
        consistent cut.
        """
        target = Path(path) if path is not None else self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        meta = self.checkpoint_meta
        if callable(meta):
            meta = meta(self.position)
        if self._ff_ranges:
            meta = dict(meta) if meta else {}
            meta["fast_forwarded_blocks"] = [
                list(span) for span in self._ff_ranges
            ]
        written = write_snapshot(
            target, self.backends, self.position, meta=meta,
            keep_previous=True,
        )
        self.checkpoints_written += 1
        self.last_checkpoint_position = self.position
        self._refresh_boundary()
        return written

    def _refresh_boundary(self) -> None:
        self._boundary = [
            capture_backend(backend) if supports(backend) else None
            for backend in self.backends
        ]
        self._buffer.clear()
        self._buffered_ops = 0

    # -------------------------------------------------------------- recovery
    def _recover(
        self, index: int, exc: SlotsExhausted, tail: Sequence[Operation] = ()
    ) -> None:
        """Roll backend ``index`` back to the boundary and replay.

        ``tail`` holds the operations this backend saw after the last
        buffered item, ending with the one whose ``process`` failed
        (for a failed block fold, the fold half-applied no *operation*,
        so the tail is empty).  The failed call may have half-applied
        its work (edges added, a node allocated, a warning reported) —
        the rollback discards all of that, so recovery never
        duplicates or loses work.  Undecoded blocks in the buffer are
        decoded here, the first time a recovery actually replays them.
        The restore compacts the step-code pool, which is what usually
        clears the exhaustion; if replay hits the wall again the
        governor's ladder escalates, ending (when permitted) in the
        sound-but-flagged window reset.
        """
        if self.on_pressure == "fail":
            raise
        if self._boundary[index] is None:
            raise   # no codec, no rollback: surface the exhaustion
        self.recoveries += 1
        backend = self.backends[index]
        governor = self.governors[index]
        adopt_state(
            backend, restore_backend(self._boundary[index],
                                     compact_pools=True)
        )
        for replayed in self._replay_stream(tail):
            attempts = 0
            while True:
                rollback = capture_backend(backend)
                try:
                    backend.process(replayed)
                    break
                except SlotsExhausted as replay_exc:
                    attempts += 1
                    adopt_state(
                        backend,
                        restore_backend(rollback, compact_pools=True),
                    )
                    if attempts >= MAX_REPLAY_ATTEMPTS:
                        raise GovernorError(
                            f"recovery replay could not get past event "
                            f"{backend.events_processed} after "
                            f"{attempts} attempts: {replay_exc}"
                        ) from replay_exc
                    governor.handle_exhaustion(
                        backend.events_processed, replay_exc
                    )

    def _replay_stream(self, tail: Sequence[Operation]):
        """Every operation since the boundary: buffer, then ``tail``."""
        for item in self._buffer:
            if isinstance(item, _BlockEntry):
                yield from item.ops()
            else:
                yield item
        yield from tail

    # --------------------------------------------------------------- results
    @property
    def fast_forwarded_events(self) -> int:
        """Events absorbed from block summaries without decode."""
        return sum(last - first + 1 for first, last in self._ff_ranges)

    @property
    def degraded(self) -> bool:
        """True if any backend runs with degraded completeness."""
        return any(governor.degraded for governor in self.governors)

    def degradations(self) -> list[DegradationEvent]:
        """Every governor intervention, across backends, in order."""
        merged: list[DegradationEvent] = []
        for governor in self.governors:
            merged.extend(governor.events)
        merged.sort(key=lambda event: event.position)
        return merged

    def warnings(self) -> list:
        """All warnings from all backends, in backend order."""
        collected = []
        for backend in self.backends:
            collected.extend(backend.warnings)
        return collected

    def report(self) -> SupervisedReport:
        return SupervisedReport(
            events=self.position,
            checkpoints_written=self.checkpoints_written,
            recoveries=self.recoveries,
            degraded=self.degraded,
            degradations=tuple(self.degradations()),
        )
