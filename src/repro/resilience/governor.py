"""Resource budgets with a graceful-degradation ladder.

The compact Velodrome representation has two hard resource walls —
node slots and per-slot timestamps — and crossing either raises
:class:`~repro.graph.stepcode.SlotsExhausted` mid-stream, losing every
warning accumulated so far.  The object representations have no hard
wall but grow without bound on GC-hostile workloads.  The governor
turns both failure modes into *managed pressure*: it watches
configurable budgets and, when one is crossed (or an exhaustion
actually fires), climbs a ladder of increasingly aggressive
interventions:

1. **sweep** — force-collect every collectible graph node
   (:meth:`~repro.graph.hbgraph.HBGraph.sweep`); free even when the GC
   ablation has eager collection off.
2. **compact-state** — purge dead weak references and packed codes
   from the analysis state maps
   (:meth:`~repro.core.backend.AnalysisBackend.compact_state`); never
   changes verdicts.
3. **checkpoint-compact** — snapshot the backend and restore it with
   ``compact_pools=True``, re-basing the step-code pool so retired
   slots and burned timestamp ranges come back
   (:func:`~repro.resilience.snapshot.restore_backend`); verdicts are
   preserved, only future exhaustion points move.
4. **degrade** — reset the happens-before window
   (:meth:`~repro.graph.hbgraph.HBGraph.reset_history`) and flag the
   run: every warning reported after this point is still genuine
   (sound), but cycles spanning the reset are missed (completeness is
   gone).  This is the rung that lets an analysis *finish* under any
   budget instead of crashing.

Each rung is tried only if the previous ones did not bring the
pressure back under budget, and a rung that just ran is not retried
until ``cooldown`` further events have passed — so a workload whose
live set legitimately exceeds the budget escalates instead of
thrashing on a rung that cannot help.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.backend import AnalysisBackend
from repro.graph.stepcode import SlotsExhausted
from repro.resilience.ringlog import RingLog
from repro.resilience.snapshot import adopt_state, clone_backend, supports

#: Ladder rungs, least to most aggressive.
RUNGS = ("sweep", "compact-state", "checkpoint-compact", "degrade")


@dataclass(frozen=True)
class Budgets:
    """Resource budgets the governor enforces.

    Attributes:
        max_live_nodes: ceiling on live happens-before graph nodes
            (``None`` = unlimited).  The natural budget for the compact
            representation, where live nodes occupy pool slots.
        max_state_entries: ceiling on retained analysis-state entries
            as reported by ``state_entry_count()`` (``None`` =
            unlimited; backends that return ``None`` are exempt).
        check_interval: probe budgets every this many events.  Pressure
            between probes is caught by the exhaustion handler, so a
            large interval trades responsiveness for overhead, never
            correctness.
        cooldown: events that must pass before the same rung is applied
            again; prevents thrashing when a rung cannot relieve the
            pressure.
    """

    max_live_nodes: Optional[int] = None
    max_state_entries: Optional[int] = None
    check_interval: int = 256
    cooldown: int = 64

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        for name in ("max_live_nodes", "max_state_entries"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 when set")

    @property
    def unbounded(self) -> bool:
        return self.max_live_nodes is None and self.max_state_entries is None

    def slice(self, shares: int, floor: int = 64) -> "Budgets":
        """These budgets divided fairly across ``shares`` tenants.

        The serve daemon enforces one *global* memory budget; each
        concurrently-active stream gets an equal slice so a single
        hungry tenant climbs its own degradation ladder instead of
        starving its neighbors.  Capacity limits divide (never below
        ``floor`` — a sliver budget under the irreducible live set of
        any real trace would keep every stream permanently degraded);
        cadence knobs (``check_interval``, ``cooldown``) are per-stream
        already and pass through unchanged.
        """
        if shares < 1:
            raise ValueError("shares must be >= 1")

        def part(value: Optional[int]) -> Optional[int]:
            return value if value is None else max(floor, value // shares)

        return Budgets(
            max_live_nodes=part(self.max_live_nodes),
            max_state_entries=part(self.max_state_entries),
            check_interval=self.check_interval,
            cooldown=self.cooldown,
        )


@dataclass(frozen=True)
class DegradationEvent:
    """One ladder intervention, for the supervised run's report."""

    position: int
    rung: str
    trigger: str
    detail: str


class GovernorError(RuntimeError):
    """The ladder was exhausted and ``on_pressure`` forbids degrading."""


class ResourceGovernor:
    """Keeps one backend inside its :class:`Budgets`.

    Args:
        backend: the analysis to govern.  Graph-based budgets require a
            ``graph`` attribute (all Velodrome variants); other
            backends are governed through ``state_entry_count`` only.
        budgets: the limits to enforce.
        on_pressure: what the top of the ladder is allowed to do —
            ``"degrade"`` (default) permits the window reset,
            ``"fail"`` re-raises the original pressure as
            :class:`GovernorError` instead (for deployments where a
            missed warning is worse than a crash).

    Attributes:
        degraded: True once the degrade rung has run; verdicts from a
            degraded run are sound but not complete.
        events: interventions taken, in order — a capped
            :class:`~repro.resilience.ringlog.RingLog` (newest 512; a
            budget stuck just above its floor intervenes every probe,
            forever, and the log must not grow with the stream).
    """

    def __init__(
        self,
        backend: AnalysisBackend,
        budgets: Budgets,
        on_pressure: str = "degrade",
    ):
        if on_pressure not in ("degrade", "fail"):
            raise ValueError(f"unknown on_pressure mode {on_pressure!r}")
        self.backend = backend
        self.budgets = budgets
        self.on_pressure = on_pressure
        self.degraded = False
        self.events: RingLog = RingLog(maxlen=512)
        self._last_applied: dict[str, int] = {}

    # -------------------------------------------------------------- pressure
    def _pressure(self) -> Optional[str]:
        """The budget currently exceeded, or ``None``."""
        budgets = self.budgets
        graph = getattr(self.backend, "graph", None)
        if (
            budgets.max_live_nodes is not None
            and graph is not None
            and graph.live_count > budgets.max_live_nodes
        ):
            return (
                f"live-nodes {graph.live_count} > "
                f"budget {budgets.max_live_nodes}"
            )
        if budgets.max_state_entries is not None:
            entries = self.backend.state_entry_count()
            if entries is not None and entries > budgets.max_state_entries:
                return (
                    f"state-entries {entries} > "
                    f"budget {budgets.max_state_entries}"
                )
        return None

    def should_check(self, position: int) -> bool:
        """True on positions where budgets are probed."""
        if self.budgets.unbounded:
            return False
        return position % self.budgets.check_interval == 0

    def should_check_span(self, old: int, new: int) -> bool:
        """True when advancing ``old -> new`` crossed a probe position.

        The block-granular supervisor advances many events at once, so
        exact probe positions can be jumped over; crossing detection
        keeps the probing cadence without landing on the multiples.
        """
        if self.budgets.unbounded:
            return False
        interval = self.budgets.check_interval
        return old // interval != new // interval

    # ---------------------------------------------------------------- ladder
    def relieve(self, position: int, trigger: str) -> bool:
        """Climb the ladder until the pressure clears; True on success.

        Rungs in cooldown are skipped (they just ran and did not
        help).  Budget pressure is advisory: if even the degrade rung
        leaves residual pressure (e.g. the budget sits below the
        irreducible floor of current transactions), the governor has
        done all it can and returns False — the run continues, and the
        *hard* wall is still handled by :meth:`handle_exhaustion`.
        """
        for rung in RUNGS:
            applied_at = self._last_applied.get(rung)
            if (
                applied_at is not None
                and position - applied_at < self.budgets.cooldown
            ):
                continue
            if not self._apply(rung, position, trigger):
                continue
            if self._pressure() is None:
                return True
        return self._pressure() is None

    def intervene(self, position: int) -> bool:
        """Periodic probe: relieve if over budget.  True if acted."""
        trigger = self._pressure()
        if trigger is None:
            return False
        return self.relieve(position, trigger)

    def handle_exhaustion(
        self, position: int, exc: SlotsExhausted
    ) -> None:
        """React to an actual :class:`SlotsExhausted` from the backend.

        Climbs the ladder; on success the supervisor retries the
        failed event.  Raises :class:`GovernorError` (chained to the
        exhaustion) when nothing helps or degrading is forbidden.
        """
        trigger = f"slots-exhausted: {exc}"
        # An exhaustion is unconditional pressure: clear cooldowns so
        # every rung is available — retrying the event with no
        # intervention at all would just re-raise.
        self._last_applied.clear()
        for rung in RUNGS:
            self._apply(rung, position, trigger)
            # No measurable budget may be violated (exhaustion can
            # strike inside the budgets); the test is whether the
            # *retry* succeeds, so apply rungs until one plausibly
            # freed pool resources, escalating on the next exhaustion
            # at the same position if not.
            if self._freed_pool_resources():
                return
        raise GovernorError(
            f"degradation ladder exhausted at event {position} "
            f"after {exc}"
        ) from exc

    # ----------------------------------------------------------------- rungs
    def _apply(self, rung: str, position: int, trigger: str) -> bool:
        """Run one rung; True if it was applicable and did something."""
        if rung == "sweep":
            detail = self._rung_sweep()
        elif rung == "compact-state":
            detail = self._rung_compact_state()
        elif rung == "checkpoint-compact":
            detail = self._rung_checkpoint_compact()
        else:
            detail = self._rung_degrade()
        if detail is None:
            return False
        self._last_applied[rung] = position
        self.events.append(DegradationEvent(position, rung, trigger, detail))
        return True

    def _rung_sweep(self) -> Optional[str]:
        graph = getattr(self.backend, "graph", None)
        if graph is None:
            return None
        collected = graph.sweep()
        return f"collected {collected} nodes"

    def _rung_compact_state(self) -> Optional[str]:
        dropped = self.backend.compact_state()
        total = sum(dropped.values())
        if total == 0:
            return None
        parts = ", ".join(f"{k}={v}" for k, v in sorted(dropped.items()))
        return f"dropped {total} dead entries ({parts})"

    def _rung_checkpoint_compact(self) -> Optional[str]:
        backend = self.backend
        if not supports(backend) or not hasattr(backend, "pool"):
            return None
        before = backend.pool.pool_stats()
        adopt_state(backend, clone_backend(backend, compact_pools=True))
        after = backend.pool.pool_stats()
        return (
            f"pool rebuilt: retired {before.retired} -> {after.retired}, "
            f"attachable {before.attachable} -> {after.attachable}"
        )

    def _rung_degrade(self) -> Optional[str]:
        if self.on_pressure == "fail":
            return None
        graph = getattr(self.backend, "graph", None)
        if graph is None:
            return None
        collected = graph.reset_history()
        self.backend.compact_state()
        self.degraded = True
        return (
            f"happens-before window reset ({collected} nodes dropped); "
            f"completeness degraded from here on"
        )

    # --------------------------------------------------------------- helpers
    def _freed_pool_resources(self) -> bool:
        """Heuristic: does the pool now have room to attach a node?"""
        pool = getattr(self.backend, "pool", None)
        if pool is None:
            # Object representations have no hard wall; any rung that
            # ran is as good as it gets.
            return True
        return pool.pool_stats().attachable > 0
