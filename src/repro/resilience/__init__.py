"""Supervised checker runtime: checkpoints, budgets, hardened streams.

Velodrome is designed as an *online* checker that rides along with a
program for its whole execution (paper Section 5).  This package wraps
any :class:`~repro.core.backend.AnalysisBackend` with the machinery a
long-lived deployment needs:

* :mod:`~repro.resilience.snapshot` — versioned checkpoint files that
  capture the complete ``(C, L, U, R, W, H)`` state and restore it for
  byte-identical resumption;
* :mod:`~repro.resilience.governor` — resource budgets with a
  graceful-degradation ladder instead of
  :class:`~repro.graph.stepcode.SlotsExhausted` crashes;
* :mod:`~repro.resilience.quarantine` — a hardened event reader that
  quarantines malformed, duplicated, and out-of-order records with
  structured faults;
* :mod:`~repro.resilience.supervisor` — the supervised runtime tying
  the three together (periodic checkpoints, crash recovery, resume).

See ``docs/resilience.md`` for the operational story.
"""

from repro.resilience.governor import (
    RUNGS,
    Budgets,
    DegradationEvent,
    GovernorError,
    ResourceGovernor,
)
from repro.resilience.quarantine import (
    LENIENT,
    STRICT,
    FaultKind,
    HardenedJsonlSource,
    HardenedTraceSource,
    Quarantine,
    ResyncPolicy,
    StreamFault,
    StreamIntegrityError,
)
from repro.resilience.ringlog import DEFAULT_RETAINED, RingLog
from repro.resilience.shutdown import (
    EXIT_INTERRUPTED,
    GracefulShutdown,
    ShutdownRequested,
)
from repro.resilience.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotError,
    UnsupportedBackend,
    adopt_state,
    capture_backend,
    capture_snapshot,
    clone_backend,
    parse_snapshot,
    previous_snapshot_path,
    read_snapshot,
    restore_backend,
    supports,
    write_snapshot,
)
from repro.resilience.supervisor import (
    SupervisedChecker,
    SupervisedReport,
)

__all__ = [
    "DEFAULT_RETAINED",
    "EXIT_INTERRUPTED",
    "GracefulShutdown",
    "RingLog",
    "RUNGS",
    "ShutdownRequested",
    "Budgets",
    "DegradationEvent",
    "FaultKind",
    "GovernorError",
    "HardenedJsonlSource",
    "HardenedTraceSource",
    "LENIENT",
    "Quarantine",
    "ResourceGovernor",
    "ResyncPolicy",
    "STRICT",
    "StreamFault",
    "StreamIntegrityError",
    "SupervisedChecker",
    "SupervisedReport",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotError",
    "UnsupportedBackend",
    "adopt_state",
    "capture_backend",
    "capture_snapshot",
    "clone_backend",
    "parse_snapshot",
    "previous_snapshot_path",
    "read_snapshot",
    "restore_backend",
    "supports",
    "write_snapshot",
]
