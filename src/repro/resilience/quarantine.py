"""Event-stream hardening: quarantine bad records instead of aborting.

A long-lived checker consumes event streams produced by other
processes — instrumentation agents, recorders, network relays — and a
single malformed, duplicated, reordered, or truncated record must not
take the whole analysis down.  This module classifies every record of
a stream, delivers the good ones to the pipeline, and routes the rest
into a :class:`Quarantine` as structured :class:`StreamFault` entries,
under a configurable :class:`ResyncPolicy`.

Fault classes:

* **malformed** — the record is not valid JSON or not a valid
  operation object;
* **unknown-op** — valid JSON naming an operation kind this build does
  not know (e.g. a stream from a newer recorder);
* **torn** — the stream's final record was cut mid-write (see
  :func:`repro.events.serialize.iter_jsonl`);
* **duplicate** / **out-of-order** / **gap** — sequence anomalies,
  detected when records carry the optional ``seq`` field written by
  ``dump_jsonl(..., with_seq=True)``;
* **structural** — an operation that is individually well-formed but
  impossible at its stream position (an ``end`` with no open ``begin``
  for that thread), which would otherwise raise deep inside a backend.

Resynchronisation is per-record: a quarantined record is skipped and
the stream continues at the next one ("skip" policy), or the stream
halts with :class:`StreamIntegrityError` ("halt" policy, or when the
fault budget ``max_faults`` is exceeded).  Either way the analysis
state stays consistent — a fault never half-applies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO, Union

from repro.events.operations import Operation, OpKind
from repro.events.serialize import JsonlFault, JsonlRecord, iter_jsonl
from repro.pipeline.source import EventSink, SourceResult
from repro.resilience.ringlog import DEFAULT_RETAINED, RingLog

PathLike = Union[str, Path]


class FaultKind(enum.Enum):
    """Why a record was quarantined."""

    MALFORMED = "malformed"
    UNKNOWN_OP = "unknown-op"
    TORN = "torn"
    DUPLICATE = "duplicate"
    OUT_OF_ORDER = "out-of-order"
    GAP = "gap"
    STRUCTURAL = "structural"


@dataclass(frozen=True)
class StreamFault:
    """One quarantined record, with enough context to find it again.

    Attributes:
        kind: the fault class.
        detail: human-readable description.
        position: 0-based index among *delivered* operations at the
            time the fault was seen (where a resync resumes).
        line_number: 1-based source line, when the stream is textual.
        byte_offset: offset of the record's first byte, when known.
        seq: the record's declared stream sequence number, if any.
        content: the offending raw content, bounded.
    """

    kind: FaultKind
    detail: str
    position: int
    line_number: Optional[int] = None
    byte_offset: Optional[int] = None
    seq: Optional[int] = None
    content: str = ""


class StreamIntegrityError(RuntimeError):
    """The stream was rejected under the active resync policy."""

    def __init__(self, message: str, faults: list[StreamFault]):
        super().__init__(message)
        self.faults = faults


@dataclass(frozen=True)
class ResyncPolicy:
    """How the hardened reader reacts to faults.

    Attributes:
        action: ``"skip"`` quarantines the record and continues at the
            next one; ``"halt"`` raises on the first fault.
        max_faults: with ``"skip"``, how many faults to tolerate before
            halting anyway (``None`` = unlimited).  A stream that is
            mostly garbage is better rejected than half-analyzed.
        halt_on: fault kinds that always halt, regardless of ``action``
            (e.g. halt on structural faults while skipping duplicates).
    """

    action: str = "skip"
    max_faults: Optional[int] = None
    halt_on: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.action not in ("skip", "halt"):
            raise ValueError(f"unknown resync action {self.action!r}")


#: Tolerate everything except a totally corrupt stream.
LENIENT = ResyncPolicy(action="skip")
#: Reject the stream on any fault.
STRICT = ResyncPolicy(action="halt")


class Quarantine:
    """Collects stream faults and enforces a :class:`ResyncPolicy`.

    The fault list is a capped :class:`~repro.resilience.ringlog.
    RingLog` (``max_retained`` newest entries): a stream that is pure
    garbage generates one fault per record, and an always-on daemon
    must bound that per stream.  Counts stay exact however many fault
    *records* were evicted — :meth:`counts`, :meth:`summary`, and the
    ``max_faults`` budget all work from totals, not retention.
    """

    def __init__(self, policy: ResyncPolicy = LENIENT,
                 max_retained: Optional[int] = DEFAULT_RETAINED):
        self.policy = policy
        self.faults: RingLog = RingLog(maxlen=max_retained)
        self._counts: dict[str, int] = {}

    def admit(self, fault: StreamFault) -> None:
        """Record a fault; raises when the policy says to halt."""
        self.faults.append(fault)
        kind = fault.kind.value
        self._counts[kind] = self._counts.get(kind, 0) + 1
        policy = self.policy
        if policy.action == "halt" or fault.kind in policy.halt_on:
            raise StreamIntegrityError(
                f"stream fault ({fault.kind.value}): {fault.detail}",
                list(self.faults),
            )
        if (
            policy.max_faults is not None
            and self.faults.total > policy.max_faults
        ):
            raise StreamIntegrityError(
                f"fault budget exceeded: {self.faults.total} faults "
                f"(budget {policy.max_faults}); last was "
                f"{fault.kind.value}: {fault.detail}",
                list(self.faults),
            )

    def __len__(self) -> int:
        """Faults ever admitted (evicted records still count)."""
        return self.faults.total

    @property
    def dropped(self) -> int:
        """Fault records evicted from retention to honor the cap."""
        return self.faults.dropped

    def counts(self) -> dict[str, int]:
        """Fault counts by kind value (for reports and metrics)."""
        return dict(self._counts)

    def summary(self) -> str:
        if not self.faults.total:
            return "quarantine: clean stream"
        parts = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.counts().items())
        )
        capped = (
            f"; {self.faults.dropped} oldest not retained"
            if self.faults.dropped else ""
        )
        return f"quarantine: {self.faults.total} faults ({parts}{capped})"


class _StructuralGuard:
    """Per-thread begin/end depth tracking.

    The analyses raise ``ValueError`` deep inside ``process`` on an
    ``end`` with no open ``begin`` — by then the event counter has not
    advanced but a supervisor cannot tell a stream problem from a bug.
    The guard rejects such markers *before* they reach any backend.
    """

    def __init__(self) -> None:
        self._depth: dict[int, int] = {}

    def check(self, op: Operation) -> Optional[str]:
        """None if ``op`` is structurally admissible, else the problem."""
        if op.kind is OpKind.BEGIN:
            self._depth[op.tid] = self._depth.get(op.tid, 0) + 1
        elif op.kind is OpKind.END:
            depth = self._depth.get(op.tid, 0)
            if depth == 0:
                return f"end without begin for thread {op.tid}"
            self._depth[op.tid] = depth - 1
        return None


class HardenedJsonlSource:
    """An :class:`~repro.pipeline.source.EventSource` over a JSONL
    recording that quarantines bad records instead of raising.

    Sequence anomalies are only detectable when the recording carries
    ``seq`` fields; without them every record is presumed in order.
    A ``gap`` fault (records missing between two delivered ones) is
    recorded but the later record is still delivered — the data that
    *did* arrive is good.

    Args:
        source: an open text stream, a path to a ``.jsonl`` file, or an
            iterable of pre-classified :class:`JsonlRecord` /
            :class:`JsonlFault` items.
        policy: the resync policy (default: skip everything skippable).
        structural: guard against end-without-begin markers.
        max_retained: quarantine retention cap (fault *counts* stay
            exact past it; see :class:`Quarantine`).
    """

    def __init__(
        self,
        source: Union[TextIO, PathLike, Iterable],
        policy: ResyncPolicy = LENIENT,
        structural: bool = True,
        max_retained: Optional[int] = DEFAULT_RETAINED,
    ):
        self._source = source
        self.quarantine = Quarantine(policy, max_retained=max_retained)
        self._structural = structural

    def _items(self) -> Iterator[Union[JsonlRecord, JsonlFault]]:
        source = self._source
        if isinstance(source, (str, Path)):
            with open(source, encoding="utf-8") as stream:
                yield from iter_jsonl(stream)
        elif hasattr(source, "read"):
            yield from iter_jsonl(source)
        else:
            yield from source

    def run(self, sink: EventSink) -> SourceResult:
        quarantine = self.quarantine
        guard = _StructuralGuard() if self._structural else None
        delivered = 0
        last_seq: Optional[int] = None
        seen_seqs: set[int] = set()
        for item in self._items():
            if isinstance(item, JsonlFault):
                if item.torn:
                    kind = FaultKind.TORN
                elif "unknown operation kind" in item.error:
                    kind = FaultKind.UNKNOWN_OP
                else:
                    kind = FaultKind.MALFORMED
                quarantine.admit(
                    StreamFault(
                        kind,
                        item.error,
                        delivered,
                        line_number=item.line_number,
                        byte_offset=item.byte_offset,
                        content=item.content,
                    )
                )
                continue
            seq = item.seq
            if seq is not None:
                if seq in seen_seqs:
                    quarantine.admit(
                        StreamFault(
                            FaultKind.DUPLICATE,
                            f"record seq {seq} already delivered",
                            delivered,
                            line_number=item.line_number,
                            byte_offset=item.byte_offset,
                            seq=seq,
                        )
                    )
                    continue
                if last_seq is not None and seq < last_seq:
                    quarantine.admit(
                        StreamFault(
                            FaultKind.OUT_OF_ORDER,
                            f"record seq {seq} after seq {last_seq}",
                            delivered,
                            line_number=item.line_number,
                            byte_offset=item.byte_offset,
                            seq=seq,
                        )
                    )
                    continue
                if last_seq is not None and seq > last_seq + 1:
                    # The missing records are gone; this one is fine.
                    quarantine.admit(
                        StreamFault(
                            FaultKind.GAP,
                            f"records seq {last_seq + 1}..{seq - 1} missing",
                            delivered,
                            line_number=item.line_number,
                            byte_offset=item.byte_offset,
                            seq=seq,
                        )
                    )
                seen_seqs.add(seq)
                last_seq = seq
            if guard is not None:
                problem = guard.check(item.op)
                if problem is not None:
                    quarantine.admit(
                        StreamFault(
                            FaultKind.STRUCTURAL,
                            problem,
                            delivered,
                            line_number=item.line_number,
                            byte_offset=item.byte_offset,
                            seq=seq,
                        )
                    )
                    continue
            sink(item.op)
            delivered += 1
        return SourceResult(events=delivered)


class HardenedTraceSource:
    """Structural hardening over an in-memory operation stream.

    The in-memory analogue of :class:`HardenedJsonlSource` for sources
    that are already :class:`~repro.events.operations.Operation`
    objects (no parse or sequence layer): only the structural guard
    applies.
    """

    def __init__(
        self,
        ops: Iterable[Operation],
        policy: ResyncPolicy = LENIENT,
        max_retained: Optional[int] = DEFAULT_RETAINED,
    ):
        self.ops = ops
        self.quarantine = Quarantine(policy, max_retained=max_retained)

    def run(self, sink: EventSink) -> SourceResult:
        guard = _StructuralGuard()
        delivered = 0
        for op in self.ops:
            problem = guard.check(op)
            if problem is not None:
                self.quarantine.admit(
                    StreamFault(FaultKind.STRUCTURAL, problem, delivered,
                                content=str(op))
                )
                continue
            sink(op)
            delivered += 1
        return SourceResult(events=delivered)
