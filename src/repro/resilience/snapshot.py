"""Versioned checkpoint snapshots of a running analysis.

Velodrome is an online analysis meant to run for the life of a program
(paper Section 5); a killed checker process must not lose the
accumulated ``(C, L, U, R, W, H)`` state.  This module serializes the
*complete* analysis state of any Velodrome variant — per-thread
transaction stacks, the lock/variable maps, the live happens-before
graph (nodes, edges, timestamps, stats), the packed step-code pool,
and the warning log — into a JSON snapshot, and restores it so exactly
that the resumed run produces byte-identical verdicts, warning
messages, first-warning positions, and blamed-label sets, and even
exhausts its node pool at the same future event as an uninterrupted
run.

Two restore modes:

* **verbatim** (default) — pool slot assignments, timestamp bases, and
  watermarks come back bit-for-bit; the resumed run is
  indistinguishable from one that was never stopped.
* **compact** (``compact_pools=True``) — live nodes are re-attached to
  a fresh pool in sequence order, re-basing every timestamp and
  reclaiming retired slots.  Verdicts are unchanged (slot numbers are
  invisible to the analysis rules); only future exhaustion points
  move.  This is the ``checkpoint-and-compact`` rung of the resource
  governor's degradation ladder.

Only state that can influence output is captured.  Warning objects are
captured without their witness :class:`~repro.graph.hbgraph.Cycle`
(``Warning.cycle`` is excluded from equality and exists for rendering
at detection time); ancestor sets and incoming-edge counts are derived
data, recomputed from the edge list on restore.

The on-disk form is a single JSON document with ``format``/``version``
fields (see :data:`SNAPSHOT_VERSION`); readers reject unknown versions
instead of mis-parsing them.  Writes go through a temp file and
``os.replace`` so a crash mid-checkpoint can never leave a torn
snapshot — the previous one survives intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.backend import AnalysisBackend
from repro.core.basic import VelodromeBasic
from repro.core.compact import VelodromeCompact
from repro.core.optimized import VelodromeOptimized, _Block
from repro.core.reports import Warning, WarningKind
from repro.graph.hbgraph import HBGraph
from repro.graph.node import EdgeInfo, Step, TxNode

PathLike = Union[str, Path]

SNAPSHOT_FORMAT = "velodrome-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """A snapshot could not be captured, parsed, or restored."""


class UnsupportedBackend(SnapshotError):
    """The backend type has no snapshot codec registered."""


def supports(backend: AnalysisBackend) -> bool:
    """True iff ``backend`` can be checkpointed by this module."""
    return type(backend) in _CODECS


# --------------------------------------------------------------------- steps
def _pack_step(step: Optional[Step]) -> Optional[list]:
    """A step as [seq, ts]; absent *or dead* steps pack to None.

    The analysis state legitimately retains weak references to
    collected transactions; those nodes are gone from the snapshot, so
    their steps are captured as the tombstone marker and restored as a
    shared dead node (see :func:`_tombstone`) — present in the map
    (membership and iteration order are part of the state: the WRITE
    rules iterate the reader maps when adding edges) but dereferencing
    to absent, exactly like the original.
    """
    if step is None or step.node.collected:
        return None
    return [step.node.seq, step.timestamp]


def _step_table(table: dict) -> list:
    """A dict of steps as [key, [seq, ts]-or-None] pairs, in order."""
    return [[key, _pack_step(step)] for key, step in table.items()]


def _tombstone() -> TxNode:
    """A collected placeholder node standing in for dead references."""
    node = TxNode(-1, -1, label=None)
    node.current = False
    node.collected = True
    return node


# --------------------------------------------------------------------- graph
def _capture_graph(graph: HBGraph) -> dict:
    nodes = []
    for node in sorted(graph._live, key=lambda n: n.seq):
        nodes.append(
            {
                "seq": node.seq,
                "tid": node.tid,
                "label": node.label,
                "current": node.current,
                "last_timestamp": node.last_timestamp,
                # Edge order is the out_edges dict's insertion order;
                # cycle-path recovery walks it, so it must round-trip.
                "edges": [
                    [dst.seq, info.tail_timestamp, info.head_timestamp,
                     info.reason]
                    for dst, info in node.out_edges.items()
                ],
            }
        )
    stats = graph.stats
    return {
        "next_seq": graph._next_seq,
        "nodes": nodes,
        "stats": {
            "allocated": stats.allocated,
            "collected": stats.collected,
            "live": stats.live,
            "max_alive": stats.max_alive,
            "edges_added": stats.edges_added,
            "edges_replaced": stats.edges_replaced,
            "cycle_checks": stats.cycle_checks,
            "cycles_found": stats.cycles_found,
            "merges": stats.merges,
        },
    }


def _restore_graph(graph: HBGraph, state: dict) -> dict[int, TxNode]:
    """Rebuild nodes and edges into a fresh graph; returns seq → node.

    Bypasses ``new_node``/``add_edge`` (and therefore the alloc/collect
    hooks and stats) — callers re-link pools and stats themselves.
    Ancestor sets and incoming counts are recomputed; a single pass of
    ancestor propagation per edge converges because each propagation
    cascades through all downstream descendants.
    """
    nodes: dict[int, TxNode] = {}
    for entry in state["nodes"]:
        node = TxNode(entry["seq"], entry["tid"], label=entry["label"])
        node.current = entry["current"]
        node.last_timestamp = entry["last_timestamp"]
        nodes[node.seq] = node
    for entry in state["nodes"]:
        node = nodes[entry["seq"]]
        for dst_seq, tail, head, reason in entry["edges"]:
            try:
                dst = nodes[dst_seq]
            except KeyError:
                raise SnapshotError(
                    f"edge target #{dst_seq} missing from snapshot"
                ) from None
            node.out_edges[dst] = EdgeInfo(tail, head, reason)
            dst.incoming += 1
    graph._live = set(nodes.values())
    graph._next_seq = state["next_seq"]
    for field, value in state["stats"].items():
        setattr(graph.stats, field, value)
    if graph.cycle_strategy == "ancestors":
        for node in nodes.values():
            for dst in node.out_edges:
                graph._propagate_ancestors(node, dst)
    return nodes


# ------------------------------------------------------------------ warnings
def _capture_warning(warning: Warning) -> dict:
    return {
        "kind": warning.kind.value,
        "backend": warning.backend,
        "label": warning.label,
        "tid": warning.tid,
        "position": warning.position,
        "message": warning.message,
        "blamed": warning.blamed,
        "target": warning.target,
    }


def _restore_warning(state: dict) -> Warning:
    return Warning(
        kind=WarningKind(state["kind"]),
        backend=state["backend"],
        label=state["label"],
        tid=state["tid"],
        position=state["position"],
        message=state["message"],
        blamed=state["blamed"],
        target=state["target"],
    )


def _capture_common(backend: AnalysisBackend) -> dict:
    return {
        "name": backend.name,
        "events_processed": backend.events_processed,
        "warnings": [_capture_warning(w) for w in backend._warnings],
    }


def _restore_common(backend: AnalysisBackend, state: dict) -> None:
    backend.name = state["name"]
    backend.events_processed = state["events_processed"]
    backend._warnings = [_restore_warning(w) for w in state["warnings"]]


# ------------------------------------------------------------------- codecs
class _BasicCodec:
    """Snapshot codec for :class:`VelodromeBasic` (node-valued state)."""

    key = "basic"

    def capture(self, backend: VelodromeBasic) -> dict:
        def node_table(table: dict) -> list:
            return [
                [key, None if node.collected else node.seq]
                for key, node in table.items()
            ]

        return {
            **_capture_common(backend),
            "collect_garbage": backend.graph.collect_garbage,
            "cycle_strategy": backend.graph.cycle_strategy,
            "graph": _capture_graph(backend.graph),
            "depth": list(backend._depth.items()),
            "current": node_table(backend._current),
            "last": node_table(backend._last),
            "unlocker": node_table(backend._unlocker),
            "readers": [
                [var, node_table(readers)]
                for var, readers in backend._readers.items()
            ],
            "writer": node_table(backend._writer),
        }

    def restore(self, state: dict, compact_pools: bool = False) -> VelodromeBasic:
        backend = VelodromeBasic(
            collect_garbage=state["collect_garbage"],
            cycle_strategy=state["cycle_strategy"],
        )
        _restore_common(backend, state)
        nodes = _restore_graph(backend.graph, state["graph"])
        dead = _tombstone()

        def node_map(entries: list) -> dict:
            return {
                _key(key): dead if seq is None else nodes[seq]
                for key, seq in entries
            }

        backend._depth = {tid: depth for tid, depth in state["depth"]}
        backend._current = node_map(state["current"])
        backend._last = node_map(state["last"])
        backend._unlocker = node_map(state["unlocker"])
        backend._readers = {
            var: node_map(entries) for var, entries in state["readers"]
        }
        backend._writer = node_map(state["writer"])
        return backend


class _OptimizedCodec:
    """Snapshot codec for :class:`VelodromeOptimized` (step-valued state)."""

    key = "optimized"

    def capture(self, backend: VelodromeOptimized) -> dict:
        return {
            **_capture_common(backend),
            "merge_unary": backend.merge_unary,
            "collect_garbage": backend.graph.collect_garbage,
            "cycle_strategy": backend.graph.cycle_strategy,
            "first_warning_per_label": backend.first_warning_per_label,
            "suppressed_warnings": backend.suppressed_warnings,
            "warned_labels": list(backend._warned_labels),
            "graph": _capture_graph(backend.graph),
            "stacks": [
                [tid, [[b.label, b.entry.node.seq, b.entry.timestamp]
                       for b in stack]]
                for tid, stack in backend._stacks.items()
            ],
            "last": _step_table(backend._last),
            "unlocker": _step_table(backend._unlocker),
            "readers": [
                [var, _step_table(readers)]
                for var, readers in backend._readers.items()
            ],
            "writer": _step_table(backend._writer),
        }

    def build(self, state: dict) -> VelodromeOptimized:
        return VelodromeOptimized(
            merge_unary=state["merge_unary"],
            collect_garbage=state["collect_garbage"],
            cycle_strategy=state["cycle_strategy"],
            first_warning_per_label=state["first_warning_per_label"],
        )

    def restore(
        self, state: dict, compact_pools: bool = False
    ) -> VelodromeOptimized:
        backend = self.build(state)
        _restore_common(backend, state)
        nodes = _restore_graph(backend.graph, state["graph"])
        self._restore_analysis_state(backend, state, nodes)
        return backend

    def _restore_analysis_state(
        self,
        backend: VelodromeOptimized,
        state: dict,
        nodes: dict[int, TxNode],
    ) -> None:
        dead = _tombstone()

        def step(packed: Optional[list]) -> Step:
            if packed is None:
                return Step(dead, 0)
            seq, timestamp = packed
            try:
                return Step(nodes[seq], timestamp)
            except KeyError:
                raise SnapshotError(
                    f"step references node #{seq} missing from snapshot"
                ) from None

        def step_map(entries: list) -> dict:
            return {_key(key): step(packed) for key, packed in entries}

        backend.suppressed_warnings = state["suppressed_warnings"]
        backend._warned_labels = set(state["warned_labels"])
        backend._stacks = {
            tid: [
                _Block(label, Step(nodes[seq], timestamp))
                for label, seq, timestamp in stack
            ]
            for tid, stack in state["stacks"]
        }
        backend._last = step_map(state["last"])
        backend._unlocker = step_map(state["unlocker"])
        backend._readers = {
            var: step_map(entries) for var, entries in state["readers"]
        }
        backend._writer = step_map(state["writer"])


class _CompactCodec(_OptimizedCodec):
    """Snapshot codec for :class:`VelodromeCompact` (packed 64-bit state).

    On top of the optimized state, captures the node pool (per-slot
    residency, watermark, and timestamp base, the free list, and the
    retirement count) and the four packed code maps verbatim, so a
    verbatim restore reproduces even the future
    :class:`~repro.graph.stepcode.SlotsExhausted` points exactly.
    """

    key = "compact"

    def capture(self, backend: VelodromeCompact) -> dict:
        pool = backend.pool
        state = super().capture(backend)

        # VelodromeCompact stores L/U/R/W as packed codes; the
        # object-level tables the parent codec just captured are
        # permanently empty.  Overwrite those fields with views decoded
        # from the code maps (dead codes decode to None and pack to the
        # tombstone marker) so the optimized-format fields describe the
        # real state — the compacted-rebuild restore path re-encodes
        # from them.
        def decoded(table: dict) -> dict:
            return {key: pool.decode(code) for key, code in table.items()}

        readers: dict[str, dict[int, Optional[Step]]] = {}
        for (var, tid), code in backend._reader_code.items():
            readers.setdefault(var, {})[tid] = pool.decode(code)
        state.update(
            {
                "last": _step_table(decoded(backend._last_code)),
                "unlocker": _step_table(decoded(backend._unlocker_code)),
                "writer": _step_table(decoded(backend._writer_code)),
                "readers": [
                    [var, _step_table(table)]
                    for var, table in readers.items()
                ],
                "max_slots": pool.max_slots,
                "timestamp_capacity": pool.timestamp_capacity,
                "pool": {
                    "resident": [
                        None if node is None else node.seq
                        for node in pool._resident
                    ],
                    "watermark": list(pool._watermark),
                    "base": list(pool._base),
                    "free": list(pool._free),
                    "retired": pool._retired,
                },
                "codes": {
                    "last": [[k, v] for k, v in backend._last_code.items()],
                    "unlocker": [
                        [k, v] for k, v in backend._unlocker_code.items()
                    ],
                    "writer": [
                        [k, v] for k, v in backend._writer_code.items()
                    ],
                    "reader": [
                        [list(k), v] for k, v in backend._reader_code.items()
                    ],
                    # Live iteration order, not sorted: the index drives
                    # the WRITE rule's reader-edge order, which cycle
                    # messages depend on.
                    "reader_index": [
                        [var, list(tids)]
                        for var, tids in backend._reader_index.items()
                    ],
                },
            }
        )
        return state

    def build(self, state: dict) -> VelodromeCompact:
        return VelodromeCompact(
            max_slots=state["max_slots"],
            timestamp_capacity=state["timestamp_capacity"],
            merge_unary=state["merge_unary"],
            collect_garbage=state["collect_garbage"],
            cycle_strategy=state["cycle_strategy"],
            first_warning_per_label=state["first_warning_per_label"],
        )

    def restore(
        self, state: dict, compact_pools: bool = False
    ) -> VelodromeCompact:
        backend = self.build(state)
        _restore_common(backend, state)
        # The constructor hooked attach/detach into the graph; the
        # rebuild below re-links slots manually, so unhook first and
        # re-hook once the pool state is consistent.
        backend.graph.on_alloc = None
        backend.graph.on_collect = None
        nodes = _restore_graph(backend.graph, state["graph"])
        self._restore_analysis_state(backend, state, nodes)
        if compact_pools:
            self._rebuild_pool_compacted(backend, state, nodes)
        else:
            self._restore_pool_verbatim(backend, state, nodes)
        # An organically-run compact backend never populates the
        # object-level step tables (its _store_* overrides write codes
        # instead); the copies restored above fed the pool rebuild, so
        # empty them to match.
        backend._last = {}
        backend._unlocker = {}
        backend._readers = {}
        backend._writer = {}
        backend.graph.on_alloc = backend.pool.attach
        backend.graph.on_collect = backend.pool.detach
        return backend

    def _restore_pool_verbatim(
        self,
        backend: VelodromeCompact,
        state: dict,
        nodes: dict[int, TxNode],
    ) -> None:
        pool = backend.pool
        pool_state = state["pool"]
        pool._resident = [
            None if seq is None else nodes[seq]
            for seq in pool_state["resident"]
        ]
        pool._watermark = list(pool_state["watermark"])
        pool._base = list(pool_state["base"])
        pool._free = list(pool_state["free"])
        pool._retired = pool_state["retired"]
        pool._live = sum(1 for node in pool._resident if node is not None)
        for slot, node in enumerate(pool._resident):
            if node is not None:
                node.slot = slot
        codes = state["codes"]
        backend._last_code = {tid: code for tid, code in codes["last"]}
        backend._unlocker_code = {
            lock: code for lock, code in codes["unlocker"]
        }
        backend._writer_code = {var: code for var, code in codes["writer"]}
        backend._reader_code = {
            (var, tid): code for (var, tid), code in codes["reader"]
        }
        backend._reader_index = {
            var: set(tids) for var, tids in codes["reader_index"]
        }

    def _rebuild_pool_compacted(
        self,
        backend: VelodromeCompact,
        state: dict,
        nodes: dict[int, TxNode],
    ) -> None:
        """Attach live nodes to the fresh pool and re-encode all state.

        Slot assignment restarts from slot 0 in node sequence order
        (deterministic), every timestamp base resets, and retired
        slots are reclaimed.  Dead codes re-encode as NIL — exactly
        what they already decoded to — and every captured key stays
        present, so map membership and iteration order (which the
        WRITE rule's reader-edge order depends on) survive the rebuild.
        """
        pool = backend.pool
        for seq in sorted(nodes):
            pool.attach(nodes[seq])
        backend._last_code = {
            tid: pool.encode(step) for tid, step in backend._last.items()
        }
        backend._unlocker_code = {
            lock: pool.encode(step)
            for lock, step in backend._unlocker.items()
        }
        backend._writer_code = {
            var: pool.encode(step) for var, step in backend._writer.items()
        }
        backend._reader_code = {
            (var, tid): pool.encode(step)
            for var, readers in backend._readers.items()
            for tid, step in readers.items()
        }
        backend._reader_index = {
            var: set(tids)
            for var, tids in state["codes"]["reader_index"]
        }


_CODECS = {
    VelodromeBasic: _BasicCodec(),
    VelodromeOptimized: _OptimizedCodec(),
    VelodromeCompact: _CompactCodec(),
}
_CODECS_BY_KEY = {codec.key: codec for codec in _CODECS.values()}


def _key(key):
    """JSON round-trips list-valued dict keys as lists; re-tuple them."""
    return tuple(key) if isinstance(key, list) else key


# ------------------------------------------------------------- public API
def capture_backend(backend: AnalysisBackend) -> dict:
    """The backend's complete analysis state as a JSON-ready dict."""
    codec = _CODECS.get(type(backend))
    if codec is None:
        raise UnsupportedBackend(
            f"no snapshot codec for {type(backend).__name__}; "
            f"supported: {sorted(c.__name__ for c in _CODECS)}"
        )
    state = codec.capture(backend)
    state["codec"] = codec.key
    return state


def restore_backend(
    state: dict, compact_pools: bool = False
) -> AnalysisBackend:
    """Rebuild a backend from :func:`capture_backend` output.

    Failures — an unknown codec, or a state document whose structure
    the codec chokes on (a corrupted snapshot that is still valid
    JSON) — always surface as :class:`SnapshotError`, never as a raw
    ``KeyError``/``TypeError`` from deep inside a codec: callers like
    :meth:`SupervisedChecker.resume
    <repro.resilience.supervisor.SupervisedChecker.resume>` distinguish
    "this checkpoint is bad, try the previous one" from a genuine bug
    by that type.
    """
    if not isinstance(state, dict):
        raise SnapshotError(f"backend state must be an object, "
                            f"got {type(state).__name__}")
    try:
        codec = _CODECS_BY_KEY[state["codec"]]
    except KeyError:
        raise SnapshotError(
            f"unknown backend codec {state.get('codec')!r}"
        ) from None
    try:
        return codec.restore(state, compact_pools=compact_pools)
    except SnapshotError:
        raise
    except Exception as exc:  # noqa: BLE001 - corrupt state, fail loudly
        raise SnapshotError(
            f"cannot restore {state['codec']!r} state: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


@dataclass(frozen=True)
class Snapshot:
    """One parsed checkpoint: stream position plus per-backend states.

    ``meta`` carries optional provenance the supervisor recorded at
    checkpoint time — for packed trace input, the source path and the
    block-aligned byte offset at which ``--resume`` may re-open the
    recording and re-read only the tail (see ``docs/traces.md``).
    Restores never depend on it.
    """

    position: int
    states: tuple[dict, ...]
    meta: dict = field(default_factory=dict)

    def restore(self, compact_pools: bool = False) -> list[AnalysisBackend]:
        return [
            restore_backend(state, compact_pools=compact_pools)
            for state in self.states
        ]


def capture_snapshot(
    backends: Sequence[AnalysisBackend],
    position: int,
    meta: Optional[dict] = None,
) -> dict:
    """The versioned snapshot envelope for a group of backends."""
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "position": position,
        "backends": [capture_backend(backend) for backend in backends],
    }
    if meta:
        document["meta"] = meta
    return document


def parse_snapshot(document: dict) -> Snapshot:
    """Validate a snapshot envelope; raises :class:`SnapshotError`."""
    if not isinstance(document, dict):
        raise SnapshotError("snapshot must be a JSON object")
    if document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"not a {SNAPSHOT_FORMAT} document "
            f"(format={document.get('format')!r})"
        )
    version = document.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    position = document.get("position")
    if not isinstance(position, int) or position < 0:
        raise SnapshotError(f"bad snapshot position {position!r}")
    meta = document.get("meta")
    if meta is not None and not isinstance(meta, dict):
        raise SnapshotError(f"bad snapshot meta {meta!r}")
    return Snapshot(
        position=position,
        states=tuple(document.get("backends", ())),
        meta=meta or {},
    )


def previous_snapshot_path(path: PathLike) -> Path:
    """Where :func:`write_snapshot` rotates the prior checkpoint to."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def write_snapshot(
    path: PathLike,
    backends: Sequence[AnalysisBackend],
    position: int,
    meta: Optional[dict] = None,
    keep_previous: bool = False,
) -> Path:
    """Atomically write a snapshot file (temp file + rename).

    A crash during checkpointing leaves either the previous complete
    snapshot or the new complete snapshot — never a torn file.
    ``meta`` (JSON-serializable) is stored verbatim in the envelope.

    With ``keep_previous``, the checkpoint that ``path`` currently
    holds is rotated to :func:`previous_snapshot_path` first, so a
    snapshot that later turns out to be unreadable (disk corruption
    after the atomic write — the write itself cannot tear) still
    leaves one known-good generation to fall back to.  Both renames
    are atomic; a kill between them loses no generation.
    """
    path = Path(path)
    document = capture_snapshot(backends, position, meta=meta)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    if keep_previous and path.exists():
        os.replace(path, previous_snapshot_path(path))
    os.replace(tmp, path)
    return path


def read_snapshot(path: PathLike) -> Snapshot:
    """Read and validate a snapshot file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"{path}: snapshot is not valid JSON") from exc
    return parse_snapshot(document)


def clone_backend(
    backend: AnalysisBackend, compact_pools: bool = False
) -> AnalysisBackend:
    """An independent copy of the backend via capture + restore."""
    return restore_backend(
        capture_backend(backend), compact_pools=compact_pools
    )


def adopt_state(target: AnalysisBackend, source: AnalysisBackend) -> None:
    """Move ``source``'s state into ``target`` in place.

    The pipeline and supervisor hold references to the original backend
    object; after a checkpoint-and-compact or a degradation reset, the
    rebuilt state must live in *that* object.  Backends are plain
    attribute-dict classes, so adopting the instance dict is complete.
    """
    if type(target) is not type(source):
        raise SnapshotError(
            f"cannot adopt {type(source).__name__} state into "
            f"{type(target).__name__}"
        )
    target.__dict__.clear()
    target.__dict__.update(source.__dict__)
